
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qtaccel/action_units.cpp" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/action_units.cpp.o" "gcc" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/action_units.cpp.o.d"
  "/root/repo/src/qtaccel/boltzmann_pipeline.cpp" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/boltzmann_pipeline.cpp.o" "gcc" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/boltzmann_pipeline.cpp.o.d"
  "/root/repo/src/qtaccel/config.cpp" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/config.cpp.o" "gcc" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/config.cpp.o.d"
  "/root/repo/src/qtaccel/forwarding.cpp" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/forwarding.cpp.o" "gcc" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/forwarding.cpp.o.d"
  "/root/repo/src/qtaccel/golden_model.cpp" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/golden_model.cpp.o" "gcc" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/golden_model.cpp.o.d"
  "/root/repo/src/qtaccel/mab_accelerator.cpp" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/mab_accelerator.cpp.o" "gcc" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/mab_accelerator.cpp.o.d"
  "/root/repo/src/qtaccel/multi_pipeline.cpp" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/multi_pipeline.cpp.o" "gcc" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/multi_pipeline.cpp.o.d"
  "/root/repo/src/qtaccel/pipeline.cpp" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/pipeline.cpp.o" "gcc" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/pipeline.cpp.o.d"
  "/root/repo/src/qtaccel/qmax_unit.cpp" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/qmax_unit.cpp.o" "gcc" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/qmax_unit.cpp.o.d"
  "/root/repo/src/qtaccel/resources.cpp" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/resources.cpp.o" "gcc" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/resources.cpp.o.d"
  "/root/repo/src/qtaccel/table_io.cpp" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/table_io.cpp.o" "gcc" "src/CMakeFiles/qta_qtaccel.dir/qtaccel/table_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qta_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_policy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/qta_qtaccel.dir/qtaccel/action_units.cpp.o"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/action_units.cpp.o.d"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/boltzmann_pipeline.cpp.o"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/boltzmann_pipeline.cpp.o.d"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/config.cpp.o"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/config.cpp.o.d"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/forwarding.cpp.o"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/forwarding.cpp.o.d"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/golden_model.cpp.o"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/golden_model.cpp.o.d"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/mab_accelerator.cpp.o"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/mab_accelerator.cpp.o.d"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/multi_pipeline.cpp.o"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/multi_pipeline.cpp.o.d"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/pipeline.cpp.o"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/pipeline.cpp.o.d"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/qmax_unit.cpp.o"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/qmax_unit.cpp.o.d"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/resources.cpp.o"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/resources.cpp.o.d"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/table_io.cpp.o"
  "CMakeFiles/qta_qtaccel.dir/qtaccel/table_io.cpp.o.d"
  "libqta_qtaccel.a"
  "libqta_qtaccel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qta_qtaccel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

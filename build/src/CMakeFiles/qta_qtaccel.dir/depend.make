# Empty dependencies file for qta_qtaccel.
# This may be replaced when dependencies are built.

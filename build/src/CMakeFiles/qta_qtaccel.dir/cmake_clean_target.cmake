file(REMOVE_RECURSE
  "libqta_qtaccel.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/qta_common.dir/common/cli.cpp.o"
  "CMakeFiles/qta_common.dir/common/cli.cpp.o.d"
  "CMakeFiles/qta_common.dir/common/stats.cpp.o"
  "CMakeFiles/qta_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/qta_common.dir/common/table_printer.cpp.o"
  "CMakeFiles/qta_common.dir/common/table_printer.cpp.o.d"
  "libqta_common.a"
  "libqta_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qta_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

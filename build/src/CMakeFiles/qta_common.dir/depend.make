# Empty dependencies file for qta_common.
# This may be replaced when dependencies are built.

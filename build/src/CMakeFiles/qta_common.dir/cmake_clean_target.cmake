file(REMOVE_RECURSE
  "libqta_common.a"
)

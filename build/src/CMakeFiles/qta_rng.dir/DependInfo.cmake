
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rng/lfsr.cpp" "src/CMakeFiles/qta_rng.dir/rng/lfsr.cpp.o" "gcc" "src/CMakeFiles/qta_rng.dir/rng/lfsr.cpp.o.d"
  "/root/repo/src/rng/normal_clt.cpp" "src/CMakeFiles/qta_rng.dir/rng/normal_clt.cpp.o" "gcc" "src/CMakeFiles/qta_rng.dir/rng/normal_clt.cpp.o.d"
  "/root/repo/src/rng/xoshiro.cpp" "src/CMakeFiles/qta_rng.dir/rng/xoshiro.cpp.o" "gcc" "src/CMakeFiles/qta_rng.dir/rng/xoshiro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libqta_rng.a"
)

# Empty compiler generated dependencies file for qta_rng.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/qta_rng.dir/rng/lfsr.cpp.o"
  "CMakeFiles/qta_rng.dir/rng/lfsr.cpp.o.d"
  "CMakeFiles/qta_rng.dir/rng/normal_clt.cpp.o"
  "CMakeFiles/qta_rng.dir/rng/normal_clt.cpp.o.d"
  "CMakeFiles/qta_rng.dir/rng/xoshiro.cpp.o"
  "CMakeFiles/qta_rng.dir/rng/xoshiro.cpp.o.d"
  "libqta_rng.a"
  "libqta_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qta_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

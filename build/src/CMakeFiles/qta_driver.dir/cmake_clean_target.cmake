file(REMOVE_RECURSE
  "libqta_driver.a"
)

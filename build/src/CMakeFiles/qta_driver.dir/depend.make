# Empty dependencies file for qta_driver.
# This may be replaced when dependencies are built.

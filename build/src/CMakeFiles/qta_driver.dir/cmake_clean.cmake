file(REMOVE_RECURSE
  "CMakeFiles/qta_driver.dir/driver/qtaccel_device.cpp.o"
  "CMakeFiles/qta_driver.dir/driver/qtaccel_device.cpp.o.d"
  "CMakeFiles/qta_driver.dir/driver/register_map.cpp.o"
  "CMakeFiles/qta_driver.dir/driver/register_map.cpp.o.d"
  "libqta_driver.a"
  "libqta_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qta_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

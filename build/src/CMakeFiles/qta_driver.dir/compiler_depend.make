# Empty compiler generated dependencies file for qta_driver.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driver/qtaccel_device.cpp" "src/CMakeFiles/qta_driver.dir/driver/qtaccel_device.cpp.o" "gcc" "src/CMakeFiles/qta_driver.dir/driver/qtaccel_device.cpp.o.d"
  "/root/repo/src/driver/register_map.cpp" "src/CMakeFiles/qta_driver.dir/driver/register_map.cpp.o" "gcc" "src/CMakeFiles/qta_driver.dir/driver/register_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qta_qtaccel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libqta_algo.a"
)

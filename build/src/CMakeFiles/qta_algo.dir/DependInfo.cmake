
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/double_q.cpp" "src/CMakeFiles/qta_algo.dir/algo/double_q.cpp.o" "gcc" "src/CMakeFiles/qta_algo.dir/algo/double_q.cpp.o.d"
  "/root/repo/src/algo/expected_sarsa.cpp" "src/CMakeFiles/qta_algo.dir/algo/expected_sarsa.cpp.o" "gcc" "src/CMakeFiles/qta_algo.dir/algo/expected_sarsa.cpp.o.d"
  "/root/repo/src/algo/lambda_returns.cpp" "src/CMakeFiles/qta_algo.dir/algo/lambda_returns.cpp.o" "gcc" "src/CMakeFiles/qta_algo.dir/algo/lambda_returns.cpp.o.d"
  "/root/repo/src/algo/mab_algorithms.cpp" "src/CMakeFiles/qta_algo.dir/algo/mab_algorithms.cpp.o" "gcc" "src/CMakeFiles/qta_algo.dir/algo/mab_algorithms.cpp.o.d"
  "/root/repo/src/algo/q_learning.cpp" "src/CMakeFiles/qta_algo.dir/algo/q_learning.cpp.o" "gcc" "src/CMakeFiles/qta_algo.dir/algo/q_learning.cpp.o.d"
  "/root/repo/src/algo/sarsa.cpp" "src/CMakeFiles/qta_algo.dir/algo/sarsa.cpp.o" "gcc" "src/CMakeFiles/qta_algo.dir/algo/sarsa.cpp.o.d"
  "/root/repo/src/algo/tabular_learner.cpp" "src/CMakeFiles/qta_algo.dir/algo/tabular_learner.cpp.o" "gcc" "src/CMakeFiles/qta_algo.dir/algo/tabular_learner.cpp.o.d"
  "/root/repo/src/algo/trainer.cpp" "src/CMakeFiles/qta_algo.dir/algo/trainer.cpp.o" "gcc" "src/CMakeFiles/qta_algo.dir/algo/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qta_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for qta_algo.
# This may be replaced when dependencies are built.

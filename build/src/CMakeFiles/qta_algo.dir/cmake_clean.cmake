file(REMOVE_RECURSE
  "CMakeFiles/qta_algo.dir/algo/double_q.cpp.o"
  "CMakeFiles/qta_algo.dir/algo/double_q.cpp.o.d"
  "CMakeFiles/qta_algo.dir/algo/expected_sarsa.cpp.o"
  "CMakeFiles/qta_algo.dir/algo/expected_sarsa.cpp.o.d"
  "CMakeFiles/qta_algo.dir/algo/lambda_returns.cpp.o"
  "CMakeFiles/qta_algo.dir/algo/lambda_returns.cpp.o.d"
  "CMakeFiles/qta_algo.dir/algo/mab_algorithms.cpp.o"
  "CMakeFiles/qta_algo.dir/algo/mab_algorithms.cpp.o.d"
  "CMakeFiles/qta_algo.dir/algo/q_learning.cpp.o"
  "CMakeFiles/qta_algo.dir/algo/q_learning.cpp.o.d"
  "CMakeFiles/qta_algo.dir/algo/sarsa.cpp.o"
  "CMakeFiles/qta_algo.dir/algo/sarsa.cpp.o.d"
  "CMakeFiles/qta_algo.dir/algo/tabular_learner.cpp.o"
  "CMakeFiles/qta_algo.dir/algo/tabular_learner.cpp.o.d"
  "CMakeFiles/qta_algo.dir/algo/trainer.cpp.o"
  "CMakeFiles/qta_algo.dir/algo/trainer.cpp.o.d"
  "libqta_algo.a"
  "libqta_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qta_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

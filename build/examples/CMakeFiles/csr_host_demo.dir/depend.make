# Empty dependencies file for csr_host_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/csr_host_demo.dir/csr_host_demo.cpp.o"
  "CMakeFiles/csr_host_demo.dir/csr_host_demo.cpp.o.d"
  "csr_host_demo"
  "csr_host_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_host_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rover_exploration.dir/rover_exploration.cpp.o"
  "CMakeFiles/rover_exploration.dir/rover_exploration.cpp.o.d"
  "rover_exploration"
  "rover_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rover_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

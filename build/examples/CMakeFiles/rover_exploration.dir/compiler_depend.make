# Empty compiler generated dependencies file for rover_exploration.
# This may be replaced when dependencies are built.

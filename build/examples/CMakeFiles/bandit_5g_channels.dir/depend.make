# Empty dependencies file for bandit_5g_channels.
# This may be replaced when dependencies are built.

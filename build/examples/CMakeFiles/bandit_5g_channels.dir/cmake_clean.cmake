file(REMOVE_RECURSE
  "CMakeFiles/bandit_5g_channels.dir/bandit_5g_channels.cpp.o"
  "CMakeFiles/bandit_5g_channels.dir/bandit_5g_channels.cpp.o.d"
  "bandit_5g_channels"
  "bandit_5g_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandit_5g_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

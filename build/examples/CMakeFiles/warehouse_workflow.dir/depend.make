# Empty dependencies file for warehouse_workflow.
# This may be replaced when dependencies are built.

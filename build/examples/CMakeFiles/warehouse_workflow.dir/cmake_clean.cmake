file(REMOVE_RECURSE
  "CMakeFiles/warehouse_workflow.dir/warehouse_workflow.cpp.o"
  "CMakeFiles/warehouse_workflow.dir/warehouse_workflow.cpp.o.d"
  "warehouse_workflow"
  "warehouse_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cliff_walk_sarsa.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cliff_walk_sarsa.dir/cliff_walk_sarsa.cpp.o"
  "CMakeFiles/cliff_walk_sarsa.dir/cliff_walk_sarsa.cpp.o.d"
  "cliff_walk_sarsa"
  "cliff_walk_sarsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cliff_walk_sarsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cliff_walk_sarsa.

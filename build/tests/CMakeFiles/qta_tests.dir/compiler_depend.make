# Empty compiler generated dependencies file for qta_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algo_test.cpp" "tests/CMakeFiles/qta_tests.dir/algo_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/algo_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/qta_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/boltzmann_test.cpp" "tests/CMakeFiles/qta_tests.dir/boltzmann_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/boltzmann_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/qta_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/device_test.cpp" "tests/CMakeFiles/qta_tests.dir/device_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/device_test.cpp.o.d"
  "/root/repo/tests/driver_test.cpp" "tests/CMakeFiles/qta_tests.dir/driver_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/driver_test.cpp.o.d"
  "/root/repo/tests/env_test.cpp" "tests/CMakeFiles/qta_tests.dir/env_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/env_test.cpp.o.d"
  "/root/repo/tests/fixed_test.cpp" "tests/CMakeFiles/qta_tests.dir/fixed_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/fixed_test.cpp.o.d"
  "/root/repo/tests/golden_model_test.cpp" "tests/CMakeFiles/qta_tests.dir/golden_model_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/golden_model_test.cpp.o.d"
  "/root/repo/tests/grid_map_test.cpp" "tests/CMakeFiles/qta_tests.dir/grid_map_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/grid_map_test.cpp.o.d"
  "/root/repo/tests/hw_test.cpp" "tests/CMakeFiles/qta_tests.dir/hw_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/hw_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/qta_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/lambda_test.cpp" "tests/CMakeFiles/qta_tests.dir/lambda_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/lambda_test.cpp.o.d"
  "/root/repo/tests/mab_test.cpp" "tests/CMakeFiles/qta_tests.dir/mab_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/mab_test.cpp.o.d"
  "/root/repo/tests/math_lut_test.cpp" "tests/CMakeFiles/qta_tests.dir/math_lut_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/math_lut_test.cpp.o.d"
  "/root/repo/tests/multi_pipeline_test.cpp" "tests/CMakeFiles/qta_tests.dir/multi_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/multi_pipeline_test.cpp.o.d"
  "/root/repo/tests/pipeline_equivalence_test.cpp" "tests/CMakeFiles/qta_tests.dir/pipeline_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/pipeline_equivalence_test.cpp.o.d"
  "/root/repo/tests/pipeline_fuzz_test.cpp" "tests/CMakeFiles/qta_tests.dir/pipeline_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/pipeline_fuzz_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/qta_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/policy_test.cpp" "tests/CMakeFiles/qta_tests.dir/policy_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/policy_test.cpp.o.d"
  "/root/repo/tests/qtaccel_config_test.cpp" "tests/CMakeFiles/qta_tests.dir/qtaccel_config_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/qtaccel_config_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/qta_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/stateful_bandit_test.cpp" "tests/CMakeFiles/qta_tests.dir/stateful_bandit_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/stateful_bandit_test.cpp.o.d"
  "/root/repo/tests/table_io_test.cpp" "tests/CMakeFiles/qta_tests.dir/table_io_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/table_io_test.cpp.o.d"
  "/root/repo/tests/waveform_test.cpp" "tests/CMakeFiles/qta_tests.dir/waveform_test.cpp.o" "gcc" "tests/CMakeFiles/qta_tests.dir/waveform_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qta_qtaccel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for qta_tests.
# This may be replaced when dependencies are built.

// qtserved — the TCP frontend of the serving layer (docs/serving.md).
//
// A single-threaded poll() loop owns all sockets and the serve::Server
// control plane; engine work fans out onto the server's ThreadPool from
// inside Server::pump(). Per connection the loop keeps an input buffer
// (unframed with serve/protocol.h), an output buffer (nonblocking
// sends, partial writes carried over), and the FIFO of tickets still in
// flight — responses go back in request order, which is also the
// protocol's per-session ordering guarantee as long as a session stays
// on one connection.
//
// Usage: qtserved [--port=7477] [--port-file=path]
//                 [--max-hot=8] [--workers=4] [--max-queue=64]
//                 [--trace=out.json] [--verbose]
//                 [--http-port=N] [--http-port-file=path]
//                 [--flight-capacity=256]
//                 [--park-format=v3] [--sync-park] [--max-delta-chain=4]
//                 [--migrate-format=v3]
//
// --port=0 lets the kernel pick; --port-file writes the bound port for
// scripts. --http-port opens a second listener speaking plain HTTP
// (serve/http_endpoint.h: /metrics for Prometheus, /healthz,
// /flightrecorder) on the same poll loop — scrape connections are
// one-shot and never touch engine state. --flight-capacity sizes the
// flight-recorder ring (0 disables it). Checkpointing knobs
// (docs/serving.md): --park-format=v2|v3 picks the full-image format
// for cold sessions, --max-delta-chain bounds the v3 delta chain
// (0 = full images only), and --sync-park serializes parks inline on
// the control thread instead of overlapping them with batch execution.
// --migrate-format=v2|v3 is the escape hatch mirroring --park-format
// for MigrateOut payloads: v3 (default) ships a cold session's parked
// delta chain verbatim, v2 materializes plain snapshot text first.
// A Shutdown request stops the accept loop, drains every staged
// request and output buffer, optionally writes the trace, and exits 0.
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <deque>
#include <fstream>
#include <iostream>
#include <list>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.h"
#include "serve/http_endpoint.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/tcp.h"

using namespace qta;

namespace {

struct Connection {
  int fd = serve::kInvalidSocket;
  std::string inbuf;
  std::string outbuf;
  std::deque<serve::Ticket> in_flight;  // response order == request order
  bool dead = false;
};

// Drains the socket into conn.inbuf. Returns false when the peer hung
// up or errored.
bool read_some(Connection& conn) {
  char chunk[65536];
  while (true) {
    const ssize_t r = ::recv(conn.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (r > 0) {
      conn.inbuf.append(chunk, static_cast<std::size_t>(r));
      continue;
    }
    if (r == 0) return false;  // orderly EOF
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
}

// Pushes conn.outbuf to the socket without blocking. Returns false on a
// hard send error.
bool write_some(Connection& conn) {
  while (!conn.outbuf.empty()) {
    const ssize_t r = ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (r < 0) {
      return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
    }
    conn.outbuf.erase(0, static_cast<std::size_t>(r));
  }
  return true;
}

// One HTTP scrape: read until the blank line ending the request head,
// answer, flush, close. No keep-alive, no pipelining — Prometheus is
// happy with that and the loop stays trivial.
struct HttpConnection {
  int fd = serve::kInvalidSocket;
  std::string inbuf;
  std::string outbuf;
  bool responded = false;
  bool dead = false;
};

bool http_read_some(HttpConnection& conn) {
  char chunk[4096];
  while (true) {
    const ssize_t r = ::recv(conn.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (r > 0) {
      conn.inbuf.append(chunk, static_cast<std::size_t>(r));
      if (conn.inbuf.size() > (64u << 10)) return false;  // absurd head
      continue;
    }
    if (r == 0) return false;
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
}

bool http_write_some(HttpConnection& conn) {
  while (!conn.outbuf.empty()) {
    const ssize_t r = ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (r < 0) {
      return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
    }
    conn.outbuf.erase(0, static_cast<std::size_t>(r));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  serve::ServerOptions options;
  options.max_hot = static_cast<unsigned>(flags.get_int("max-hot", 8));
  options.workers = static_cast<unsigned>(flags.get_int("workers", 4));
  options.max_queue =
      static_cast<std::size_t>(flags.get_int("max-queue", 64));
  const std::string trace_path = flags.get_string("trace", "");
  options.trace = !trace_path.empty();
  options.flight_recorder_capacity =
      static_cast<std::size_t>(flags.get_int("flight-capacity", 256));
  const std::string park_format = flags.get_string("park-format", "v3");
  if (park_format == "v2") {
    options.park_format = serve::ParkFormat::kV2Text;
  } else if (park_format != "v3") {
    std::cerr << "qtserved: --park-format must be v2 or v3\n";
    return 2;
  }
  const std::string migrate_format = flags.get_string("migrate-format", "v3");
  if (migrate_format == "v2") {
    options.migrate_format = serve::ParkFormat::kV2Text;
  } else if (migrate_format != "v3") {
    std::cerr << "qtserved: --migrate-format must be v2 or v3\n";
    return 2;
  }
  options.async_park = !flags.get_bool("sync-park", false);
  options.max_delta_chain =
      static_cast<unsigned>(flags.get_int("max-delta-chain", 4));
  const auto port = static_cast<std::uint16_t>(flags.get_int("port", 7477));
  const std::string port_file = flags.get_string("port-file", "");
  const std::int64_t http_port_flag = flags.get_int("http-port", -1);
  const std::string http_port_file = flags.get_string("http-port-file", "");
  const bool verbose = flags.get_bool("verbose", false);
  for (const auto& unused : flags.unused()) {
    std::cerr << "qtserved: unknown flag --" << unused << "\n";
    return 2;
  }

  std::string error;
  std::uint16_t bound_port = 0;
  int listen_fd = serve::tcp_listen(port, &bound_port, &error);
  if (listen_fd == serve::kInvalidSocket) {
    std::cerr << "qtserved: " << error << "\n";
    return 1;
  }
  // Nonblocking accepts: the loop drains the backlog after each POLLIN
  // and must not park inside accept() waiting for the next peer.
  ::fcntl(listen_fd, F_SETFL, O_NONBLOCK);
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << bound_port << "\n";
    if (!pf) {
      std::cerr << "qtserved: cannot write " << port_file << "\n";
      return 1;
    }
  }

  int http_fd = serve::kInvalidSocket;
  std::uint16_t http_port = 0;
  if (http_port_flag >= 0) {
    http_fd = serve::tcp_listen(static_cast<std::uint16_t>(http_port_flag),
                                &http_port, &error);
    if (http_fd == serve::kInvalidSocket) {
      std::cerr << "qtserved: http listener: " << error << "\n";
      return 1;
    }
    ::fcntl(http_fd, F_SETFL, O_NONBLOCK);
    if (!http_port_file.empty()) {
      std::ofstream pf(http_port_file);
      pf << http_port << "\n";
      if (!pf) {
        std::cerr << "qtserved: cannot write " << http_port_file << "\n";
        return 1;
      }
    }
  }

  serve::Server server(options);
  std::cout << "qtserved listening on 127.0.0.1:" << bound_port
            << " (max-hot=" << options.max_hot
            << " workers=" << options.workers
            << " max-queue=" << options.max_queue << ")" << std::endl;
  if (http_fd != serve::kInvalidSocket) {
    std::cout << "qtserved http on 127.0.0.1:" << http_port
              << " (/metrics /healthz /flightrecorder)" << std::endl;
  }

  std::list<Connection> conns;
  std::list<HttpConnection> http_conns;
  std::vector<serve::Ticket> orphans;  // tickets of closed connections

  while (true) {
    // Assemble the poll set: the listener (while accepting) + sockets.
    // `polled` mirrors the connection entries of `fds` — connections
    // accepted later this iteration are not in either (std::list keeps
    // the pointers stable across the push_backs).
    std::vector<pollfd> fds;
    std::vector<Connection*> polled;
    if (listen_fd != serve::kInvalidSocket) {
      fds.push_back(pollfd{listen_fd, POLLIN, 0});
    }
    for (Connection& conn : conns) {
      const short events = static_cast<short>(
          conn.outbuf.empty() ? POLLIN : (POLLIN | POLLOUT));
      fds.push_back(pollfd{conn.fd, events, 0});
      polled.push_back(&conn);
    }
    std::size_t http_listen_idx = fds.size();
    if (http_fd != serve::kInvalidSocket) {
      fds.push_back(pollfd{http_fd, POLLIN, 0});
    }
    std::vector<HttpConnection*> http_polled;
    for (HttpConnection& conn : http_conns) {
      const short events = static_cast<short>(
          conn.outbuf.empty() ? POLLIN : (POLLIN | POLLOUT));
      fds.push_back(pollfd{conn.fd, events, 0});
      http_polled.push_back(&conn);
    }
    const bool draining = server.shutdown_requested();
    if (draining && !server.pending() && orphans.empty()) {
      bool flushed = true;
      for (Connection& conn : conns) {
        if (!conn.outbuf.empty() || !conn.in_flight.empty()) {
          flushed = false;
        }
      }
      if (flushed) break;
    }
    const int timeout_ms =
        (server.pending() || !orphans.empty() || draining) ? 0 : -1;
    if (fds.empty() && timeout_ms < 0) break;  // nothing left to wait on
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0 && errno != EINTR) {
      std::cerr << "qtserved: poll failed\n";
      return 1;
    }

    // Accept new peers.
    std::size_t idx = 0;
    if (listen_fd != serve::kInvalidSocket) {
      if ((fds[idx].revents & POLLIN) != 0) {
        while (true) {
          const int fd = ::accept(listen_fd, nullptr, nullptr);
          if (fd < 0) break;
          Connection conn;
          conn.fd = fd;
          conns.push_back(std::move(conn));
          if (verbose) std::cerr << "qtserved: accepted fd " << fd << "\n";
        }
      }
      ++idx;
    }

    // Ingest every readable connection fully, submitting each decoded
    // frame, BEFORE pumping: a burst from many sessions lands in one
    // queue generation and batches across sessions.
    for (Connection* conn_ptr : polled) {
      Connection& conn = *conn_ptr;
      const short revents = fds[idx++].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        if (!read_some(conn)) conn.dead = true;
        while (!conn.dead) {
          bool oversized = false;
          std::optional<std::string> payload =
              serve::unframe(conn.inbuf, &oversized);
          if (oversized) {
            std::cerr << "qtserved: dropping peer (oversized frame)\n";
            conn.dead = true;
            break;
          }
          if (!payload.has_value()) break;
          std::string why;
          std::optional<serve::Request> req =
              serve::decode_request(*payload, &why);
          if (!req.has_value()) {
            serve::Response resp;
            resp.status = serve::Status::kError;
            resp.error = "bad request: " + why;
            conn.outbuf += serve::frame(serve::encode_response(resp));
            continue;
          }
          conn.in_flight.push_back(server.submit(*req));
        }
      }
    }

    // HTTP plane: accept scrapers, answer complete request heads. All
    // of it is registry/flight-recorder reads on the control thread —
    // by design it cannot touch sessions or engines.
    if (http_fd != serve::kInvalidSocket) {
      if ((fds[http_listen_idx].revents & POLLIN) != 0) {
        while (true) {
          const int fd = ::accept(http_fd, nullptr, nullptr);
          if (fd < 0) break;
          HttpConnection conn;
          conn.fd = fd;
          http_conns.push_back(std::move(conn));
        }
      }
    }
    {
      std::size_t http_idx =
          http_listen_idx + (http_fd != serve::kInvalidSocket ? 1 : 0);
      for (HttpConnection* conn_ptr : http_polled) {
        HttpConnection& conn = *conn_ptr;
        const short revents = fds[http_idx++].revents;
        if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
            !conn.responded) {
          if (!http_read_some(conn)) conn.dead = true;
          const std::size_t head_end = conn.inbuf.find("\r\n\r\n");
          if (head_end != std::string::npos ||
              conn.inbuf.find("\n\n") != std::string::npos) {
            conn.outbuf = serve::handle_http(server, conn.inbuf);
            conn.responded = true;
          }
        }
      }
    }
    for (HttpConnection& conn : http_conns) {
      if (!conn.dead && !http_write_some(conn)) conn.dead = true;
    }
    http_conns.remove_if([](HttpConnection& conn) {
      const bool finished =
          conn.dead || (conn.responded && conn.outbuf.empty());
      if (finished) serve::tcp_close(conn.fd);
      return finished;
    });

    if (server.pending()) server.pump();

    // Deliver finished responses in per-connection FIFO order, then
    // flush what the sockets will take.
    for (Connection& conn : conns) {
      while (!conn.in_flight.empty() &&
             server.done(conn.in_flight.front())) {
        serve::Response resp = server.take(conn.in_flight.front());
        conn.in_flight.pop_front();
        conn.outbuf += serve::frame(serve::encode_response(resp));
      }
      if (!conn.dead && !write_some(conn)) conn.dead = true;
    }

    // Reap dead connections; their unfinished tickets become orphans
    // that still need take()ing once they complete.
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->dead) {
        for (const serve::Ticket t : it->in_flight) orphans.push_back(t);
        serve::tcp_close(it->fd);
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
    std::erase_if(orphans, [&server](serve::Ticket t) {
      if (!server.done(t)) return false;
      (void)server.take(t);
      return true;
    });
  }

  serve::tcp_close(listen_fd);
  if (http_fd != serve::kInvalidSocket) serve::tcp_close(http_fd);
  for (Connection& conn : conns) serve::tcp_close(conn.fd);
  for (HttpConnection& conn : http_conns) serve::tcp_close(conn.fd);

  if (!trace_path.empty() && server.trace() != nullptr) {
    if (!server.trace()->write_file(trace_path)) {
      std::cerr << "qtserved: failed to write " << trace_path << "\n";
      return 1;
    }
  }
  std::cout << "qtserved: drained, exiting ("
            << server.sessions().lru_evictions() << " LRU evictions, "
            << server.sessions().restores() << " restores)" << std::endl;
  return 0;
}

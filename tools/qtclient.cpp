// qtclient — closed-loop load generator and correctness checker for
// qtserved (docs/serving.md).
//
// One TCP connection carries every session (qtserved preserves
// per-connection FIFO order, which subsumes per-session ordering). Each
// round the client bursts one Step per session, then reads the replies;
// kOverloaded replies are retried in follow-up bursts until the round
// completes, so admission-control pushback slows the client down
// instead of losing work. After the last round each session is Queried
// once (exercising the Q-row decoding path).
//
// Usage: qtclient --port=P [--host=127.0.0.1]
//                 [--sessions=64] [--rounds=8] [--steps=512]
//                 [--algorithm={q_learning,sarsa,expected_sarsa,double_q}]
//                 [--backend={cycle,fast,lanes}] [--width=8] [--height=8]
//                 [--actions=4] [--seed-base=1] [--telemetry]
//                 [--burst=0] [--verify] [--expect-overload]
//                 [--stats] [--stats-json=FILE] [--shutdown]
//
// --burst caps how many Steps are in flight per burst (0 = all
//   sessions at once, the overload-provoking default).
// --verify replays every session locally with the identical Step
//   partitioning and byte-compares the server's Snapshot text against
//   the local one: bit-exactness across the wire, evictions included.
// --expect-overload exits nonzero unless at least one kOverloaded
//   reply was observed (CI uses it to prove backpressure engages).
#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "env/grid_world.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"
#include "serve/protocol.h"
#include "serve/tcp.h"

using namespace qta;

namespace {

struct Client {
  int fd = serve::kInvalidSocket;
  std::string error;

  bool send(const serve::Request& req) {
    return serve::send_frame(fd, serve::encode_request(req), &error);
  }
  bool recv(serve::Response* resp) {
    std::string payload;
    if (!serve::recv_frame(fd, &payload, &error)) return false;
    std::optional<serve::Response> decoded =
        serve::decode_response(payload, &error);
    if (!decoded.has_value()) return false;
    *resp = std::move(*decoded);
    return true;
  }
};

bool parse_algorithm(const std::string& name, qtaccel::Algorithm* out) {
  if (name == "q_learning") *out = qtaccel::Algorithm::kQLearning;
  else if (name == "sarsa") *out = qtaccel::Algorithm::kSarsa;
  else if (name == "expected_sarsa") *out = qtaccel::Algorithm::kExpectedSarsa;
  else if (name == "double_q") *out = qtaccel::Algorithm::kDoubleQ;
  else return false;
  return true;
}

int fail(const Client& client, const std::string& what) {
  std::cerr << "qtclient: " << what
            << (client.error.empty() ? "" : ": " + client.error) << "\n";
  return 1;
}

/// Closed-loop burst: sends make_req(i) for every i in [0, count),
/// reads the replies, and retries kOverloaded ones in follow-up bursts
/// until everything succeeded. OK replies go through check(i, resp);
/// kOverloaded replies bump *overloads. Any other status (or I/O
/// failure) stops the loop with false.
bool closed_loop(Client& client, std::size_t count, std::size_t burst,
                 std::uint64_t* overloads, std::string* problem,
                 const std::function<serve::Request(std::size_t)>& make_req,
                 const std::function<bool(std::size_t, const serve::Response&,
                                          std::string*)>& check) {
  std::vector<std::size_t> todo(count);
  for (std::size_t i = 0; i < count; ++i) todo[i] = i;
  while (!todo.empty()) {
    const std::size_t n =
        burst == 0 ? todo.size() : std::min(burst, todo.size());
    for (std::size_t k = 0; k < n; ++k) {
      if (!client.send(make_req(todo[k]))) {
        *problem = "send failed";
        return false;
      }
    }
    std::vector<std::size_t> retry;
    for (std::size_t k = 0; k < n; ++k) {
      serve::Response resp;
      if (!client.recv(&resp)) {
        *problem = "recv failed";
        return false;
      }
      if (resp.status == serve::Status::kOverloaded) {
        ++*overloads;
        retry.push_back(todo[k]);
        continue;
      }
      if (resp.status != serve::Status::kOk) {
        *problem = "request failed: " + resp.error;
        return false;
      }
      if (!check(todo[k], resp, problem)) return false;
    }
    todo.erase(todo.begin(), todo.begin() + static_cast<std::ptrdiff_t>(n));
    todo.insert(todo.begin(), retry.begin(), retry.end());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::string host = flags.get_string("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(flags.get_int("port", 7477));
  const auto sessions = static_cast<std::size_t>(flags.get_int("sessions", 64));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 8));
  const auto steps = static_cast<std::uint64_t>(flags.get_int("steps", 512));
  const auto burst = static_cast<std::size_t>(flags.get_int("burst", 0));

  serve::SessionSpec spec;
  spec.width = static_cast<unsigned>(flags.get_int("width", 8));
  spec.height = static_cast<unsigned>(flags.get_int("height", 8));
  spec.actions = static_cast<unsigned>(flags.get_int("actions", 4));
  spec.backend = qtaccel::parse_backend(flags.get_string("backend", "fast"));
  spec.telemetry = flags.get_bool("telemetry", false);
  const std::string algorithm = flags.get_string("algorithm", "q_learning");
  if (!parse_algorithm(algorithm, &spec.algorithm)) {
    std::cerr << "qtclient: unknown --algorithm " << algorithm << "\n";
    return 2;
  }
  const auto seed_base =
      static_cast<std::uint64_t>(flags.get_int("seed-base", 1));
  const bool verify = flags.get_bool("verify", false);
  const bool expect_overload = flags.get_bool("expect-overload", false);
  const bool want_stats = flags.get_bool("stats", false);
  const std::string stats_json_path = flags.get_string("stats-json", "");
  const bool want_shutdown = flags.get_bool("shutdown", false);
  for (const auto& unused : flags.unused()) {
    std::cerr << "qtclient: unknown flag --" << unused << "\n";
    return 2;
  }

  Client client;
  client.fd = serve::tcp_connect(host, port, &client.error);
  if (client.fd == serve::kInvalidSocket) return fail(client, "connect");

  // Create every session in one burst.
  std::vector<serve::SessionId> ids(sessions);
  std::vector<serve::SessionSpec> specs(sessions, spec);
  for (std::size_t i = 0; i < sessions; ++i) {
    specs[i].seed = seed_base + i;
    serve::Request req;
    req.type = serve::RequestType::kCreateSession;
    req.spec = specs[i];
    if (!client.send(req)) return fail(client, "send create");
  }
  for (std::size_t i = 0; i < sessions; ++i) {
    serve::Response resp;
    if (!client.recv(&resp)) return fail(client, "recv create");
    if (resp.status != serve::Status::kOk) {
      return fail(client, "create rejected: " + resp.error);
    }
    ids[i] = resp.session;
  }

  // Closed training loop: burst Steps, collect, retry overloads.
  std::uint64_t overloads = 0;
  std::string problem;
  for (std::size_t round = 0; round < rounds; ++round) {
    const bool ok = closed_loop(
        client, sessions, burst, &overloads, &problem,
        [&](std::size_t i) {
          serve::Request req;
          req.type = serve::RequestType::kStep;
          req.session = ids[i];
          req.steps = steps;
          return req;
        },
        [&](std::size_t, const serve::Response& resp, std::string* why) {
          // Each Step advances by `steps`; drain overshoot makes the
          // total a lower bound, not an equality.
          const std::uint64_t want = steps * (round + 1);
          if (resp.samples < want) {
            std::ostringstream os;
            os << "session " << resp.session << " retired " << resp.samples
               << " samples, expected at least " << want;
            *why = os.str();
            return false;
          }
          return true;
        });
    if (!ok) return fail(client, problem);
  }

  // One Query per session: decodes the Q row and greedy action.
  if (!closed_loop(
          client, sessions, burst, &overloads, &problem,
          [&](std::size_t i) {
            serve::Request req;
            req.type = serve::RequestType::kQuery;
            req.session = ids[i];
            req.state = 0;
            return req;
          },
          [&](std::size_t, const serve::Response& resp, std::string* why) {
            if (resp.q_row.size() != spec.actions ||
                resp.action >= spec.actions) {
              *why = "query reply has a malformed Q row";
              return false;
            }
            return true;
          })) {
    return fail(client, problem);
  }

  // Bit-exactness across the wire: server snapshot vs local replay with
  // the identical run partitioning.
  std::size_t verified = 0;
  if (verify) {
    const bool ok = closed_loop(
        client, sessions, burst, &overloads, &problem,
        [&](std::size_t i) {
          serve::Request req;
          req.type = serve::RequestType::kSnapshot;
          req.session = ids[i];
          return req;
        },
        [&](std::size_t i, const serve::Response& resp, std::string* why) {
          env::GridWorldConfig gc;
          gc.width = specs[i].width;
          gc.height = specs[i].height;
          gc.num_actions = specs[i].actions;
          env::GridWorld world(gc);
          runtime::Engine replay(world, serve::make_config(specs[i]));
          // Identical run partitioning to the server's Step handling:
          // advance BY `steps` from whatever total the last call
          // reached.
          for (std::size_t round = 0; round < rounds; ++round) {
            replay.run_samples(replay.stats().samples + steps);
          }
          std::ostringstream local;
          runtime::save_snapshot(replay, local);
          if (resp.snapshot != local.str()) {
            std::ostringstream os;
            os << "session " << ids[i]
               << ": server snapshot differs from local replay";
            *why = os.str();
            return false;
          }
          ++verified;
          return true;
        });
    if (!ok) return fail(client, problem);
  }

  if (want_stats || !stats_json_path.empty()) {
    serve::Request req;
    req.type = serve::RequestType::kStats;
    if (!client.send(req)) return fail(client, "send stats");
    serve::Response resp;
    if (!client.recv(&resp)) return fail(client, "recv stats");
    if (resp.status != serve::Status::kOk) {
      return fail(client, "stats failed: " + resp.error);
    }
    if (want_stats) std::cout << resp.stats_prometheus;
    if (!stats_json_path.empty()) {
      std::ofstream out(stats_json_path);
      out << resp.stats_json;
      if (!out) return fail(client, "cannot write " + stats_json_path);
    }
  }

  if (want_shutdown) {
    serve::Request req;
    req.type = serve::RequestType::kShutdown;
    if (!client.send(req)) return fail(client, "send shutdown");
    serve::Response resp;
    if (!client.recv(&resp)) return fail(client, "recv shutdown");
    if (resp.status != serve::Status::kOk) {
      return fail(client, "shutdown failed: " + resp.error);
    }
  }
  serve::tcp_close(client.fd);

  std::cout << "qtclient: " << sessions << " sessions x " << rounds
            << " rounds x " << steps << " steps (" << algorithm << ", "
            << qtaccel::backend_name(spec.backend) << "): ok, "
            << overloads << " overload replies";
  if (verify) std::cout << ", " << verified << " snapshots verified";
  std::cout << "\n";
  if (expect_overload && overloads == 0) {
    std::cerr << "qtclient: expected overload replies but saw none\n";
    return 1;
  }
  return 0;
}

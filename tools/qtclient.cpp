// qtclient — closed-loop load generator and correctness checker for
// qtserved (docs/serving.md).
//
// One TCP connection carries every session (qtserved preserves
// per-connection FIFO order, which subsumes per-session ordering). Each
// round the client bursts one Step per session, then reads the replies;
// kOverloaded replies are retried in follow-up bursts until the round
// completes, so admission-control pushback slows the client down
// instead of losing work. After the last round each session is Queried
// once (exercising the Q-row decoding path).
//
// Usage: qtclient --port=P [--host=127.0.0.1]
//                 [--sessions=64] [--rounds=8] [--steps=512]
//                 [--algorithm={q_learning,sarsa,expected_sarsa,double_q}]
//                 [--backend={cycle,fast,lanes}] [--width=8] [--height=8]
//                 [--actions=4] [--seed-base=1] [--telemetry]
//                 [--burst=0] [--verify] [--expect-overload]
//                 [--stats] [--stats-json=FILE] [--shutdown]
//                 [--trace-id=N]
//                 [--introspect-flight=FILE] [--introspect-session=ID]
//                 [--top] [--top-count=5] [--interval-ms=1000]
//                 [--shards=host:port] [--expect-migration]
//                 [--mid-run-cmd=CMD]
//
// --burst caps how many Steps are in flight per burst (0 = all
//   sessions at once, the overload-provoking default).
// --verify replays every session locally with the identical Step
//   partitioning and byte-compares the server's Snapshot text against
//   the local one: bit-exactness across the wire, evictions included.
// --expect-overload exits nonzero unless at least one kOverloaded
//   reply was observed (CI uses it to prove backpressure engages).
// --trace-id stamps every frame with that wire trace id (v2 trace
//   context), so a server started with --trace emits the run's span
//   chains under one correlatable id.
// --introspect-flight asks the server for its flight-recorder JSON dump
//   (Introspect probe) and writes it to FILE after the run.
// --introspect-session prints the given session id's state summary.
// --top is a live view instead of a load run: it polls the server's
//   metrics every --interval-ms and prints sessions, request totals,
//   overloads, and latency p50/p95/p99 (log2-bucket upper bounds)
//   per poll, --top-count times.
// --shards=host:port points the client at a qtrouterd instead of a
//   single qtserved (it overrides --host/--port). Everything else is
//   unchanged — the router speaks the same wire protocol — and after
//   the run the router's topology (Shards probe) is printed.
// --expect-migration exits nonzero unless the router reports at least
//   one completed live migration (CI pairs it with the router's
//   --migrate-every to prove mid-run migrations stay bit-invisible
//   under --verify). Requires --shards.
// --mid-run-cmd runs CMD via the shell once, halfway through the
//   training rounds — the CI hook for killing a worker mid-run to
//   prove failover is bit-exact.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "env/grid_world.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"
#include "serve/protocol.h"
#include "serve/tcp.h"

using namespace qta;

namespace {

struct Client {
  int fd = serve::kInvalidSocket;
  std::string error;

  bool send(const serve::Request& req) {
    return serve::send_frame(fd, serve::encode_request(req), &error);
  }
  bool recv(serve::Response* resp) {
    std::string payload;
    if (!serve::recv_frame(fd, &payload, &error)) return false;
    std::optional<serve::Response> decoded =
        serve::decode_response(payload, &error);
    if (!decoded.has_value()) return false;
    *resp = std::move(*decoded);
    return true;
  }
};

bool parse_algorithm(const std::string& name, qtaccel::Algorithm* out) {
  if (name == "q_learning") *out = qtaccel::Algorithm::kQLearning;
  else if (name == "sarsa") *out = qtaccel::Algorithm::kSarsa;
  else if (name == "expected_sarsa") *out = qtaccel::Algorithm::kExpectedSarsa;
  else if (name == "double_q") *out = qtaccel::Algorithm::kDoubleQ;
  else return false;
  return true;
}

int fail(const Client& client, const std::string& what) {
  std::cerr << "qtclient: " << what
            << (client.error.empty() ? "" : ": " + client.error) << "\n";
  return 1;
}

/// Closed-loop burst: sends make_req(i) for every i in [0, count),
/// reads the replies, and retries kOverloaded ones in follow-up bursts
/// until everything succeeded. OK replies go through check(i, resp);
/// kOverloaded replies bump *overloads. Any other status (or I/O
/// failure) stops the loop with false.
bool closed_loop(Client& client, std::size_t count, std::size_t burst,
                 std::uint64_t* overloads, std::string* problem,
                 const std::function<serve::Request(std::size_t)>& make_req,
                 const std::function<bool(std::size_t, const serve::Response&,
                                          std::string*)>& check) {
  std::vector<std::size_t> todo(count);
  for (std::size_t i = 0; i < count; ++i) todo[i] = i;
  while (!todo.empty()) {
    const std::size_t n =
        burst == 0 ? todo.size() : std::min(burst, todo.size());
    for (std::size_t k = 0; k < n; ++k) {
      if (!client.send(make_req(todo[k]))) {
        *problem = "send failed";
        return false;
      }
    }
    std::vector<std::size_t> retry;
    for (std::size_t k = 0; k < n; ++k) {
      serve::Response resp;
      if (!client.recv(&resp)) {
        *problem = "recv failed";
        return false;
      }
      if (resp.status == serve::Status::kOverloaded) {
        ++*overloads;
        retry.push_back(todo[k]);
        continue;
      }
      if (resp.status != serve::Status::kOk) {
        *problem = "request failed: " + resp.error;
        return false;
      }
      if (!check(todo[k], resp, problem)) return false;
    }
    todo.erase(todo.begin(), todo.begin() + static_cast<std::ptrdiff_t>(n));
    todo.insert(todo.begin(), retry.begin(), retry.end());
  }
  return true;
}

// --- --top support: a tiny Prometheus exposition-text reader ---------
//
// Enough of the format to summarize qtserved's own output (which
// metrics.cpp emits): `name{k="v",...} value` lines, `# `-prefixed
// comments, histogram buckets as cumulative `name_bucket{...,le="N"}`
// series with integer upper bounds plus a trailing le="+Inf".

struct PromLine {
  std::string name;
  std::string labels;  // raw text between the braces, "" when absent
  double value = 0.0;
};

bool parse_prom_line(const std::string& line, PromLine* out) {
  if (line.empty() || line[0] == '#') return false;
  std::size_t pos = line.find_first_of("{ ");
  if (pos == std::string::npos) return false;
  out->name = line.substr(0, pos);
  if (line[pos] == '{') {
    const std::size_t close = line.find('}', pos);
    if (close == std::string::npos) return false;
    out->labels = line.substr(pos + 1, close - pos - 1);
    pos = close + 1;
  } else {
    out->labels.clear();
  }
  std::istringstream rest(line.substr(pos));
  return static_cast<bool>(rest >> out->value);
}

std::string label_value(const std::string& labels, const std::string& key) {
  const std::string needle = key + "=\"";
  std::size_t pos = labels.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  const std::size_t end = labels.find('"', pos);
  if (end == std::string::npos) return "";
  return labels.substr(pos, end - pos);
}

struct TopSnapshot {
  double live = 0;
  double hot = 0;
  double requests = 0;   // summed over {type=...}
  double overloads = 0;
  std::uint64_t total = 0;  // latency samples across all series
  std::uint64_t p50 = 0;    // log2-bucket upper bounds (microseconds)
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
};

/// Nearest-rank percentile over merged bucket increments.
std::uint64_t merged_percentile(
    const std::map<std::uint64_t, std::uint64_t>& merged, std::uint64_t total,
    double q) {
  if (total == 0) return 0;
  auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (const auto& [upper, count] : merged) {
    seen += count;
    if (seen >= rank) return upper;
  }
  return merged.empty() ? 0 : merged.rbegin()->first;
}

TopSnapshot summarize_prometheus(const std::string& text) {
  TopSnapshot snap;
  // Buckets are cumulative per series; to merge across label sets
  // (type/path), diff each series against its own running cumulative
  // and pool the increments by upper bound.
  std::map<std::string, double> series_cumulative;
  std::map<std::uint64_t, std::uint64_t> merged;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    PromLine p;
    if (!parse_prom_line(line, &p)) continue;
    if (p.name == "qtserve_sessions_live") snap.live = p.value;
    else if (p.name == "qtserve_sessions_hot") snap.hot = p.value;
    else if (p.name == "qtserve_requests_total") snap.requests += p.value;
    else if (p.name == "qtserve_overload_total") snap.overloads += p.value;
    else if (p.name == "qtserve_request_latency_us_bucket") {
      const std::string le = label_value(p.labels, "le");
      const std::string key = p.labels.substr(0, p.labels.find("le=\""));
      const double delta = p.value - series_cumulative[key];
      series_cumulative[key] = p.value;
      if (le.empty() || le == "+Inf" || delta <= 0) continue;
      const auto upper =
          static_cast<std::uint64_t>(std::strtoull(le.c_str(), nullptr, 10));
      merged[upper] += static_cast<std::uint64_t>(delta);
      snap.total += static_cast<std::uint64_t>(delta);
    }
  }
  snap.p50 = merged_percentile(merged, snap.total, 0.50);
  snap.p95 = merged_percentile(merged, snap.total, 0.95);
  snap.p99 = merged_percentile(merged, snap.total, 0.99);
  return snap;
}

/// Sends one Introspect probe and returns the reply's introspect_json;
/// nullopt (with *problem set) on any failure.
std::optional<std::string> introspect(Client& client,
                                      serve::IntrospectProbe probe,
                                      serve::SessionId session,
                                      std::uint64_t trace_id,
                                      std::string* problem) {
  serve::Request req;
  req.type = serve::RequestType::kIntrospect;
  req.probe = probe;
  req.session = session;
  req.trace_id = trace_id;
  if (!client.send(req)) {
    *problem = "send introspect";
    return std::nullopt;
  }
  serve::Response resp;
  if (!client.recv(&resp)) {
    *problem = "recv introspect";
    return std::nullopt;
  }
  if (resp.status != serve::Status::kOk) {
    *problem = "introspect failed: " + resp.error;
    return std::nullopt;
  }
  return resp.introspect_json;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::string host = flags.get_string("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(flags.get_int("port", 7477));
  const auto sessions = static_cast<std::size_t>(flags.get_int("sessions", 64));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 8));
  const auto steps = static_cast<std::uint64_t>(flags.get_int("steps", 512));
  const auto burst = static_cast<std::size_t>(flags.get_int("burst", 0));

  serve::SessionSpec spec;
  spec.width = static_cast<unsigned>(flags.get_int("width", 8));
  spec.height = static_cast<unsigned>(flags.get_int("height", 8));
  spec.actions = static_cast<unsigned>(flags.get_int("actions", 4));
  spec.backend = qtaccel::parse_backend(flags.get_string("backend", "fast"));
  spec.telemetry = flags.get_bool("telemetry", false);
  const std::string algorithm = flags.get_string("algorithm", "q_learning");
  if (!parse_algorithm(algorithm, &spec.algorithm)) {
    std::cerr << "qtclient: unknown --algorithm " << algorithm << "\n";
    return 2;
  }
  const auto seed_base =
      static_cast<std::uint64_t>(flags.get_int("seed-base", 1));
  const bool verify = flags.get_bool("verify", false);
  const bool expect_overload = flags.get_bool("expect-overload", false);
  const bool want_stats = flags.get_bool("stats", false);
  const std::string stats_json_path = flags.get_string("stats-json", "");
  const bool want_shutdown = flags.get_bool("shutdown", false);
  const auto trace_id = static_cast<std::uint64_t>(flags.get_int("trace-id", 0));
  const std::string flight_path = flags.get_string("introspect-flight", "");
  const std::int64_t introspect_session =
      flags.get_int("introspect-session", -1);
  const bool top = flags.get_bool("top", false);
  const auto top_count = static_cast<std::size_t>(flags.get_int("top-count", 5));
  const auto interval_ms =
      static_cast<std::uint64_t>(flags.get_int("interval-ms", 1000));
  const std::string shards_addr = flags.get_string("shards", "");
  const bool expect_migration = flags.get_bool("expect-migration", false);
  const std::string mid_run_cmd = flags.get_string("mid-run-cmd", "");
  for (const auto& unused : flags.unused()) {
    std::cerr << "qtclient: unknown flag --" << unused << "\n";
    return 2;
  }
  std::string connect_host = host;
  std::uint16_t connect_port = port;
  if (!shards_addr.empty()) {
    const std::size_t colon = shards_addr.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      std::cerr << "qtclient: --shards wants host:port\n";
      return 2;
    }
    connect_host = shards_addr.substr(0, colon);
    connect_port = static_cast<std::uint16_t>(
        std::strtoul(shards_addr.c_str() + colon + 1, nullptr, 10));
  }
  if (expect_migration && shards_addr.empty()) {
    std::cerr << "qtclient: --expect-migration needs --shards\n";
    return 2;
  }

  Client client;
  client.fd = serve::tcp_connect(connect_host, connect_port, &client.error);
  if (client.fd == serve::kInvalidSocket) return fail(client, "connect");

  // Live view: poll Stats and summarize, no load generation at all.
  if (top) {
    for (std::size_t iter = 0; iter < top_count; ++iter) {
      serve::Request req;
      req.type = serve::RequestType::kStats;
      req.trace_id = trace_id;
      if (!client.send(req)) return fail(client, "send stats");
      serve::Response resp;
      if (!client.recv(&resp)) return fail(client, "recv stats");
      if (resp.status != serve::Status::kOk) {
        return fail(client, "stats failed: " + resp.error);
      }
      const TopSnapshot s = summarize_prometheus(resp.stats_prometheus);
      std::cout << "qtclient top: live=" << s.live << " hot=" << s.hot
                << " requests=" << s.requests << " overloads=" << s.overloads
                << " latency_us(n=" << s.total << ") p50<=" << s.p50
                << " p95<=" << s.p95 << " p99<=" << s.p99 << "\n"
                << std::flush;
      if (iter + 1 < top_count) {
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      }
    }
    serve::tcp_close(client.fd);
    return 0;
  }

  // Create every session in one burst.
  std::vector<serve::SessionId> ids(sessions);
  std::vector<serve::SessionSpec> specs(sessions, spec);
  for (std::size_t i = 0; i < sessions; ++i) {
    specs[i].seed = seed_base + i;
    serve::Request req;
    req.type = serve::RequestType::kCreateSession;
    req.spec = specs[i];
    req.trace_id = trace_id;
    if (!client.send(req)) return fail(client, "send create");
  }
  for (std::size_t i = 0; i < sessions; ++i) {
    serve::Response resp;
    if (!client.recv(&resp)) return fail(client, "recv create");
    if (resp.status != serve::Status::kOk) {
      return fail(client, "create rejected: " + resp.error);
    }
    ids[i] = resp.session;
  }

  // Closed training loop: burst Steps, collect, retry overloads.
  std::uint64_t overloads = 0;
  std::string problem;
  for (std::size_t round = 0; round < rounds; ++round) {
    if (!mid_run_cmd.empty() && round == rounds / 2) {
      // The CI failover hook: typically `kill <worker pid>` so the rest
      // of the run lands on re-adopted sessions.
      const int rc = std::system(mid_run_cmd.c_str());
      if (rc != 0) {
        std::cerr << "qtclient: --mid-run-cmd exited " << rc << "\n";
        return 1;
      }
    }
    const bool ok = closed_loop(
        client, sessions, burst, &overloads, &problem,
        [&](std::size_t i) {
          serve::Request req;
          req.type = serve::RequestType::kStep;
          req.session = ids[i];
          req.steps = steps;
          req.trace_id = trace_id;
          return req;
        },
        [&](std::size_t, const serve::Response& resp, std::string* why) {
          // Each Step advances by `steps`; drain overshoot makes the
          // total a lower bound, not an equality.
          const std::uint64_t want = steps * (round + 1);
          if (resp.samples < want) {
            std::ostringstream os;
            os << "session " << resp.session << " retired " << resp.samples
               << " samples, expected at least " << want;
            *why = os.str();
            return false;
          }
          return true;
        });
    if (!ok) return fail(client, problem);
  }

  // One Query per session: decodes the Q row and greedy action.
  if (!closed_loop(
          client, sessions, burst, &overloads, &problem,
          [&](std::size_t i) {
            serve::Request req;
            req.type = serve::RequestType::kQuery;
            req.session = ids[i];
            req.state = 0;
            req.trace_id = trace_id;
            return req;
          },
          [&](std::size_t, const serve::Response& resp, std::string* why) {
            if (resp.q_row.size() != spec.actions ||
                resp.action >= spec.actions) {
              *why = "query reply has a malformed Q row";
              return false;
            }
            return true;
          })) {
    return fail(client, problem);
  }

  // Bit-exactness across the wire: server snapshot vs local replay with
  // the identical run partitioning.
  std::size_t verified = 0;
  if (verify) {
    const bool ok = closed_loop(
        client, sessions, burst, &overloads, &problem,
        [&](std::size_t i) {
          serve::Request req;
          req.type = serve::RequestType::kSnapshot;
          req.session = ids[i];
          req.trace_id = trace_id;
          return req;
        },
        [&](std::size_t i, const serve::Response& resp, std::string* why) {
          env::GridWorldConfig gc;
          gc.width = specs[i].width;
          gc.height = specs[i].height;
          gc.num_actions = specs[i].actions;
          env::GridWorld world(gc);
          runtime::Engine replay(world, serve::make_config(specs[i]));
          // Identical run partitioning to the server's Step handling:
          // advance BY `steps` from whatever total the last call
          // reached.
          for (std::size_t round = 0; round < rounds; ++round) {
            replay.run_samples(replay.stats().samples + steps);
          }
          std::ostringstream local;
          runtime::save_snapshot(replay, local);
          if (resp.snapshot != local.str()) {
            std::ostringstream os;
            os << "session " << ids[i]
               << ": server snapshot differs from local replay";
            *why = os.str();
            return false;
          }
          ++verified;
          return true;
        });
    if (!ok) return fail(client, problem);
  }

  // Introspection probes run after the load so the dumps reflect it.
  if (introspect_session >= 0) {
    std::string json;
    if (auto got = introspect(client, serve::IntrospectProbe::kSession,
                              static_cast<serve::SessionId>(introspect_session),
                              trace_id, &problem)) {
      json = *got;
    } else {
      return fail(client, problem);
    }
    std::cout << json << "\n";
  }
  if (!flight_path.empty()) {
    std::string json;
    if (auto got = introspect(client, serve::IntrospectProbe::kFlightRecorder,
                              0, trace_id, &problem)) {
      json = *got;
    } else {
      return fail(client, problem);
    }
    std::ofstream out(flight_path);
    out << json << "\n";
    if (!out) return fail(client, "cannot write " + flight_path);
  }

  // Against a router, dump the topology and (optionally) insist the run
  // actually exercised live migration.
  std::uint64_t migrations_seen = 0;
  if (!shards_addr.empty()) {
    std::string topology;
    if (auto got = introspect(client, serve::IntrospectProbe::kShards, 0,
                              trace_id, &problem)) {
      topology = *got;
    } else {
      return fail(client, problem);
    }
    std::cout << "qtclient shards: " << topology << "\n";
    const std::size_t key = topology.find("\"migrations\":");
    if (key != std::string::npos) {
      migrations_seen = std::strtoull(
          topology.c_str() + key + sizeof("\"migrations\":") - 1, nullptr,
          10);
    }
  }

  if (want_stats || !stats_json_path.empty()) {
    serve::Request req;
    req.type = serve::RequestType::kStats;
    req.trace_id = trace_id;
    if (!client.send(req)) return fail(client, "send stats");
    serve::Response resp;
    if (!client.recv(&resp)) return fail(client, "recv stats");
    if (resp.status != serve::Status::kOk) {
      return fail(client, "stats failed: " + resp.error);
    }
    if (want_stats) std::cout << resp.stats_prometheus;
    if (!stats_json_path.empty()) {
      std::ofstream out(stats_json_path);
      out << resp.stats_json;
      if (!out) return fail(client, "cannot write " + stats_json_path);
    }
  }

  if (want_shutdown) {
    serve::Request req;
    req.type = serve::RequestType::kShutdown;
    req.trace_id = trace_id;
    if (!client.send(req)) return fail(client, "send shutdown");
    serve::Response resp;
    if (!client.recv(&resp)) return fail(client, "recv shutdown");
    if (resp.status != serve::Status::kOk) {
      return fail(client, "shutdown failed: " + resp.error);
    }
  }
  serve::tcp_close(client.fd);

  std::cout << "qtclient: " << sessions << " sessions x " << rounds
            << " rounds x " << steps << " steps (" << algorithm << ", "
            << qtaccel::backend_name(spec.backend) << "): ok, "
            << overloads << " overload replies";
  if (verify) std::cout << ", " << verified << " snapshots verified";
  std::cout << "\n";
  if (expect_overload && overloads == 0) {
    std::cerr << "qtclient: expected overload replies but saw none\n";
    return 1;
  }
  if (expect_migration && migrations_seen == 0) {
    std::cerr << "qtclient: expected live migrations but the router "
                 "reports none\n";
    return 1;
  }
  return 0;
}

// qtrouterd — the shard router daemon (docs/sharding.md).
//
// Presents one QTSERVE-WIRE endpoint backed by a fleet of qtserved
// workers. The same single-threaded poll() discipline as qtserved: one
// loop owns the client listener, the outbound worker connections, and
// the HTTP plane; shard::Router is the transport-agnostic core and this
// file only moves bytes. A worker connection erroring or reaching EOF
// is a shard failure — the router fails its sessions over to the
// survivors from parked checkpoints and the replay log.
//
// Usage: qtrouterd --shards=host:port[:httpport],...
//                  [--port=7478] [--port-file=path]
//                  [--http-port=N] [--http-port-file=path]
//                  [--vnodes=64] [--checkpoint-every=64]
//                  [--migrate-every=0] [--flight-capacity=256]
//                  [--rebalance-interval-ms=0] [--rebalance-tolerance=0.25]
//                  [--verbose]
//
// --shards lists the workers, one id per entry in listing order. The
// optional third component is the worker's HTTP port; when every entry
// has one and --rebalance-interval-ms > 0, the manager loop scrapes
// each worker's qtserve_sessions_live / qtserve_sessions_hot gauges on
// that cadence, feeds hot totals into the router's own gauge, and
// executes plan_rebalance moves via live migration. The HTTP plane
// serves shard/http_plane.h routes plus /rebalance (an immediate
// scrape-and-plan pass, daemon-side because it needs sockets).
//
// A client Shutdown request shuts down the whole fleet: the router
// relays Shutdown to every worker and the daemon exits once every
// output buffer drains.
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <list>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/json_writer.h"
#include "serve/protocol.h"
#include "serve/tcp.h"
#include "shard/http_plane.h"
#include "shard/router.h"
#include "shard/shard_manager.h"

using namespace qta;

namespace {

struct ShardEndpoint {
  std::string host;
  std::uint16_t port = 0;
  std::uint16_t http_port = 0;  // 0 = not scrapable
};

/// "host:port[:httpport],..." -> endpoints; nullopt on a malformed
/// entry.
std::optional<std::vector<ShardEndpoint>> parse_shards(
    const std::string& spec) {
  std::vector<ShardEndpoint> out;
  std::istringstream is(spec);
  std::string entry;
  while (std::getline(is, entry, ',')) {
    if (entry.empty()) continue;
    ShardEndpoint ep;
    const std::size_t first = entry.find(':');
    if (first == std::string::npos || first == 0) return std::nullopt;
    ep.host = entry.substr(0, first);
    const std::size_t second = entry.find(':', first + 1);
    try {
      ep.port = static_cast<std::uint16_t>(
          std::stoul(entry.substr(first + 1, second - first - 1)));
      if (second != std::string::npos) {
        ep.http_port = static_cast<std::uint16_t>(
            std::stoul(entry.substr(second + 1)));
      }
    } catch (...) {
      return std::nullopt;
    }
    out.push_back(std::move(ep));
  }
  if (out.empty()) return std::nullopt;
  return out;
}

struct Peer {
  int fd = serve::kInvalidSocket;
  std::string inbuf;
  std::string outbuf;
  bool dead = false;
};

bool read_some(Peer& peer) {
  char chunk[65536];
  while (true) {
    const ssize_t r = ::recv(peer.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (r > 0) {
      peer.inbuf.append(chunk, static_cast<std::size_t>(r));
      continue;
    }
    if (r == 0) return false;  // orderly EOF
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
}

bool write_some(Peer& peer) {
  while (!peer.outbuf.empty()) {
    const ssize_t r = ::send(peer.fd, peer.outbuf.data(), peer.outbuf.size(),
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (r < 0) {
      return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
    }
    peer.outbuf.erase(0, static_cast<std::size_t>(r));
  }
  return true;
}

struct HttpConnection {
  int fd = serve::kInvalidSocket;
  std::string inbuf;
  std::string outbuf;
  bool responded = false;
  bool dead = false;
};

/// Byte mover between the Router core and the socket buffers. Client
/// ids are daemon-assigned and map to live connections; shard ids index
/// the worker table.
class SocketHost : public shard::RouterHost {
 public:
  void send_to_client(shard::ClientId client, std::string payload) override {
    auto it = clients->find(client);
    if (it == clients->end()) return;  // hung up; drop
    it->second->outbuf += serve::frame(payload);
  }
  void send_to_shard(shard::ShardId shard, std::string payload) override {
    Peer& peer = *(*workers)[shard];
    if (peer.dead) return;
    peer.outbuf += serve::frame(payload);
  }
  std::map<shard::ClientId, Peer*>* clients = nullptr;
  std::vector<Peer*>* workers = nullptr;
};

/// One scrape-and-plan pass. Returns the executed plan as JSON.
std::string rebalance_pass(shard::Router& router,
                           const std::vector<ShardEndpoint>& endpoints,
                           double tolerance, bool verbose) {
  std::vector<shard::ShardLoad> loads;
  double hot_total = 0;
  bool scraped_any = false;
  for (shard::ShardId id = 0;
       id < static_cast<shard::ShardId>(endpoints.size()); ++id) {
    const ShardEndpoint& ep = endpoints[id];
    if (ep.http_port == 0 || router.sessions_on(id) == 0) {
      // Not scrapable or empty: it can still receive sessions, so it
      // participates with the router's own count.
      loads.push_back(shard::ShardLoad{
          id, static_cast<double>(router.sessions_on(id))});
      continue;
    }
    const std::optional<std::string> body =
        shard::http_get(ep.host, ep.http_port, "/metrics");
    if (!body.has_value()) continue;  // scrape failure: skip this shard
    scraped_any = true;
    loads.push_back(shard::ShardLoad{
        id,
        shard::scrape_gauge(*body, "qtserve_sessions_live").value_or(0)});
    hot_total +=
        shard::scrape_gauge(*body, "qtserve_sessions_hot").value_or(0);
  }
  if (scraped_any) router.set_hot_sessions(hot_total);
  const std::vector<shard::RebalanceMove> moves =
      shard::plan_rebalance(loads, tolerance);

  qta::JsonWriter json;
  json.begin_object();
  json.key("moves").begin_array();
  for (const shard::RebalanceMove& move : moves) {
    unsigned started = 0;
    for (const serve::SessionId id : router.sessions_of(move.from)) {
      if (started >= move.count) break;
      if (router.migrate(id, move.to)) ++started;
    }
    if (verbose) {
      std::cerr << "qtrouterd: rebalance " << started << " sessions "
                << move.from << " -> " << move.to << "\n";
    }
    json.begin_object();
    json.field("from", static_cast<std::uint64_t>(move.from));
    json.field("to", static_cast<std::uint64_t>(move.to));
    json.field("planned", static_cast<std::uint64_t>(move.count));
    json.field("started", static_cast<std::uint64_t>(started));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str() + "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const std::string shards_flag = flags.get_string("shards", "");
  shard::RouterOptions options;
  options.vnodes = static_cast<unsigned>(flags.get_int("vnodes", 64));
  options.checkpoint_every =
      static_cast<unsigned>(flags.get_int("checkpoint-every", 64));
  options.migrate_every =
      static_cast<unsigned>(flags.get_int("migrate-every", 0));
  options.flight_recorder_capacity =
      static_cast<std::size_t>(flags.get_int("flight-capacity", 256));
  const auto port = static_cast<std::uint16_t>(flags.get_int("port", 7478));
  const std::string port_file = flags.get_string("port-file", "");
  const std::int64_t http_port_flag = flags.get_int("http-port", -1);
  const std::string http_port_file = flags.get_string("http-port-file", "");
  const std::int64_t rebalance_ms = flags.get_int("rebalance-interval-ms", 0);
  const double rebalance_tolerance =
      flags.get_double("rebalance-tolerance", 0.25);
  const bool verbose = flags.get_bool("verbose", false);
  for (const auto& unused : flags.unused()) {
    std::cerr << "qtrouterd: unknown flag --" << unused << "\n";
    return 2;
  }
  const std::optional<std::vector<ShardEndpoint>> endpoints =
      parse_shards(shards_flag);
  if (!endpoints.has_value()) {
    std::cerr << "qtrouterd: --shards=host:port[:httpport],... is required\n";
    return 2;
  }

  // Connect to every worker up front: a fleet that cannot assemble is a
  // deployment error, not a failover.
  std::vector<std::unique_ptr<Peer>> workers;
  for (const ShardEndpoint& ep : *endpoints) {
    std::string error;
    auto peer = std::make_unique<Peer>();
    peer->fd = serve::tcp_connect(ep.host, ep.port, &error);
    if (peer->fd == serve::kInvalidSocket) {
      std::cerr << "qtrouterd: shard " << ep.host << ":" << ep.port << ": "
                << error << "\n";
      return 1;
    }
    ::fcntl(peer->fd, F_SETFL, O_NONBLOCK);
    workers.push_back(std::move(peer));
  }

  std::string error;
  std::uint16_t bound_port = 0;
  int listen_fd = serve::tcp_listen(port, &bound_port, &error);
  if (listen_fd == serve::kInvalidSocket) {
    std::cerr << "qtrouterd: " << error << "\n";
    return 1;
  }
  ::fcntl(listen_fd, F_SETFL, O_NONBLOCK);
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << bound_port << "\n";
    if (!pf) {
      std::cerr << "qtrouterd: cannot write " << port_file << "\n";
      return 1;
    }
  }
  int http_fd = serve::kInvalidSocket;
  std::uint16_t http_port = 0;
  if (http_port_flag >= 0) {
    http_fd = serve::tcp_listen(static_cast<std::uint16_t>(http_port_flag),
                                &http_port, &error);
    if (http_fd == serve::kInvalidSocket) {
      std::cerr << "qtrouterd: http listener: " << error << "\n";
      return 1;
    }
    ::fcntl(http_fd, F_SETFL, O_NONBLOCK);
    if (!http_port_file.empty()) {
      std::ofstream pf(http_port_file);
      pf << http_port << "\n";
      if (!pf) {
        std::cerr << "qtrouterd: cannot write " << http_port_file << "\n";
        return 1;
      }
    }
  }

  std::map<shard::ClientId, std::unique_ptr<Peer>> client_conns;
  std::map<shard::ClientId, Peer*> client_ptrs;
  std::vector<Peer*> worker_ptrs;
  for (auto& w : workers) worker_ptrs.push_back(w.get());

  SocketHost host;
  host.clients = &client_ptrs;
  host.workers = &worker_ptrs;
  shard::Router router(options, &host);
  for (shard::ShardId id = 0;
       id < static_cast<shard::ShardId>(workers.size()); ++id) {
    router.add_shard(id);
  }

  std::cout << "qtrouterd listening on 127.0.0.1:" << bound_port << " ("
            << workers.size() << " shards, checkpoint-every="
            << options.checkpoint_every
            << " migrate-every=" << options.migrate_every << ")"
            << std::endl;
  if (http_fd != serve::kInvalidSocket) {
    std::cout << "qtrouterd http on 127.0.0.1:" << http_port
              << " (/metrics /healthz /shards /migrate /drain /checkpoint "
                 "/rebalance /flightrecorder)"
              << std::endl;
  }

  const bool scrapable = [&] {
    for (const ShardEndpoint& ep : *endpoints) {
      if (ep.http_port == 0) return false;
    }
    return true;
  }();
  auto next_rebalance = std::chrono::steady_clock::now();
  if (rebalance_ms > 0) {
    next_rebalance += std::chrono::milliseconds(rebalance_ms);
  }

  std::list<HttpConnection> http_conns;
  shard::ClientId next_client = 1;

  while (true) {
    std::vector<pollfd> fds;
    // Layout: [listener] [clients...] [workers...] [http listener]
    // [http conns...]. std::map/list keep pointers stable across the
    // iteration's inserts.
    if (listen_fd != serve::kInvalidSocket) {
      fds.push_back(pollfd{listen_fd, POLLIN, 0});
    }
    std::vector<std::pair<shard::ClientId, Peer*>> polled_clients;
    for (auto& [id, conn] : client_conns) {
      const short events = static_cast<short>(
          conn->outbuf.empty() ? POLLIN : (POLLIN | POLLOUT));
      fds.push_back(pollfd{conn->fd, events, 0});
      polled_clients.emplace_back(id, conn.get());
    }
    std::vector<std::pair<shard::ShardId, Peer*>> polled_workers;
    for (shard::ShardId id = 0;
         id < static_cast<shard::ShardId>(workers.size()); ++id) {
      Peer& peer = *workers[id];
      if (peer.dead) continue;
      const short events = static_cast<short>(
          peer.outbuf.empty() ? POLLIN : (POLLIN | POLLOUT));
      fds.push_back(pollfd{peer.fd, events, 0});
      polled_workers.emplace_back(id, &peer);
    }
    std::size_t http_listen_idx = fds.size();
    if (http_fd != serve::kInvalidSocket) {
      fds.push_back(pollfd{http_fd, POLLIN, 0});
    }
    std::vector<HttpConnection*> http_polled;
    for (HttpConnection& conn : http_conns) {
      const short events = static_cast<short>(
          conn.outbuf.empty() ? POLLIN : (POLLIN | POLLOUT));
      fds.push_back(pollfd{conn.fd, events, 0});
      http_polled.push_back(&conn);
    }

    if (router.shutdown_requested()) {
      bool flushed = true;
      for (auto& [id, conn] : client_conns) {
        if (!conn->outbuf.empty()) flushed = false;
      }
      for (auto& w : workers) {
        if (!w->dead && !w->outbuf.empty()) flushed = false;
      }
      if (flushed) break;
    }

    int timeout_ms = router.shutdown_requested() ? 0 : -1;
    if (rebalance_ms > 0 && scrapable && timeout_ms != 0) {
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
          next_rebalance - std::chrono::steady_clock::now());
      timeout_ms = static_cast<int>(std::max<std::int64_t>(
          0, std::min<std::int64_t>(until.count(), 60'000)));
    }
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0 && errno != EINTR) {
      std::cerr << "qtrouterd: poll failed\n";
      return 1;
    }

    std::size_t idx = 0;
    if (listen_fd != serve::kInvalidSocket) {
      if ((fds[idx].revents & POLLIN) != 0) {
        while (true) {
          const int fd = ::accept(listen_fd, nullptr, nullptr);
          if (fd < 0) break;
          auto conn = std::make_unique<Peer>();
          conn->fd = fd;
          const shard::ClientId id = next_client++;
          client_ptrs[id] = conn.get();
          client_conns[id] = std::move(conn);
          if (verbose) {
            std::cerr << "qtrouterd: client " << id << " connected\n";
          }
        }
      }
      ++idx;
    }

    // Clients: ingest full frames, hand each payload to the router.
    for (auto& [id, conn] : polled_clients) {
      const short revents = fds[idx++].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!read_some(*conn)) conn->dead = true;
      while (true) {
        bool oversized = false;
        std::optional<std::string> payload =
            serve::unframe(conn->inbuf, &oversized);
        if (oversized) {
          std::cerr << "qtrouterd: dropping client (oversized frame)\n";
          conn->dead = true;
          break;
        }
        if (!payload.has_value()) break;
        router.on_client_payload(id, std::move(*payload));
      }
    }

    // Workers: responses feed the router; EOF/error is a shard failure.
    for (auto& [id, peer] : polled_workers) {
      const short revents = fds[idx++].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      bool alive = read_some(*peer);
      while (true) {
        bool oversized = false;
        std::optional<std::string> payload =
            serve::unframe(peer->inbuf, &oversized);
        if (oversized) {
          alive = false;
          break;
        }
        if (!payload.has_value()) break;
        router.on_shard_payload(id, std::move(*payload));
      }
      if (!alive && !peer->dead) {
        // During fleet shutdown the workers close their side once
        // drained — that is completion, not failure.
        peer->dead = true;
        serve::tcp_close(peer->fd);
        peer->fd = serve::kInvalidSocket;
        if (!router.shutdown_requested()) {
          std::cerr << "qtrouterd: shard " << id << " failed, "
                    << router.sessions_on(id) << " sessions to recover\n";
          router.on_shard_failed(id);
        }
      }
    }

    // HTTP plane.
    if (http_fd != serve::kInvalidSocket) {
      if ((fds[http_listen_idx].revents & POLLIN) != 0) {
        while (true) {
          const int fd = ::accept(http_fd, nullptr, nullptr);
          if (fd < 0) break;
          HttpConnection conn;
          conn.fd = fd;
          http_conns.push_back(std::move(conn));
        }
      }
    }
    {
      std::size_t http_idx =
          http_listen_idx + (http_fd != serve::kInvalidSocket ? 1 : 0);
      for (HttpConnection* conn_ptr : http_polled) {
        HttpConnection& conn = *conn_ptr;
        const short revents = fds[http_idx++].revents;
        if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
            !conn.responded) {
          char chunk[4096];
          while (true) {
            const ssize_t r =
                ::recv(conn.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
            if (r > 0) {
              conn.inbuf.append(chunk, static_cast<std::size_t>(r));
              if (conn.inbuf.size() > (64u << 10)) {
                conn.dead = true;
                break;
              }
              continue;
            }
            if (r == 0) conn.dead = true;
            break;
          }
          if (conn.inbuf.find("\r\n\r\n") != std::string::npos ||
              conn.inbuf.find("\n\n") != std::string::npos) {
            // /rebalance is daemon-side (it scrapes workers over HTTP);
            // everything else is the pure plane.
            if (conn.inbuf.compare(0, 15, "GET /rebalance ") == 0 ||
                conn.inbuf.compare(0, 14, "GET /rebalance?") == 0) {
              const std::string body = rebalance_pass(
                  router, *endpoints, rebalance_tolerance, verbose);
              conn.outbuf = "HTTP/1.0 200 OK\r\nContent-Type: "
                            "application/json\r\nContent-Length: " +
                            std::to_string(body.size()) +
                            "\r\nConnection: close\r\n\r\n" + body;
            } else {
              conn.outbuf = shard::handle_router_http(router, conn.inbuf);
            }
            conn.responded = true;
          }
        }
      }
    }
    for (HttpConnection& conn : http_conns) {
      if (conn.dead) continue;
      Peer shim;  // reuse the nonblocking writer
      shim.fd = conn.fd;
      shim.outbuf = std::move(conn.outbuf);
      if (!write_some(shim)) conn.dead = true;
      conn.outbuf = std::move(shim.outbuf);
    }
    http_conns.remove_if([](HttpConnection& conn) {
      const bool finished =
          conn.dead || (conn.responded && conn.outbuf.empty());
      if (finished) serve::tcp_close(conn.fd);
      return finished;
    });

    // Periodic manager pass.
    if (rebalance_ms > 0 && scrapable &&
        std::chrono::steady_clock::now() >= next_rebalance) {
      (void)rebalance_pass(router, *endpoints, rebalance_tolerance, verbose);
      next_rebalance = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(rebalance_ms);
    }

    // Flush and reap.
    for (auto& [id, peer] : polled_workers) {
      if (!peer->dead && !write_some(*peer)) {
        peer->dead = true;
        serve::tcp_close(peer->fd);
        peer->fd = serve::kInvalidSocket;
        if (!router.shutdown_requested()) router.on_shard_failed(id);
      }
    }
    for (auto it = client_conns.begin(); it != client_conns.end();) {
      Peer& conn = *it->second;
      if (!conn.dead && !write_some(conn)) conn.dead = true;
      if (conn.dead) {
        serve::tcp_close(conn.fd);
        router.on_client_closed(it->first);
        client_ptrs.erase(it->first);
        it = client_conns.erase(it);
      } else {
        ++it;
      }
    }
  }

  serve::tcp_close(listen_fd);
  if (http_fd != serve::kInvalidSocket) serve::tcp_close(http_fd);
  for (auto& [id, conn] : client_conns) serve::tcp_close(conn->fd);
  for (auto& w : workers) {
    if (!w->dead) serve::tcp_close(w->fd);
  }
  for (HttpConnection& conn : http_conns) serve::tcp_close(conn.fd);
  std::cout << "qtrouterd: drained, exiting (" << router.migrations()
            << " migrations, " << router.failovers() << " failovers, "
            << router.checkpoints() << " checkpoints)" << std::endl;
  return 0;
}

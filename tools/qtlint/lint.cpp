#include "qtlint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "common/json_writer.h"
#include "common/table_printer.h"

namespace qta::lint {
namespace {

struct RuleInfo {
  RuleId id;
  std::string_view name;
  std::string_view scope;
  std::string_view rationale;
};

constexpr std::array<RuleInfo, 10> kRules{{
    {RuleId::kDatapathPurity, "datapath-purity",
     "src/hw, src/fixed, qtaccel pipeline files",
     "paper's fixed-point 4-DSP datapath: no float/double/libm"},
    {RuleId::kDeterminism, "determinism", "src/** except src/rng",
     "cycle-accuracy needs reproducible runs: no ambient entropy"},
    {RuleId::kPragmaOnce, "pragma-once", "all headers",
     "ODR hygiene: every header carries #pragma once"},
    {RuleId::kNoUsingNamespace, "no-using-namespace", "all headers",
     "headers must not inject namespaces into includers"},
    {RuleId::kNoIostream, "no-iostream", "src/hw, src/fixed",
     "hot-path cycle loop stays free of stream formatting"},
    {RuleId::kNoBareAssert, "no-bare-assert", "src/**",
     "QTA_CHECK aborts in release too; assert() vanishes under NDEBUG"},
    {RuleId::kTelemetryBoundary, "telemetry-boundary",
     "src/hw, src/fixed, qtaccel pipeline files",
     "datapath observes only via telemetry/sink.h; no registry/trace"},
    {RuleId::kLayering, "layering", "src/**, tools, examples, bench",
     "one include-graph DAG: modules see only declared deps; no cycles"},
    {RuleId::kMutexAnnotation, "mutex-annotation", "src/**",
     "every mutex/cv member is annotated so clang -Wthread-safety sees it"},
    {RuleId::kUnknownAllow, "unknown-allow", "qtlint annotations",
     "allow() must name a real rule"},
}};

const RuleInfo& info(RuleId id) {
  for (const auto& r : kRules) {
    if (r.id == id) return r;
  }
  return kRules[0];
}

bool rule_from_name(std::string_view name, RuleId* out) {
  for (const auto& r : kRules) {
    if (r.name == name) {
      *out = r.id;
      return true;
    }
  }
  return false;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}
bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view basename_of(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

// Type names and libm calls banned from the synthesizable datapath model.
// float/double are banned as bare identifiers; the call set is matched
// only when followed by '(' so member names like eval_double stay legal.
constexpr std::array<std::string_view, 2> kFloatTypes{"float", "double"};
constexpr std::array<std::string_view, 34> kLibmCalls{
    "pow",   "powf",  "exp",    "expf",   "exp2",      "log",    "logf",
    "log10", "log2",  "log2f",  "sqrt",   "sqrtf",     "cbrt",   "sin",
    "cos",   "tan",   "asin",   "acos",   "atan",      "atan2",  "sinh",
    "cosh",  "tanh",  "erf",    "erfc",   "tgamma",    "lgamma", "hypot",
    "fma",   "floor", "ceil",   "round",  "lround",    "llround"};

// Entropy / wall-clock identifiers banned outside src/rng. The first set
// is banned wherever the identifier appears; the second only as a call.
constexpr std::array<std::string_view, 10> kEntropyTypes{
    "random_device", "mt19937",   "mt19937_64",     "minstd_rand",
    "minstd_rand0",  "ranlux24",  "ranlux48",       "knuth_b",
    "default_random_engine",      "system_clock"};
constexpr std::array<std::string_view, 7> kEntropyCalls{
    "rand", "srand", "rand_r", "drand48", "random", "time", "clock"};

constexpr std::array<std::string_view, 4> kStreamIdents{"cout", "cerr",
                                                        "clog", "printf"};

// Host-side telemetry machinery the datapath must never name directly —
// cycle/step events leave the datapath only through the TelemetrySink
// interface in telemetry/sink.h (the one header datapath may include).
constexpr std::string_view kTelemetrySinkHeader = "telemetry/sink.h";
constexpr std::array<std::string_view, 6> kTelemetryHostIdents{
    "MetricsRegistry", "TraceSession", "PipelineTelemetry",
    "PoolTraceObserver", "FlightRecorder", "ServeEvent"};

// qtaccel files that model pipeline hardware (as opposed to host-side
// config/readback helpers such as config.cpp, table_io.cpp, resources.cpp).
constexpr std::array<std::string_view, 7> kPipelineFileStems{
    "pipeline",  "boltzmann_pipeline", "forwarding", "qmax_unit",
    "action_units", "fast_engine", "lane_engine"};

// --- the layering DAG (docs/static_analysis.md renders this table) ---
//
// One row per src/ module: the module name and the space-separated set
// of modules its files may #include (itself is always allowed). The
// table IS the architecture: runtime/ is visible only to runtime,
// driver, serve and shard; serve/ only to itself and shard; shard/ to
// nothing below it (tools, examples and bench sit above the seam and
// may include anything except the restricted backend headers below).
// Extending the architecture = editing this table, not writing a new
// scanner.
struct LayerSpec {
  std::string_view module;
  std::string_view deps;
};

constexpr std::array<LayerSpec, 15> kLayerSpecs{{
    {"common", ""},
    {"fixed", "common"},
    {"rng", "common fixed"},
    {"hw", "common fixed"},
    {"telemetry", "common"},
    {"env", "common fixed rng"},
    {"policy", "common fixed rng"},
    {"device", "common fixed hw"},
    {"algo", "common fixed rng env policy"},
    {"baseline", "common fixed rng hw env policy device"},
    {"qtaccel", "common fixed rng hw env policy device telemetry"},
    {"runtime",
     "common fixed rng hw env policy device telemetry qtaccel"},
    {"driver",
     "common fixed rng hw env policy device telemetry qtaccel runtime "
     "algo baseline"},
    {"serve",
     "common fixed rng hw env policy device telemetry qtaccel runtime"},
    {"shard",
     "common fixed rng hw env policy device telemetry qtaccel runtime "
     "serve"},
}};

// Concrete backend headers: constructible only from src/runtime (the
// registry's adapters) and src/qtaccel (the backends' own module).
// Everything else — including tools/examples/bench above the seam —
// programs against the Engine facade or the backend registry.
constexpr std::array<std::string_view, 3> kRestrictedBackendHeaders{
    "qtaccel/pipeline.h", "qtaccel/fast_engine.h",
    "qtaccel/lane_engine.h"};

bool is_src_module(std::string_view module) {
  for (const auto& row : kLayerSpecs) {
    if (row.module == module) return true;
  }
  return false;
}

// Whether src module `from` may include headers of src module `to`,
// per the kLayerSpecs row (self-includes always allowed).
bool layer_allows(std::string_view from, std::string_view to) {
  if (from == to) return true;
  for (const auto& row : kLayerSpecs) {
    if (row.module != from) continue;
    std::size_t pos = 0;
    const std::string_view deps = row.deps;
    while (pos < deps.size()) {
      while (pos < deps.size() && deps[pos] == ' ') ++pos;
      std::size_t start = pos;
      while (pos < deps.size() && deps[pos] != ' ') ++pos;
      if (pos > start && deps.substr(start, pos - start) == to) return true;
    }
    return false;
  }
  return false;  // unknown module: nothing declared, nothing allowed
}

// The src module an include target addresses ("runtime/engine.h" ->
// "runtime"), or "" when the target is not a src-module header (std
// headers, tools-local includes, ...).
std::string_view target_module(std::string_view target) {
  const auto slash = target.find('/');
  if (slash == std::string_view::npos) return "";
  const std::string_view head = target.substr(0, slash);
  return is_src_module(head) ? head : std::string_view{};
}

// Mutex-ish std:: member types that must carry a QTA_* annotation when
// declared under src/ (the mutex-annotation rule).
constexpr std::array<std::string_view, 8> kMutexTypes{
    "mutex",       "shared_mutex",           "recursive_mutex",
    "timed_mutex", "recursive_timed_mutex",  "shared_timed_mutex",
    "condition_variable", "condition_variable_any"};

struct LexedFile {
  // Source with comments and string/char-literal contents blanked out;
  // newlines preserved so token positions keep their line numbers.
  std::string code;
  // Comment text concatenated per line (1-based), for qtlint: directives.
  std::map<unsigned, std::string> comments;
  // Raw text of preprocessor-directive lines (1-based).
  std::map<unsigned, std::string> pp_lines;
};

LexedFile lex(std::string_view src) {
  LexedFile out;
  out.code.reserve(src.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  unsigned line = 1;
  bool line_has_code = false;  // non-ws code chars seen on this line

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      out.code.push_back('\n');
      ++line;
      line_has_code = false;
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated strings/chars cannot span lines in valid C++;
      // recover rather than swallowing the rest of the file.
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.code.append("  ");
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.code.append("  ");
          ++i;
        } else if (c == '"') {
          // Raw string literal: R"delim( ... )delim"
          const bool raw = !out.code.empty() && out.code.back() == 'R' &&
                           (out.code.size() < 2 ||
                            !is_ident_char(out.code[out.code.size() - 2]));
          if (raw) {
            std::string delim;
            std::size_t j = i + 1;
            while (j < src.size() && src[j] != '(') delim.push_back(src[j++]);
            const std::string closer = ")" + delim + "\"";
            const auto end = src.find(closer, j);
            const std::size_t stop =
                end == std::string_view::npos ? src.size()
                                              : end + closer.size();
            for (std::size_t k = i; k < stop; ++k) {
              out.code.push_back(src[k] == '\n' ? '\n' : ' ');
              if (src[k] == '\n') ++line;
            }
            i = stop - 1;
          } else {
            out.code.push_back(' ');
            state = State::kString;
          }
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not char literals.
          const bool digit_sep =
              !out.code.empty() &&
              std::isdigit(static_cast<unsigned char>(out.code.back()));
          out.code.push_back(digit_sep ? c : ' ');
          if (!digit_sep) state = State::kChar;
        } else {
          if (c == '#' && !line_has_code) {
            // Record the raw directive line (up to newline) once.
            const auto eol = src.find('\n', i);
            out.pp_lines[line] = std::string(
                src.substr(i, eol == std::string_view::npos ? src.size() - i
                                                            : eol - i));
          }
          if (!std::isspace(static_cast<unsigned char>(c))) {
            line_has_code = true;
          }
          out.code.push_back(c);
        }
        break;
      case State::kLineComment:
        out.comments[line].push_back(c);
        out.code.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out.code.append("  ");
          ++i;
        } else {
          out.comments[line].push_back(c);
          out.code.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\') {
          out.code.append("  ");
          ++i;
        } else {
          if (c == '"') state = State::kCode;
          out.code.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out.code.append("  ");
          ++i;
        } else {
          if (c == '\'') state = State::kCode;
          out.code.push_back(' ');
        }
        break;
    }
  }
  return out;
}

// Parsed qtlint: directives for one file.
struct Allows {
  std::set<RuleId> file;
  std::map<unsigned, std::set<RuleId>> line;
  struct Block {
    RuleId rule;
    unsigned begin;
    unsigned end;  // inclusive; UINT_MAX for unterminated push
  };
  std::vector<Block> blocks;
  std::vector<Violation> errors;  // unknown-allow diagnostics

  bool allowed(RuleId rule, unsigned at_line) const {
    if (file.count(rule)) return true;
    if (auto it = line.find(at_line);
        it != line.end() && it->second.count(rule)) {
      return true;
    }
    return std::any_of(blocks.begin(), blocks.end(), [&](const Block& b) {
      return b.rule == rule && b.begin <= at_line && at_line <= b.end;
    });
  }
};

void skip_ws(std::string_view s, std::size_t* pos) {
  while (*pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
}

// Parses "name(rule, rule)" directives out of one comment line.
void parse_directives(std::string_view text, unsigned line,
                      const std::string& file, Allows* allows,
                      std::map<RuleId, unsigned>* open_pushes) {
  // Only comments that BEGIN with "qtlint:" are directives; prose that
  // merely mentions the syntax (docs, nested comment examples) is not.
  std::size_t pos = 0;
  skip_ws(text, &pos);
  if (!starts_with(text.substr(pos), "qtlint:")) return;
  pos += 7;
  while (pos < text.size()) {
    skip_ws(text, &pos);
    std::size_t start = pos;
    while (pos < text.size() &&
           (is_ident_char(text[pos]) || text[pos] == '-')) {
      ++pos;
    }
    const std::string_view verb = text.substr(start, pos - start);
    if (verb.empty()) break;
    skip_ws(text, &pos);
    if (pos >= text.size() || text[pos] != '(') break;
    ++pos;
    const auto close = text.find(')', pos);
    if (close == std::string_view::npos) break;
    std::string_view arg_list = text.substr(pos, close - pos);
    pos = close + 1;

    std::vector<std::string_view> names;
    std::size_t a = 0;
    while (a < arg_list.size()) {
      while (a < arg_list.size() &&
             (std::isspace(static_cast<unsigned char>(arg_list[a])) ||
              arg_list[a] == ',')) {
        ++a;
      }
      std::size_t s = a;
      while (a < arg_list.size() && arg_list[a] != ',' &&
             !std::isspace(static_cast<unsigned char>(arg_list[a]))) {
        ++a;
      }
      if (a > s) names.push_back(arg_list.substr(s, a - s));
    }

    for (const auto& name : names) {
      RuleId rule;
      if (!rule_from_name(name, &rule)) {
        allows->errors.push_back(
            {file, line, RuleId::kUnknownAllow,
             "qtlint: " + std::string(verb) + "() names unknown rule '" +
                 std::string(name) + "'"});
        continue;
      }
      if (verb == "allow") {
        allows->line[line].insert(rule);
      } else if (verb == "allow-file") {
        allows->file.insert(rule);
      } else if (verb == "push-allow") {
        (*open_pushes)[rule] = line;
      } else if (verb == "pop-allow") {
        auto it = open_pushes->find(rule);
        if (it != open_pushes->end()) {
          allows->blocks.push_back({rule, it->second, line});
          open_pushes->erase(it);
        }
      } else {
        allows->errors.push_back(
            {file, line, RuleId::kUnknownAllow,
             "qtlint: unknown directive '" + std::string(verb) + "'"});
      }
    }
  }
}

Allows collect_allows(const LexedFile& lexed, const std::string& file) {
  Allows allows;
  std::map<RuleId, unsigned> open_pushes;
  for (const auto& [line, text] : lexed.comments) {
    parse_directives(text, line, file, &allows, &open_pushes);
  }
  for (const auto& [rule, begin] : open_pushes) {
    allows.blocks.push_back(
        {rule, begin, std::numeric_limits<unsigned>::max()});
  }
  return allows;
}

// Extracts the <name> or "name" from a #include directive line, else "".
std::string include_target(std::string_view pp) {
  auto pos = pp.find("include");
  if (pos == std::string_view::npos) return "";
  pos += 7;
  std::size_t p = pos;
  skip_ws(pp, &p);
  if (p >= pp.size()) return "";
  const char open = pp[p];
  const char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
  if (close == '\0') return "";
  const auto end = pp.find(close, p + 1);
  if (end == std::string_view::npos) return "";
  return std::string(pp.substr(p + 1, end - p - 1));
}

bool is_pragma_once(std::string_view pp) {
  std::size_t p = 0;
  skip_ws(pp, &p);
  if (p >= pp.size() || pp[p] != '#') return false;
  ++p;
  skip_ws(pp, &p);
  if (!starts_with(pp.substr(p), "pragma")) return false;
  p += 6;
  skip_ws(pp, &p);
  return starts_with(pp.substr(p), "once");
}

template <std::size_t N>
bool in_set(std::string_view ident, const std::array<std::string_view, N>& s) {
  return std::find(s.begin(), s.end(), ident) != s.end();
}

struct Emitter {
  const std::string& file;
  const Allows& allows;
  std::vector<Violation>* out;

  void emit(RuleId rule, unsigned line, std::string message) const {
    if (allows.allowed(rule, line)) return;
    out->push_back({file, line, rule, std::move(message)});
  }
};

void check_includes(const LexedFile& lexed, const FileClass& fc,
                    const Emitter& e) {
  for (const auto& [line, pp] : lexed.pp_lines) {
    const std::string target = include_target(pp);
    if (target.empty()) continue;
    if (fc.datapath && (target == "cmath" || target == "math.h")) {
      e.emit(RuleId::kDatapathPurity, line,
             "#include <" + target + "> in datapath code");
    }
    if (fc.in_src && !fc.rng &&
        (target == "random" || target == "ctime" || target == "time.h")) {
      e.emit(RuleId::kDeterminism, line,
             "#include <" + target + "> outside src/rng");
    }
    if (fc.hot_path && target == "iostream") {
      e.emit(RuleId::kNoIostream, line,
             "#include <iostream> in hot-path code");
    }
    if (fc.in_src && (target == "cassert" || target == "assert.h")) {
      e.emit(RuleId::kNoBareAssert, line,
             "#include <" + target + ">; use common/check.h");
    }
    if (fc.datapath && starts_with(target, "telemetry/") &&
        target != kTelemetrySinkHeader) {
      e.emit(RuleId::kTelemetryBoundary, line,
             "#include \"" + target +
                 "\" in datapath code; only telemetry/sink.h is allowed");
    }
    // Layering, part 1: the restricted backend headers. Applies
    // everywhere (src AND the tools/examples/bench dirs above the
    // seam): Pipeline / FastEngine are constructed only by the
    // runtime's adapters and their own module. The serving layer gets
    // a tailored message — serve stays backend-generic so snapshots
    // keep bridging backends.
    if (!fc.runtime && !fc.qtaccel &&
        in_set(std::string_view(target), kRestrictedBackendHeaders)) {
      if (fc.serve) {
        e.emit(RuleId::kLayering, line,
               "#include \"" + target +
                   "\" in the serving layer: serve is backend-generic "
                   "and builds machines only through runtime/engine.h");
      } else {
        e.emit(RuleId::kLayering, line,
               "#include \"" + target +
                   "\" outside src/runtime: use the Engine facade "
                   "(runtime/engine.h) or the backend registry instead");
      }
      continue;
    }
    // Layering, part 2: the module DAG (src files only; tools,
    // examples and bench sit above the whole stack). One data-driven
    // check replaces the old runtime-boundary/serve-boundary scanners;
    // kLayerSpecs is the single source of truth.
    if (fc.in_src && is_src_module(fc.module)) {
      const std::string_view to = target_module(target);
      if (!to.empty() && !layer_allows(fc.module, to)) {
        if (to == "runtime") {
          e.emit(RuleId::kLayering, line,
                 "#include \"" + target +
                     "\" inverts the layering: datapath and support "
                     "code must not depend on src/runtime");
        } else if (to == "serve") {
          e.emit(RuleId::kLayering, line,
                 "#include \"" + target +
                     "\" outside src/serve: the serving layer sits on "
                     "top of the runtime; lower layers must not depend "
                     "on it");
        } else {
          e.emit(RuleId::kLayering, line,
                 "#include \"" + target + "\" violates the layering "
                     "DAG: src/" + std::string(fc.module) +
                     " may not depend on " + std::string(to) +
                     "/ (see docs/static_analysis.md)");
        }
      }
    }
  }
}

void check_tokens(const LexedFile& lexed, const FileClass& fc,
                  const Emitter& e) {
  const std::string& code = lexed.code;
  unsigned line = 1;
  std::string prev_ident;
  unsigned prev_ident_line = 0;

  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '\n') {
      ++line;
      continue;
    }
    if (!is_ident_start(code[i])) continue;
    const std::size_t start = i;
    while (i < code.size() && is_ident_char(code[i])) ++i;
    const std::string_view ident(code.data() + start, i - start);
    // Next non-whitespace character decides call context.
    std::size_t k = i;
    while (k < code.size() &&
           (code[k] == ' ' || code[k] == '\t' || code[k] == '\n')) {
      ++k;
    }
    const bool call = k < code.size() && code[k] == '(';

    if (fc.datapath) {
      if (in_set(ident, kFloatTypes)) {
        e.emit(RuleId::kDatapathPurity, line,
               "floating-point type '" + std::string(ident) +
                   "' in datapath code");
      } else if (call && in_set(ident, kLibmCalls)) {
        e.emit(RuleId::kDatapathPurity, line,
               "libm call '" + std::string(ident) + "()' in datapath code");
      }
    }
    if (fc.in_src && !fc.rng) {
      if (in_set(ident, kEntropyTypes)) {
        e.emit(RuleId::kDeterminism, line,
               "entropy source '" + std::string(ident) +
                   "' outside src/rng");
      } else if (call && in_set(ident, kEntropyCalls)) {
        e.emit(RuleId::kDeterminism, line,
               "nondeterministic call '" + std::string(ident) +
                   "()' outside src/rng");
      }
    }
    if (fc.hot_path && in_set(ident, kStreamIdents)) {
      e.emit(RuleId::kNoIostream, line,
             "stream/formatting identifier '" + std::string(ident) +
                 "' in hot-path code");
    }
    if (fc.in_src && call && ident == "assert") {
      e.emit(RuleId::kNoBareAssert, line,
             "bare assert(); use QTA_CHECK / QTA_DCHECK");
    }
    if (fc.datapath && in_set(ident, kTelemetryHostIdents)) {
      e.emit(RuleId::kTelemetryBoundary, line,
             "host-side telemetry type '" + std::string(ident) +
                 "' in datapath code; emit through a TelemetrySink*");
    }
    if (fc.header && ident == "namespace" && prev_ident == "using" &&
        prev_ident_line == line) {
      e.emit(RuleId::kNoUsingNamespace, line,
             "'using namespace' at header scope");
    }
    // mutex-annotation: a raw std:: mutex/condvar DECLARATION under
    // src/ (next token is the declared name — usages like
    // `std::lock_guard<std::mutex>` or `std::mutex&` parameters see a
    // non-identifier next char and stay legal) must carry a QTA_*
    // annotation before the declaration's ';' so clang's thread-safety
    // analysis tracks it. qta::Mutex / qta::CondVar (common/mutex.h)
    // are the preferred spelling and need nothing extra.
    if (fc.in_src && prev_ident == "std" && in_set(ident, kMutexTypes) &&
        k < code.size() && is_ident_start(code[k])) {
      bool annotated = false;
      for (std::size_t j = k; j < code.size() && code[j] != ';'; ++j) {
        if (code[j] == 'Q' && code.compare(j, 4, "QTA_") == 0) {
          annotated = true;
          break;
        }
      }
      if (!annotated) {
        e.emit(RuleId::kMutexAnnotation, line,
               "std::" + std::string(ident) +
                   " member without a thread-safety annotation; use "
                   "qta::Mutex / qta::CondVar (common/mutex.h) or add a "
                   "QTA_GUARDED_BY-family annotation "
                   "(common/annotations.h)");
      }
    }
    prev_ident = std::string(ident);
    prev_ident_line = line;
    --i;  // outer loop ++ lands on the char after the identifier
  }
}

}  // namespace

std::string_view rule_name(RuleId id) { return info(id).name; }
std::string_view rule_scope(RuleId id) { return info(id).scope; }
std::string_view rule_rationale(RuleId id) { return info(id).rationale; }

const std::vector<RuleId>& all_rules() {
  static const std::vector<RuleId> rules = [] {
    std::vector<RuleId> r;
    for (const auto& ri : kRules) {
      if (ri.id != RuleId::kUnknownAllow) r.push_back(ri.id);
    }
    return r;
  }();
  return rules;
}

FileClass classify_path(std::string_view rel_path) {
  std::string p(rel_path);
  std::replace(p.begin(), p.end(), '\\', '/');
  FileClass fc;
  fc.header = ends_with(p, ".h") || ends_with(p, ".hpp");
  fc.in_src = starts_with(p, "src/");
  fc.rng = starts_with(p, "src/rng/");
  fc.runtime = starts_with(p, "src/runtime/");
  fc.driver = starts_with(p, "src/driver/");
  fc.serve = starts_with(p, "src/serve/");
  fc.qtaccel = starts_with(p, "src/qtaccel/");
  fc.hot_path = starts_with(p, "src/hw/") || starts_with(p, "src/fixed/");
  fc.datapath = fc.hot_path;
  // The persistent thread pool schedules the datapath replicas
  // (IndependentPipelines::run_samples_each); floats sneaking in through
  // scheduling code would be as damaging as in the pipeline itself.
  if (starts_with(p, "src/common/thread_pool")) fc.datapath = true;
  if (starts_with(p, "src/qtaccel/")) {
    std::string_view stem = basename_of(p);
    if (const auto dot = stem.find_last_of('.');
        dot != std::string_view::npos) {
      stem = stem.substr(0, dot);
    }
    if (in_set(stem, kPipelineFileStems)) fc.datapath = true;
  }
  // Layering module: "src/runtime/engine.h" -> "runtime";
  // "tools/qtlint/lint.cpp" -> "tools".
  std::string_view rest = p;
  if (fc.in_src) rest = std::string_view(p).substr(4);
  if (const auto slash = rest.find('/'); slash != std::string_view::npos) {
    fc.module = std::string(rest.substr(0, slash));
  }
  return fc;
}

std::vector<IncludeEdge> list_includes(std::string_view content) {
  const LexedFile lexed = lex(content);
  std::vector<IncludeEdge> out;
  for (const auto& [line, pp] : lexed.pp_lines) {
    std::string target = include_target(pp);
    if (!target.empty()) out.push_back({std::move(target), line});
  }
  return out;
}

std::vector<Violation> lint_content(std::string_view rel_path,
                                    std::string_view content) {
  const std::string file(rel_path);
  const FileClass fc = classify_path(rel_path);
  const LexedFile lexed = lex(content);
  const Allows allows = collect_allows(lexed, file);

  std::vector<Violation> out = allows.errors;
  const Emitter e{file, allows, &out};

  if (fc.header) {
    const bool has_once = std::any_of(
        lexed.pp_lines.begin(), lexed.pp_lines.end(),
        [](const auto& kv) { return is_pragma_once(kv.second); });
    if (!has_once) {
      e.emit(RuleId::kPragmaOnce, 1, "header is missing #pragma once");
    }
  }
  check_includes(lexed, fc, e);
  check_tokens(lexed, fc, e);

  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  return out;
}

namespace {

// One resolved include edge for the cross-file graph.
struct GraphEdge {
  std::size_t to;
  unsigned line;
};

// Depth-first search for include cycles. A gray-on-gray edge closes a
// cycle; each distinct cycle (as a set of files) is reported once, at
// the include line that closes it.
struct CycleFinder {
  const std::vector<SourceFile>& files;
  const std::vector<std::vector<GraphEdge>>& graph;
  std::vector<int> color;  // 0 white, 1 gray (on stack), 2 black
  std::vector<std::size_t> stack;
  std::set<std::string> reported;
  std::vector<Violation>* out;

  void visit(std::size_t n) {
    color[n] = 1;
    stack.push_back(n);
    for (const GraphEdge& e : graph[n]) {
      if (color[e.to] == 1) {
        report(n, e);
      } else if (color[e.to] == 0) {
        visit(e.to);
      }
    }
    stack.pop_back();
    color[n] = 2;
  }

  void report(std::size_t from, const GraphEdge& back) {
    const auto begin = std::find(stack.begin(), stack.end(), back.to);
    std::vector<std::size_t> cycle(begin, stack.end());
    if (cycle.empty()) return;
    // Canonical form: rotate the lexicographically smallest file to the
    // front so the same cycle found from different entry points dedups.
    const auto min_it = std::min_element(
        cycle.begin(), cycle.end(), [&](std::size_t a, std::size_t b) {
          return files[a].path < files[b].path;
        });
    std::rotate(cycle.begin(), min_it, cycle.end());
    std::string key, msg = "include cycle: ";
    for (const std::size_t n : cycle) {
      key += files[n].path;
      key += '\0';
      msg += files[n].path;
      msg += " -> ";
    }
    msg += files[cycle.front()].path;
    if (!reported.insert(key).second) return;
    out->push_back({files[from].path, back.line, RuleId::kLayering, msg});
  }
};

}  // namespace

std::vector<Violation> lint_repo(const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  for (const auto& f : files) {
    auto v = lint_content(f.path, f.content);
    out.insert(out.end(), v.begin(), v.end());
  }

  // Cross-file pass: resolve include targets against the scanned set
  // and reject cycles. Resolution mirrors the build's include dirs
  // (src/, tools/) plus same-directory includes; an edge whose include
  // line carries `qtlint: allow(layering)` is invisible.
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < files.size(); ++i) index[files[i].path] = i;

  std::vector<std::vector<GraphEdge>> graph(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    const LexedFile lexed = lex(files[i].content);
    const Allows allows = collect_allows(lexed, files[i].path);
    std::string dir;
    if (const auto slash = files[i].path.find_last_of('/');
        slash != std::string::npos) {
      dir = files[i].path.substr(0, slash + 1);
    }
    for (const auto& [line, pp] : lexed.pp_lines) {
      const std::string target = include_target(pp);
      if (target.empty()) continue;
      if (allows.allowed(RuleId::kLayering, line)) continue;
      for (const std::string& cand :
           {"src/" + target, "tools/" + target, dir + target}) {
        if (const auto it = index.find(cand); it != index.end()) {
          graph[i].push_back({it->second, line});
          break;
        }
      }
    }
  }

  CycleFinder finder{files, graph,
                     std::vector<int>(files.size(), 0),
                     {}, {}, &out};
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (finder.color[i] == 0) finder.visit(i);
  }

  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  return out;
}

std::vector<Violation> lint_file(const std::string& root,
                                 const std::string& rel_path) {
  const std::string full = root.empty() ? rel_path : root + "/" + rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) {
    return {{rel_path, 0, RuleId::kUnknownAllow,
             "cannot open file for linting"}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_content(rel_path, ss.str());
}

void print_rules_table(std::ostream& os) {
  TablePrinter t({"Rule", "Scope", "Rationale"});
  for (const RuleId id : all_rules()) {
    t.add_row({std::string(rule_name(id)), std::string(rule_scope(id)),
               std::string(rule_rationale(id))});
  }
  t.print(os);
}

void print_summary_table(std::ostream& os,
                         const std::vector<Violation>& violations,
                         std::size_t files_scanned) {
  std::map<RuleId, std::size_t> counts;
  for (const auto& v : violations) ++counts[v.rule];
  TablePrinter t({"Rule", "Violations"});
  for (const RuleId id : all_rules()) {
    t.add_row({std::string(rule_name(id)),
               std::to_string(counts.count(id) ? counts.at(id) : 0)});
  }
  if (counts.count(RuleId::kUnknownAllow)) {
    t.add_row({std::string(rule_name(RuleId::kUnknownAllow)),
               std::to_string(counts.at(RuleId::kUnknownAllow))});
  }
  t.print(os);
  os << files_scanned << " file(s) scanned, " << violations.size()
     << " violation(s)\n";
}

void write_violations_json(std::ostream& os,
                           const std::vector<Violation>& violations,
                           std::size_t files_scanned) {
  qta::JsonWriter json;
  json.begin_object();
  json.key("violations").begin_array();
  for (const auto& v : violations) {
    json.begin_object()
        .field("file", v.file)
        .field("line", v.line)
        .field("rule", std::string(rule_name(v.rule)))
        .field("message", v.message)
        .end_object();
  }
  json.end_array();
  json.field("files_scanned", static_cast<std::uint64_t>(files_scanned));
  json.field("count", static_cast<std::uint64_t>(violations.size()));
  json.end_object();
  os << json.str() << "\n";
}

}  // namespace qta::lint

// qtlint — domain linter enforcing QTAccel's hardware-derived invariants.
//
// The repo models a synthesizable fixed-point datapath; a handful of C++
// habits silently break the correspondence between the software model and
// the hardware the paper describes. qtlint is a token-level checker (it
// lexes comments, string literals and identifiers — it is not a compiler
// plugin) that fails the build when one of those habits sneaks in:
//
//   datapath-purity   no float/double and no libm in the datapath dirs
//                     (src/hw, src/fixed, the qtaccel pipeline files) —
//                     the paper's 4-DSP fixed-point datapath claim.
//   determinism       no wall-clock / libc / std::random entropy outside
//                     src/rng — cycle-accuracy requires reproducible runs.
//   pragma-once       every header carries #pragma once.
//   no-using-namespace no `using namespace` at header scope.
//   no-iostream       no <iostream>/cout/cerr in hot-path src/hw and
//                     src/fixed code.
//   no-bare-assert    QTA_CHECK / QTA_DCHECK instead of assert().
//   telemetry-boundary datapath files touch telemetry only through the
//                     host-side sink interface (telemetry/sink.h); the
//                     registry/trace/profiler machinery stays host-side.
//   runtime-boundary  layering between the datapath and the runtime:
//                     nothing in src/ below src/runtime (except the
//                     driver and the serving layer) may include
//                     runtime/ headers, and only src/runtime and
//                     src/qtaccel may include qtaccel/pipeline.h or
//                     qtaccel/fast_engine.h — everything else
//                     constructs machines through the Engine facade /
//                     backend registry.
//   serve-boundary    the serving layer sits at the top of src/:
//                     within src/, only src/serve may include serve/
//                     headers (tools, examples and bench sit above the
//                     seam and may), and src/serve itself stays
//                     backend-generic — it must not name
//                     qtaccel/pipeline.h or qtaccel/fast_engine.h.
//
// Escape hatches, all comment-driven and rule-scoped:
//   // qtlint: allow(rule[, rule...])        — this line only
//   // qtlint: push-allow(rule)  ... pop-allow(rule)
//   // qtlint: allow-file(rule)              — whole file
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace qta::lint {

enum class RuleId {
  kDatapathPurity,
  kDeterminism,
  kPragmaOnce,
  kNoUsingNamespace,
  kNoIostream,
  kNoBareAssert,
  kTelemetryBoundary,
  kRuntimeBoundary,
  kServeBoundary,
  kUnknownAllow,  // meta-rule: allow(...) names a rule that does not exist
};

/// Stable kebab-case name used in diagnostics and allow() annotations.
std::string_view rule_name(RuleId id);

/// One-line scope description ("src/hw, src/fixed, pipeline files", ...).
std::string_view rule_scope(RuleId id);

/// One-line rationale tying the rule to a paper claim.
std::string_view rule_rationale(RuleId id);

/// All real rules (excludes the kUnknownAllow meta-rule).
const std::vector<RuleId>& all_rules();

struct Violation {
  std::string file;  // path as given to the linter (repo-relative)
  unsigned line = 0;
  RuleId rule = RuleId::kDatapathPurity;
  std::string message;
};

/// Which rule families apply to a path. Derived from the repo-relative
/// path, so callers must pass paths rooted at the repo (e.g.
/// "src/hw/bram.cpp"), not absolute paths.
struct FileClass {
  bool datapath = false;  // src/hw, src/fixed, qtaccel pipeline files
  bool rng = false;       // src/rng — the sanctioned entropy module
  bool hot_path = false;  // src/hw, src/fixed (no-iostream scope)
  bool in_src = false;    // under src/
  bool runtime = false;   // src/runtime — the backend/facade layer
  bool driver = false;    // src/driver — sits above runtime, may use it
  bool serve = false;     // src/serve — the serving layer, above runtime
  bool qtaccel = false;   // src/qtaccel — the backends' own module
  bool header = false;    // .h / .hpp
};

FileClass classify_path(std::string_view rel_path);

/// Lints one file's content. `rel_path` determines rule scoping.
std::vector<Violation> lint_content(std::string_view rel_path,
                                    std::string_view content);

/// Reads and lints a file on disk. `rel_path` is used for both IO (resolved
/// against `root`) and scoping. IO failures produce a synthetic violation.
std::vector<Violation> lint_file(const std::string& root,
                                 const std::string& rel_path);

/// Renders the rule table (Rule | Scope | Rationale) via qta::TablePrinter.
void print_rules_table(std::ostream& os);

/// Renders a per-rule violation-count summary table.
void print_summary_table(std::ostream& os,
                         const std::vector<Violation>& violations,
                         std::size_t files_scanned);

}  // namespace qta::lint

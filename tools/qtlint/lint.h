// qtlint — domain linter enforcing QTAccel's hardware-derived invariants.
//
// The repo models a synthesizable fixed-point datapath; a handful of C++
// habits silently break the correspondence between the software model and
// the hardware the paper describes. qtlint is a token-level checker (it
// lexes comments, string literals and identifiers — it is not a compiler
// plugin) that fails the build when one of those habits sneaks in:
//
//   datapath-purity   no float/double and no libm in the datapath dirs
//                     (src/hw, src/fixed, the qtaccel pipeline files) —
//                     the paper's 4-DSP fixed-point datapath claim.
//   determinism       no wall-clock / libc / std::random entropy outside
//                     src/rng — cycle-accuracy requires reproducible runs.
//   pragma-once       every header carries #pragma once.
//   no-using-namespace no `using namespace` at header scope.
//   no-iostream       no <iostream>/cout/cerr in hot-path src/hw and
//                     src/fixed code.
//   no-bare-assert    QTA_CHECK / QTA_DCHECK instead of assert().
//   telemetry-boundary datapath files touch telemetry only through the
//                     host-side sink interface (telemetry/sink.h); the
//                     registry/trace/profiler machinery stays host-side.
//   layering          the full include-graph DAG in one data-driven
//                     rule (it subsumed the old runtime-boundary and
//                     serve-boundary scanners): every src/ module may
//                     include only its declared lower layers — e.g.
//                     runtime/ headers are visible only to runtime,
//                     driver and serve; serve/ headers only to serve
//                     itself — and the concrete backend headers
//                     (qtaccel/pipeline.h, qtaccel/fast_engine.h) are
//                     constructible only from src/runtime and
//                     src/qtaccel; everything else goes through the
//                     Engine facade / backend registry. lint_repo also
//                     rejects #include cycles anywhere in the scanned
//                     set. The DAG itself is the kLayering table in
//                     lint.cpp, documented in docs/static_analysis.md.
//   mutex-annotation  every std::mutex / std::shared_mutex /
//                     std::condition_variable (and friends) MEMBER
//                     declared under src/ must carry a QTA_GUARDED_BY-
//                     family annotation (common/annotations.h) on its
//                     declaration, or use the annotated qta::Mutex /
//                     qta::CondVar wrappers (common/mutex.h) — so the
//                     clang thread-safety analysis sees every lock.
//
// Escape hatches, all comment-driven and rule-scoped:
//   // qtlint: allow(rule[, rule...])        — this line only
//   // qtlint: push-allow(rule)  ... pop-allow(rule)
//   // qtlint: allow-file(rule)              — whole file
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace qta::lint {

enum class RuleId {
  kDatapathPurity,
  kDeterminism,
  kPragmaOnce,
  kNoUsingNamespace,
  kNoIostream,
  kNoBareAssert,
  kTelemetryBoundary,
  kLayering,
  kMutexAnnotation,
  kUnknownAllow,  // meta-rule: allow(...) names a rule that does not exist
};

/// Stable kebab-case name used in diagnostics and allow() annotations.
std::string_view rule_name(RuleId id);

/// One-line scope description ("src/hw, src/fixed, pipeline files", ...).
std::string_view rule_scope(RuleId id);

/// One-line rationale tying the rule to a paper claim.
std::string_view rule_rationale(RuleId id);

/// All real rules (excludes the kUnknownAllow meta-rule).
const std::vector<RuleId>& all_rules();

struct Violation {
  std::string file;  // path as given to the linter (repo-relative)
  unsigned line = 0;
  RuleId rule = RuleId::kDatapathPurity;
  std::string message;
};

/// Which rule families apply to a path. Derived from the repo-relative
/// path, so callers must pass paths rooted at the repo (e.g.
/// "src/hw/bram.cpp"), not absolute paths.
struct FileClass {
  bool datapath = false;  // src/hw, src/fixed, qtaccel pipeline files
  bool rng = false;       // src/rng — the sanctioned entropy module
  bool hot_path = false;  // src/hw, src/fixed (no-iostream scope)
  bool in_src = false;    // under src/
  bool runtime = false;   // src/runtime — the backend/facade layer
  bool driver = false;    // src/driver — sits above runtime, may use it
  bool serve = false;     // src/serve — the serving layer, above runtime
  bool qtaccel = false;   // src/qtaccel — the backends' own module
  bool header = false;    // .h / .hpp
  /// Layering module: the segment after src/ ("common", "runtime", ...)
  /// for src files, the top directory ("tools", "bench", ...) otherwise.
  std::string module;
};

FileClass classify_path(std::string_view rel_path);

/// One repo-relative file handed to lint_repo.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One #include directive: its (unresolved) target and 1-based line.
struct IncludeEdge {
  std::string target;
  unsigned line = 0;
};

/// The #include targets of one file, in line order (comments and string
/// literals are ignored). Exposed for tests and include-graph tooling.
std::vector<IncludeEdge> list_includes(std::string_view content);

/// Lints one file's content: every per-file rule (including the
/// per-edge layering checks). `rel_path` determines rule scoping.
/// Cross-file analyses (include cycles) need lint_repo.
std::vector<Violation> lint_content(std::string_view rel_path,
                                    std::string_view content);

/// Lints a whole repo view: lint_content on every file, plus the
/// cross-file include-graph pass (cycle detection over edges between
/// the given files; an edge whose include line carries
/// `qtlint: allow(layering)` is invisible to it).
std::vector<Violation> lint_repo(const std::vector<SourceFile>& files);

/// Reads and lints a file on disk. `rel_path` is used for both IO (resolved
/// against `root`) and scoping. IO failures produce a synthetic violation.
std::vector<Violation> lint_file(const std::string& root,
                                 const std::string& rel_path);

/// Renders the rule table (Rule | Scope | Rationale) via qta::TablePrinter.
void print_rules_table(std::ostream& os);

/// Renders a per-rule violation-count summary table.
void print_summary_table(std::ostream& os,
                         const std::vector<Violation>& violations,
                         std::size_t files_scanned);

/// Machine-readable report for CI problem matchers:
///   {"violations":[{"file":...,"line":N,"rule":"...","message":...},...],
///    "files_scanned":N,"count":N}
void write_violations_json(std::ostream& os,
                           const std::vector<Violation>& violations,
                           std::size_t files_scanned);

}  // namespace qta::lint

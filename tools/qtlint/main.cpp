// qtlint CLI. With explicit file arguments it lints those (repo-relative)
// paths; with none it walks src/, tools/, examples/ and bench/ under
// --root. Exit codes: 0 clean, 1 violations found, 2 usage or IO error.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "qtlint/lint.h"

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

std::vector<std::string> discover(const std::string& root) {
  std::vector<std::string> files;
  for (const char* top : {"src", "tools", "examples", "bench"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !lintable_extension(entry.path())) {
        continue;
      }
      files.push_back(
          fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void usage(std::ostream& os) {
  os << "usage: qtlint [--root DIR] [--list-rules] [--quiet] [files...]\n"
        "  files are repo-relative; with none given, src/, tools/,\n"
        "  examples/ and bench/ under --root (default: current\n"
        "  directory) are scanned.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool list_rules = false;
  bool quiet = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        usage(std::cerr);
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "qtlint: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (list_rules) {
    qta::lint::print_rules_table(std::cout);
    return 0;
  }

  if (files.empty()) files = discover(root);
  if (files.empty()) {
    std::cerr << "qtlint: nothing to lint under '" << root << "'\n";
    return 2;
  }

  std::vector<qta::lint::Violation> all;
  for (const auto& f : files) {
    if (!fs::exists(fs::path(root) / f)) {
      std::cerr << "qtlint: cannot open '" << f << "'\n";
      return 2;
    }
    auto v = qta::lint::lint_file(root, f);
    all.insert(all.end(), v.begin(), v.end());
  }

  for (const auto& v : all) {
    std::cout << v.file << ":" << v.line << ": ["
              << qta::lint::rule_name(v.rule) << "] " << v.message << "\n";
  }
  if (!quiet) {
    qta::lint::print_summary_table(std::cout, all, files.size());
  }
  return all.empty() ? 0 : 1;
}

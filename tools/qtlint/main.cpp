// qtlint CLI. With explicit file arguments it lints those (repo-relative)
// paths; with none it walks src/, tools/, examples/ and bench/ under
// --root. Either way the files are linted as one repo view (lint_repo),
// so cross-file checks (include cycles) see every scanned file.
// Exit codes: 0 clean, 1 violations found, 2 usage or IO error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "qtlint/lint.h"

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

std::vector<std::string> discover(const std::string& root) {
  std::vector<std::string> files;
  for (const char* top : {"src", "tools", "examples", "bench"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !lintable_extension(entry.path())) {
        continue;
      }
      files.push_back(
          fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void usage(std::ostream& os) {
  os << "usage: qtlint [--root DIR] [--list-rules] [--quiet]\n"
        "              [--format=text|json] [files...]\n"
        "  files are repo-relative; with none given, src/, tools/,\n"
        "  examples/ and bench/ under --root (default: current\n"
        "  directory) are scanned. --format=json emits one machine-\n"
        "  readable report on stdout (CI problem matchers consume it).\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool list_rules = false;
  bool quiet = false;
  bool json = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        usage(std::cerr);
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--format=text") {
      json = false;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "qtlint: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (list_rules) {
    qta::lint::print_rules_table(std::cout);
    return 0;
  }

  if (files.empty()) files = discover(root);
  if (files.empty()) {
    std::cerr << "qtlint: nothing to lint under '" << root << "'\n";
    return 2;
  }

  std::vector<qta::lint::SourceFile> sources;
  sources.reserve(files.size());
  for (const auto& f : files) {
    std::ifstream is(fs::path(root) / f);
    if (!is) {
      std::cerr << "qtlint: cannot open '" << f << "'\n";
      return 2;
    }
    std::ostringstream content;
    content << is.rdbuf();
    sources.push_back({f, std::move(content).str()});
  }

  const std::vector<qta::lint::Violation> all = qta::lint::lint_repo(sources);

  if (json) {
    qta::lint::write_violations_json(std::cout, all, files.size());
    return all.empty() ? 0 : 1;
  }

  for (const auto& v : all) {
    std::cout << v.file << ":" << v.line << ": ["
              << qta::lint::rule_name(v.rule) << "] " << v.message << "\n";
  }
  if (!quiet) {
    qta::lint::print_summary_table(std::cout, all, files.size());
  }
  return all.empty() ? 0 : 1;
}

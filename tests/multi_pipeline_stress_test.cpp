// TSan-targeted stress for the threaded multi-pipeline paths.
//
// The paper's shared-table collision semantics — "one pipeline arbitrarily
// overwrites the other, never torn reads" — are modeled at the C++ level
// by running both pipelines of a SharedTablePipelines in lockstep on ONE
// host thread; host-thread parallelism exists only across independent
// pipeline/accelerator instances. These tests hammer exactly the code
// that does run concurrently (IndependentPipelines' thread pool, parallel
// construction hitting lazy-initialized LUT statics, whole instances per
// thread) so a `cmake --preset tsan && ctest --preset tsan` run proves
// the model is free of data races, not merely that it computes the right
// numbers. They are sized to stay fast in regular builds and still give
// TSan enough interleavings to bite on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "env/grid_world.h"
#include "env/partition.h"
#include "fixed/exp_lut.h"
#include "fixed/math_lut.h"
#include "runtime/multi_pipeline.h"

namespace qta::qtaccel {
namespace {

using runtime::IndependentPipelines;
using runtime::SharedTablePipelines;

env::GridWorldConfig grid(unsigned w, unsigned h, unsigned a = 4) {
  env::GridWorldConfig c;
  c.width = w;
  c.height = h;
  c.num_actions = a;
  return c;
}

TEST(MultiPipelineStress, IndependentPipelinesOversubscribedThreads) {
  // More pipelines than a typical core count and an oversubscribed pool:
  // every pipeline boundary is a potential race under TSan.
  auto bands = env::partition_grid(grid(8, 32), 8);
  std::vector<std::unique_ptr<env::Environment>> envs;
  for (const auto& b : bands) {
    envs.push_back(std::make_unique<env::GridWorld>(b));
  }
  PipelineConfig c;
  c.seed = 11;
  IndependentPipelines rovers(std::move(envs), c);
  rovers.run_samples_each(8000, 8);
  EXPECT_GE(rovers.total_samples(), 8u * 8000u);
}

TEST(MultiPipelineStress, RepeatedThreadPoolLaunches) {
  // Launch/join the pool repeatedly so thread creation/retirement edges
  // (where stale-state bugs hide) get exercised, and verify the result
  // still matches a serial run bit-for-bit.
  auto make = [] {
    auto bands = env::partition_grid(grid(8, 16), 4);
    std::vector<std::unique_ptr<env::Environment>> envs;
    for (const auto& b : bands) {
      envs.push_back(std::make_unique<env::GridWorld>(b));
    }
    PipelineConfig c;
    c.seed = 12;
    return std::make_unique<IndependentPipelines>(std::move(envs), c);
  };
  auto serial = make();
  auto threaded = make();
  for (int round = 0; round < 4; ++round) {
    serial->run_samples_each(3000, 1);
    threaded->run_samples_each(3000, 4);
  }
  for (unsigned i = 0; i < serial->num_pipelines(); ++i) {
    const auto& e = serial->environment(i);
    for (StateId s = 0; s < e.num_states(); ++s) {
      for (ActionId a = 0; a < e.num_actions(); ++a) {
        ASSERT_EQ(serial->engine(i).q_raw(s, a),
                  threaded->engine(i).q_raw(s, a))
            << "pipeline " << i;
      }
    }
  }
}

TEST(MultiPipelineStress, ConcurrentSharedTableInstances) {
  // Each thread owns a full dual-pipeline shared-table accelerator. The
  // shared Q/R/Qmax BRAMs are instance-local, so N instances across N
  // threads must not interfere; this also runs the collision-counting
  // write path concurrently with other instances' reads.
  constexpr unsigned kThreads = 4;
  std::vector<std::uint64_t> collisions(kThreads, 0);
  std::vector<double> rates(kThreads, 0.0);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &collisions, &rates] {
      env::GridWorld g(grid(4, 4));
      PipelineConfig c;
      c.seed = 100 + t;
      SharedTablePipelines dual(g, c, 2);
      dual.run_cycles(20000);
      collisions[t] = dual.q_write_collisions();
      rates[t] = dual.samples_per_cycle();
    });
  }
  for (auto& th : pool) th.join();
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_GT(collisions[t], 0u) << "instance " << t;
    EXPECT_GT(rates[t], 1.9) << "instance " << t;
  }
}

TEST(MultiPipelineStress, SharedTableWordsAreNeverTorn) {
  // "Arbitrary overwrite, never torn reads": after heavy collision
  // traffic every stored Q word must still be a value representable in
  // the configured fixed-point format — a torn/corrupted word would fall
  // outside it or denormalize to garbage.
  env::GridWorld g(grid(4, 4));
  PipelineConfig c;
  c.seed = 21;
  SharedTablePipelines dual(g, c, 2);
  dual.run_cycles(50000);
  EXPECT_GT(dual.q_write_collisions(), 0u);
  const double lo = c.q_fmt.min_value();
  const double hi = c.q_fmt.max_value();
  for (const double v : dual.q_as_double()) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
  }
}

TEST(MultiPipelineStress, ConcurrentLazyLutInitialization) {
  // fixed/math_lut.cpp builds its log2 correction table in a
  // function-local static on first use; fire the first use from many
  // threads at once. Magic statics make this safe — TSan verifies.
  constexpr unsigned kThreads = 8;
  std::vector<std::thread> pool;
  std::vector<fixed::raw_t> results(kThreads, 0);
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &results] {
      const fixed::Format fmt{18, 8};
      fixed::raw_t acc = 0;
      for (int i = 1; i < 200; ++i) {
        acc += fixed::log2_fixed(i, fmt, fmt);
        acc += fixed::sqrt_fixed(i, fmt, fmt);
      }
      fixed::ExpLut lut(-8.0, 8.0, 8, fmt);
      acc += lut.eval(fixed::from_double(0.5, fmt), fmt);
      results[t] = acc;
    });
  }
  for (auto& th : pool) th.join();
  for (unsigned t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t], results[0]);
  }
}

}  // namespace
}  // namespace qta::qtaccel

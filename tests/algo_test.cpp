#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "algo/double_q.h"
#include "algo/expected_sarsa.h"
#include "algo/mab_algorithms.h"
#include "algo/q_learning.h"
#include "algo/sarsa.h"
#include "algo/trainer.h"
#include "env/grid_world.h"
#include "env/value_iteration.h"

namespace qta::algo {
namespace {

env::GridWorldConfig grid(unsigned w, unsigned h, unsigned actions = 4) {
  env::GridWorldConfig c;
  c.width = w;
  c.height = h;
  c.num_actions = actions;
  return c;
}

TEST(QLearning, ConvergesToOptimalPolicyOnGrid) {
  env::GridWorld g(grid(8, 8));
  QLearningOptions opt;
  opt.alpha = 0.2;
  opt.gamma = 0.9;
  QLearning learner(g, opt);
  TrainOptions topt;
  topt.total_samples = 400000;
  topt.seed = 1;
  train(learner, topt);

  const auto optimal = env::value_iteration(g, 0.9);
  const auto policy = learner.greedy_policy();
  // The learned greedy policy must reach the goal from every free state in
  // optimal time (deterministic grid + exhaustive random exploration).
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_obstacle(s) || g.is_terminal(s)) continue;
    const int got = env::rollout_steps(g, policy, s, 200);
    const int best = env::rollout_steps(g, optimal.policy, s, 200);
    ASSERT_GE(got, 0) << "state " << s << " never reaches the goal";
    EXPECT_EQ(got, best) << "suboptimal path from state " << s;
  }
}

TEST(QLearning, QValuesApproachOptimal) {
  env::GridWorld g(grid(4, 4));
  QLearningOptions opt;
  opt.alpha = 0.1;
  opt.gamma = 0.9;
  QLearning learner(g, opt);
  TrainOptions topt;
  topt.total_samples = 300000;
  train(learner, topt);
  const auto optimal = env::value_iteration(g, 0.9);
  EXPECT_LT(env::greedy_path_q_error(g, optimal, learner.q(),
                                     g.state_of(0, 0)),
            1.0);
}

TEST(QLearning, MonotoneQmaxCacheNeverDecreases) {
  env::GridWorld g(grid(4, 4));
  QLearningOptions opt;
  opt.use_monotone_qmax = true;
  QLearning learner(g, opt);
  policy::XoshiroSource rng(3);
  std::vector<double> prev(g.num_states(), 0.0);
  StateId s = 0;
  for (int i = 0; i < 20000; ++i) {
    const Step st = learner.step(s, rng);
    for (StateId k = 0; k < g.num_states(); ++k) {
      const double now = learner.cached_qmax(k);
      ASSERT_GE(now, prev[k]);
      prev[k] = now;
    }
    s = st.terminal ? 0 : st.next_state;
  }
}

TEST(QLearning, MonotoneQmaxStillLearnsGoal) {
  env::GridWorld g(grid(4, 4));
  QLearningOptions opt;
  opt.use_monotone_qmax = true;
  opt.alpha = 0.2;
  QLearning learner(g, opt);
  TrainOptions topt;
  topt.total_samples = 200000;
  train(learner, topt);
  const auto policy = learner.greedy_policy();
  EXPECT_GE(env::rollout_steps(g, policy, g.state_of(0, 0), 100), 0);
}

TEST(Sarsa, LearnsGoalDirectedPolicy) {
  env::GridWorld g(grid(8, 8));
  SarsaOptions opt;
  opt.alpha = 0.2;
  opt.gamma = 0.9;
  opt.epsilon = 0.25;
  Sarsa learner(g, opt);
  TrainOptions topt;
  topt.total_samples = 500000;
  train(learner, topt);
  const auto policy = learner.greedy_policy();
  int reached = 0, total = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_obstacle(s) || g.is_terminal(s)) continue;
    ++total;
    if (env::rollout_steps(g, policy, s, 200) >= 0) ++reached;
  }
  EXPECT_GE(reached, total * 9 / 10);
}

TEST(Sarsa, CliffWalkPrefersSafePath) {
  // Classic on-policy vs off-policy distinction: with a penalized "cliff"
  // row, epsilon-greedy SARSA learns to stay away from the cliff edge,
  // while Q-learning learns the risky shortest path. We verify SARSA's
  // value along the edge is depressed relative to Q-learning's.
  env::GridWorldConfig c = grid(8, 4);
  c.goal_x = 7;
  c.goal_y = 3;
  c.step_reward = -1.0;
  c.collision_penalty = 100.0;  // bumps hurt
  env::GridWorld g(c);

  SarsaOptions sopt;
  sopt.alpha = 0.2;
  sopt.gamma = 0.95;
  sopt.epsilon = 0.3;
  Sarsa sarsa(g, sopt);
  TrainOptions topt;
  topt.total_samples = 400000;
  train(sarsa, topt);

  QLearningOptions qopt;
  qopt.alpha = 0.2;
  qopt.gamma = 0.95;
  QLearning qlearn(g, qopt);
  train(qlearn, topt);

  // Edge state next to the bottom boundary, action "down" bumps: SARSA's
  // Q for walking along the bottom row should be lower than Q-learning's
  // (it accounts for exploratory bumps).
  const StateId edge = g.state_of(3, 3);
  EXPECT_LT(sarsa.q_at(edge, 2), qlearn.q_at(edge, 2) + 1e-9);
}

TEST(ExpectedSarsa, Converges) {
  env::GridWorld g(grid(4, 4));
  ExpectedSarsaOptions opt;
  opt.alpha = 0.2;
  opt.epsilon = 0.2;
  ExpectedSarsa learner(g, opt);
  TrainOptions topt;
  topt.total_samples = 200000;
  train(learner, topt);
  const auto policy = learner.greedy_policy();
  EXPECT_GE(env::rollout_steps(g, policy, g.state_of(0, 0), 100), 0);
}

TEST(DoubleQ, Converges) {
  env::GridWorld g(grid(4, 4));
  DoubleQOptions opt;
  opt.alpha = 0.2;
  DoubleQLearning learner(g, opt);
  TrainOptions topt;
  topt.total_samples = 300000;
  train(learner, topt);
  const auto policy = learner.greedy_policy();
  EXPECT_GE(env::rollout_steps(g, policy, g.state_of(0, 0), 100), 0);
}

TEST(Trainer, CountsEpisodesAndSamples) {
  env::GridWorld g(grid(4, 4));
  QLearning learner(g, QLearningOptions{});
  TrainOptions topt;
  topt.total_samples = 10000;
  const TrainResult r = train(learner, topt);
  EXPECT_EQ(r.samples, 10000u);
  EXPECT_GT(r.episodes, 0u);
  EXPECT_GT(r.samples_per_sec, 0.0);
  EXPECT_GT(r.episode_length.mean(), 0.0);
}

TEST(Trainer, ProbeFires) {
  env::GridWorld g(grid(4, 4));
  QLearning learner(g, QLearningOptions{});
  TrainOptions topt;
  topt.total_samples = 1000;
  topt.probe_interval = 100;
  int probes = 0;
  topt.probe = [&](std::uint64_t) { ++probes; };
  train(learner, topt);
  EXPECT_EQ(probes, 10);
}

TEST(Trainer, WatchdogCutsEpisodes) {
  // Self-loop-free grid but a tiny step cap: episodes end by the cap.
  env::GridWorld g(grid(8, 8));
  QLearning learner(g, QLearningOptions{});
  TrainOptions topt;
  topt.total_samples = 5000;
  topt.max_steps_per_episode = 10;
  const TrainResult r = train(learner, topt);
  EXPECT_LE(r.episode_length.max(), 10.0);
}

TEST(MabEpsGreedy, FindsBestArm) {
  auto bandit = env::MultiArmedBandit::evenly_spaced(5, 0.2, 1);
  EpsilonGreedyMab algo(5, 0.1);
  policy::XoshiroSource rng(2);
  run_bandit(algo, bandit, 20000, rng);
  // Best arm's estimate dominates.
  double best = -1e9;
  unsigned best_arm = 0;
  for (unsigned m = 0; m < 5; ++m) {
    if (algo.value(m) > best) {
      best = algo.value(m);
      best_arm = m;
    }
  }
  EXPECT_EQ(best_arm, bandit.best_arm());
  // Regret grows sublinearly: far less than always pulling at random
  // (~0.5 per pull average gap).
  EXPECT_LT(bandit.cumulative_regret(), 20000 * 0.12);
}

TEST(MabUcb1, SweepsAllArmsFirst) {
  Ucb1 algo(4);
  policy::XoshiroSource rng(3);
  std::set<unsigned> first;
  for (int i = 0; i < 4; ++i) {
    const unsigned m = algo.select(rng);
    first.insert(m);
    algo.update(m, 0.5);
  }
  EXPECT_EQ(first.size(), 4u);
}

TEST(MabUcb1, LowRegret) {
  auto bandit = env::MultiArmedBandit::evenly_spaced(5, 0.2, 4);
  Ucb1 algo(5);
  policy::XoshiroSource rng(5);
  run_bandit(algo, bandit, 20000, rng);
  EXPECT_LT(bandit.cumulative_regret(), 20000 * 0.05);
}

TEST(MabExp3, BeatsUniformPlay) {
  auto bandit = env::MultiArmedBandit::evenly_spaced(4, 0.2, 6);
  Exp3Mab algo(4, 0.1);
  policy::XoshiroSource rng(7);
  run_bandit(algo, bandit, 30000, rng, 0.0, 1.0);
  // Uniform play loses (0.5+1/3+1/6)/... mean gap 0.5 per pull against
  // the best arm; EXP3 should do much better.
  EXPECT_LT(bandit.cumulative_regret(), 30000 * 0.3);
}

}  // namespace
}  // namespace qta::algo

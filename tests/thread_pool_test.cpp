#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace qta {
namespace {

TEST(ResolveThreadCount, ExplicitRequestWins) {
  EXPECT_EQ(resolve_thread_count(3, 16, 100), 3u);
  EXPECT_EQ(resolve_thread_count(1, 16, 100), 1u);
}

TEST(ResolveThreadCount, ZeroRequestUsesHardware) {
  EXPECT_EQ(resolve_thread_count(0, 8, 100), 8u);
}

// std::thread::hardware_concurrency() is documented to return 0 when the
// platform cannot report a value; that must resolve to one thread, not
// clamp through zero.
TEST(ResolveThreadCount, UnknownHardwareFallsBackToOneThread) {
  EXPECT_EQ(resolve_thread_count(0, 0, 100), 1u);
  EXPECT_EQ(resolve_thread_count(0, 0, 0), 1u);
}

TEST(ResolveThreadCount, CappedByUsefulWork) {
  EXPECT_EQ(resolve_thread_count(16, 16, 5), 5u);
  EXPECT_EQ(resolve_thread_count(0, 16, 2), 2u);
  // Zero items still resolves to a valid (1-thread) pool.
  EXPECT_EQ(resolve_thread_count(4, 16, 0), 1u);
}

TEST(ThreadPoolTest, RunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroItemsIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(17, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 17);
  }
}

// A skewed batch (one slow item first in worker 0's deque, many quick
// ones behind it) must get rebalanced: the quick items land on other
// workers via steals instead of waiting behind the slow one.
TEST(ThreadPoolTest, StealsRebalanceSkewedWork) {
  ThreadPool pool(4);
  const std::size_t kItems = 64;
  std::atomic<int> done{0};
  pool.parallel_for(kItems, [&](std::size_t i) {
    if (i == 0) {
      // Item 0 parks worker 0 until everything else finished elsewhere.
      while (done.load() < static_cast<int>(kItems) - 1) {
        std::this_thread::yield();
      }
    }
    ++done;
  });
  EXPECT_EQ(done.load(), static_cast<int>(kItems));
  // Worker 0 held item 0 the whole time, so its remaining 15 round-robin
  // items can only have run through steals.
  EXPECT_GE(pool.steals(), 15u);
}

// Regression: steals() used to read plain (non-atomic) per-worker
// counters that workers increment concurrently — a data race under
// TSan. The counters are atomics now; polling steals() while a batch
// is in flight must be clean (this test runs in the TSan CI leg).
TEST(ThreadPoolTest, StealsIsSafeToPollDuringABatch) {
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::uint64_t observed = 0;
  std::thread poller([&] {
    while (!stop.load()) {
      observed = pool.steals();
      std::this_thread::yield();
    }
  });
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> done{0};
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 0) {
        while (done.load() < 63) std::this_thread::yield();
      }
      ++done;
    });
  }
  stop.store(true);
  poller.join();
  // The skewed batches force steals, and the monotone counter's final
  // value must dominate anything the poller saw mid-flight.
  EXPECT_GE(pool.steals(), observed);
  EXPECT_GE(pool.steals(), 15u);
}

TEST(ThreadPoolTest, ExecutionIsDeterministicRegardlessOfSchedule) {
  // Items write to disjoint slots: any interleaving yields the same
  // result (the property IndependentPipelines relies on).
  std::vector<std::uint64_t> a(100, 0), b(100, 0);
  {
    ThreadPool pool(7);
    pool.parallel_for(a.size(), [&](std::size_t i) { a[i] = i * i; });
  }
  {
    ThreadPool pool(2);
    pool.parallel_for(b.size(), [&](std::size_t i) { b[i] = i * i; });
  }
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace qta

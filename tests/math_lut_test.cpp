#include <gtest/gtest.h>

#include <cmath>

#include "fixed/math_lut.h"
#include "rng/xoshiro.h"

namespace qta::fixed {
namespace {

constexpr Format kWide{32, 16};

TEST(Log2Fixed, ExactPowersOfTwo) {
  for (int e = -10; e <= 10; ++e) {
    const raw_t v = from_double(std::pow(2.0, e), kWide);
    const double got = to_double(log2_fixed(v, kWide, kWide), kWide);
    EXPECT_NEAR(got, e, 1e-3) << "2^" << e;
  }
}

TEST(Log2Fixed, RandomValuesWithinLutError) {
  rng::Xoshiro256 rng(1);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform(0.01, 30000.0);
    const raw_t v = from_double(x, kWide);
    const double got = to_double(log2_fixed(v, kWide, kWide), kWide);
    EXPECT_NEAR(got, std::log2(x), 2e-4 + 1e-3 / x) << x;
  }
}

TEST(Log2Fixed, NonPositiveAborts) {
  EXPECT_DEATH(log2_fixed(0, kWide, kWide), "non-positive");
  EXPECT_DEATH(log2_fixed(-1, kWide, kWide), "non-positive");
}

TEST(LnFixed, MatchesStdLog) {
  rng::Xoshiro256 rng(2);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0.1, 10000.0);
    const raw_t v = from_double(x, kWide);
    const double got = to_double(ln_fixed(v, kWide, kWide), kWide);
    EXPECT_NEAR(got, std::log(x), 5e-3) << x;
  }
}

TEST(SqrtFixed, PerfectSquares) {
  for (int k = 0; k <= 100; ++k) {
    const raw_t v = from_double(static_cast<double>(k * k), kWide);
    EXPECT_NEAR(to_double(sqrt_fixed(v, kWide, kWide), kWide), k, 1e-4)
        << k;
  }
}

TEST(SqrtFixed, RandomValuesWithinOneUlp) {
  rng::Xoshiro256 rng(3);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform(0.0, 20000.0);
    const raw_t v = from_double(x, kWide);
    const double got = to_double(sqrt_fixed(v, kWide, kWide), kWide);
    EXPECT_NEAR(got, std::sqrt(to_double(v, kWide)),
                2.0 * kWide.resolution())
        << x;
  }
}

TEST(SqrtFixed, ZeroAndNegative) {
  EXPECT_EQ(sqrt_fixed(0, kWide, kWide), 0);
  EXPECT_DEATH(sqrt_fixed(-1, kWide, kWide), "negative");
}

TEST(SqrtFixed, ResultIsFloor) {
  // floor semantics: sqrt(x)^2 <= x < (sqrt(x) + ulp)^2.
  rng::Xoshiro256 rng(4);
  for (int i = 0; i < 500; ++i) {
    const raw_t v = static_cast<raw_t>(rng.below(1u << 30));
    const raw_t r = sqrt_fixed(v, kWide, kWide);
    const double x = to_double(v, kWide);
    const double s = to_double(r, kWide);
    EXPECT_LE(s * s, x + 1e-9);
    const double s1 = s + kWide.resolution();
    EXPECT_GT(s1 * s1, x - 1e-9);
  }
}

TEST(DivFixed, ExactRatios) {
  EXPECT_EQ(div_fixed(from_double(6.0, kWide), kWide,
                      from_double(2.0, kWide), kWide, kWide),
            from_double(3.0, kWide));
  EXPECT_EQ(div_fixed(from_double(-6.0, kWide), kWide,
                      from_double(2.0, kWide), kWide, kWide),
            from_double(-3.0, kWide));
  EXPECT_EQ(div_fixed(from_double(1.0, kWide), kWide,
                      from_double(8.0, kWide), kWide, kWide),
            from_double(0.125, kWide));
}

TEST(DivFixed, RandomWithinOneUlp) {
  rng::Xoshiro256 rng(5);
  for (int i = 0; i < 3000; ++i) {
    const double a = rng.uniform(-1000.0, 1000.0);
    const double b = rng.uniform(0.5, 300.0) * (rng.bernoulli(0.5) ? 1 : -1);
    const raw_t ra = from_double(a, kWide);
    const raw_t rb = from_double(b, kWide);
    const double exact = to_double(ra, kWide) / to_double(rb, kWide);
    const double got =
        to_double(div_fixed(ra, kWide, rb, kWide, kWide), kWide);
    EXPECT_NEAR(got, exact, 1.5 * kWide.resolution()) << a << "/" << b;
  }
}

TEST(DivFixed, SaturatesOnOverflow) {
  const Format narrow{18, 8};
  const raw_t big = from_double(400.0, narrow);
  const raw_t tiny = from_double(0.01, narrow);
  EXPECT_EQ(div_fixed(big, narrow, tiny, narrow, narrow),
            narrow.max_raw());
}

TEST(DivFixed, ByZeroAborts) {
  EXPECT_DEATH(div_fixed(1, kWide, 0, kWide, kWide), "division by zero");
}

TEST(DivFixed, MixedFormats) {
  // (2.5 in s9.8) / (2 in s31.0) = 1.25 in s15.16.
  const Format q{18, 8};
  const Format integer{32, 0};
  EXPECT_EQ(div_fixed(from_double(2.5, q), q, 2, integer, kWide),
            from_double(1.25, kWide));
}

TEST(MathLut, ResourceEstimatesPositive) {
  EXPECT_GT(log2_lut_bits(), 0u);
  EXPECT_GT(sqrt_iteration_luts(kWide), 0u);
  EXPECT_GT(divider_luts(kWide), 0u);
}

// End-to-end: the UCB bonus sqrt(2 ln t / n) over realistic ranges.
TEST(MathLut, UcbBonusAccuracy) {
  for (const std::uint64_t t : {10ull, 1000ull, 100000ull}) {
    for (const std::uint64_t n : {1ull, 7ull, 500ull}) {
      const raw_t t_raw = static_cast<raw_t>(t) << kWide.frac;
      const raw_t ln_t = ln_fixed(t_raw, kWide, kWide);
      const Format cfmt{16, 8};
      const raw_t two = from_double(2.0, cfmt);
      const raw_t num = mul(two, cfmt, ln_t, kWide, kWide);
      const raw_t n_raw = static_cast<raw_t>(n) << kWide.frac;
      const raw_t ratio = div_fixed(num, kWide, n_raw, kWide, kWide);
      const raw_t bonus = sqrt_fixed(ratio, kWide, kWide);
      const double expect =
          std::sqrt(2.0 * std::log(static_cast<double>(t)) /
                    static_cast<double>(n));
      EXPECT_NEAR(to_double(bonus, kWide), expect, 0.01)
          << "t=" << t << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace qta::fixed

#include <gtest/gtest.h>

#include <vector>

#include "env/grid_world.h"
#include "env/random_mdp.h"
#include "env/value_iteration.h"
#include "qtaccel/golden_model.h"

namespace qta::qtaccel {
namespace {

env::GridWorldConfig grid(unsigned w, unsigned h, unsigned a = 4) {
  env::GridWorldConfig c;
  c.width = w;
  c.height = h;
  c.num_actions = a;
  return c;
}

TEST(GoldenModel, QLearningConvergesOnGrid) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.alpha = 0.2;
  c.gamma = 0.9;
  c.seed = 1;
  GoldenModel golden(g, c);
  golden.run(400000);

  const auto optimal = env::value_iteration(g, 0.9);
  // Extract the greedy policy from the learned fixed-point table.
  std::vector<ActionId> policy(g.num_states(), 0);
  for (StateId s = 0; s < g.num_states(); ++s) {
    double best = -1e300;
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      if (golden.q_value(s, a) > best) {
        best = golden.q_value(s, a);
        policy[s] = a;
      }
    }
  }
  int reached = 0, total = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_terminal(s)) continue;
    ++total;
    if (env::rollout_steps(g, policy, s, 200) >= 0) ++reached;
  }
  EXPECT_GE(reached, total * 95 / 100);
  // Q values on the optimal path approach Q* within fixed-point slack.
  EXPECT_LT(env::greedy_path_q_error(g, optimal, golden.q_as_double(),
                                     g.state_of(0, 0)),
            2.0);
}

TEST(GoldenModel, SarsaConvergesOnGrid) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.algorithm = Algorithm::kSarsa;
  c.alpha = 0.2;
  c.epsilon = 0.3;
  c.seed = 2;
  // The watchdog matters for SARSA: with an empty Qmax table the greedy
  // branch is pinned to action 0, and without episode truncation the
  // on-policy walk can wedge against a wall for the entire run (observed:
  // zero completed episodes in 800k samples at the default cap).
  c.max_episode_length = 200;
  GoldenModel golden(g, c);
  golden.run(800000);
  std::vector<ActionId> policy(g.num_states(), 0);
  for (StateId s = 0; s < g.num_states(); ++s) {
    double best = -1e300;
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      if (golden.q_value(s, a) > best) {
        best = golden.q_value(s, a);
        policy[s] = a;
      }
    }
  }
  // On-policy SARSA with the hardware's monotone-Qmax greedy branch is a
  // biased learner; require the bulk of states (not all corners) to have
  // goal-directed greedy actions.
  int reached = 0, total = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_terminal(s)) continue;
    ++total;
    if (env::rollout_steps(g, policy, s, 200) >= 0) ++reached;
  }
  EXPECT_GE(reached, total * 8 / 10);
}

TEST(GoldenModel, QmaxIsMonotoneUpperBoundOfItsRowHistory) {
  env::GridWorld g(grid(4, 4));
  PipelineConfig c;
  c.seed = 3;
  GoldenModel golden(g, c);
  std::vector<fixed::raw_t> prev(g.num_states(), 0);
  for (int chunk = 0; chunk < 50; ++chunk) {
    golden.run(200);
    for (StateId s = 0; s < g.num_states(); ++s) {
      ASSERT_GE(golden.qmax_value(s), prev[s]) << "Qmax decreased";
      prev[s] = golden.qmax_value(s);
    }
  }
}

TEST(GoldenModel, QmaxEqualsRowMaxWhenValuesOnlyGrow) {
  // With all rewards >= 0, Q rows never decrease, so the monotone Qmax
  // equals the exact row maximum at all times.
  env::GridWorldConfig cfg = grid(4, 4);
  cfg.collision_penalty = 0.0;
  cfg.step_reward = 0.5;
  env::GridWorld g(cfg);
  PipelineConfig c;
  c.seed = 4;
  GoldenModel golden(g, c);
  golden.run(30000);
  for (StateId s = 0; s < g.num_states(); ++s) {
    fixed::raw_t mx = golden.q_raw(s, 0);
    for (ActionId a = 1; a < g.num_actions(); ++a) {
      mx = std::max(mx, golden.q_raw(s, a));
    }
    EXPECT_EQ(golden.qmax_value(s), std::max<fixed::raw_t>(mx, 0)) << s;
  }
}

TEST(GoldenModel, QmaxCanGoStaleHighWithNegativeRewards) {
  // Failure-mode characterization of the paper's approximation: once a Q
  // value decays below its historical peak, Qmax over-reports the row max.
  // All-negative rewards: every Q value decays below the Qmax table's
  // initial 0, so the table over-reports the row max for every visited
  // state (the staleness the exact-scan ablation removes).
  env::RandomMdpConfig mc;
  mc.num_states = 4;
  mc.num_actions = 4;
  mc.reward_lo = -1.0;
  mc.reward_hi = -0.1;
  mc.seed = 5;
  env::RandomMdp m(mc);
  PipelineConfig c;
  c.alpha = 0.5;
  c.seed = 5;
  GoldenModel golden(m, c);
  golden.run(50000);
  bool stale_somewhere = false;
  for (StateId s = 0; s < m.num_states(); ++s) {
    fixed::raw_t mx = golden.q_raw(s, 0);
    for (ActionId a = 1; a < m.num_actions(); ++a) {
      mx = std::max(mx, golden.q_raw(s, a));
    }
    ASSERT_GE(golden.qmax_value(s), std::max<fixed::raw_t>(mx, 0));
    if (golden.qmax_value(s) > mx) stale_somewhere = true;
  }
  EXPECT_TRUE(stale_somewhere);
}

TEST(GoldenModel, ExactScanTracksTrueRowMax) {
  env::RandomMdpConfig mc;
  mc.num_states = 4;
  mc.num_actions = 4;
  mc.seed = 6;
  env::RandomMdp m(mc);
  PipelineConfig c;
  c.qmax = QmaxMode::kExactScan;
  c.seed = 6;
  GoldenModel golden(m, c);
  golden.run(20000);  // must run without touching the monotone table
  EXPECT_GT(golden.counters().samples, 0u);
}

TEST(GoldenModel, TraceShapeIsConsistent) {
  env::GridWorld g(grid(4, 4));
  PipelineConfig c;
  c.seed = 7;
  GoldenModel golden(g, c);
  std::vector<SampleTrace> trace;
  golden.set_trace(&trace);
  golden.run(5000);
  ASSERT_EQ(trace.size(), 5000u);
  // Within an episode the chain is connected: next_state of sample i is
  // state of sample i+1 (unless the episode ended or a bubble follows).
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    if (trace[i].bubble || trace[i].end_episode) continue;
    if (trace[i + 1].bubble) continue;
    EXPECT_EQ(trace[i].next_state, trace[i + 1].state) << i;
  }
  // Episode ends are followed by a fresh (possibly bubble) start.
  EXPECT_EQ(golden.counters().iterations, 5000u);
  EXPECT_EQ(golden.counters().samples + golden.counters().bubbles, 5000u);
}

TEST(GoldenModel, WatchdogTruncatesEpisodes) {
  // Self-loop MDP never reaches a terminal: only the watchdog ends
  // episodes.
  env::RandomMdpConfig mc;
  mc.num_states = 4;
  mc.num_actions = 4;
  mc.self_loop = true;
  env::RandomMdp m(mc);
  PipelineConfig c;
  c.max_episode_length = 50;
  c.seed = 8;
  GoldenModel golden(m, c);
  golden.run(5000);
  EXPECT_EQ(golden.counters().episodes, 5000u / 50);
}

TEST(GoldenModel, BubblesHappenWhenStartHitsTerminal) {
  // 2-state MDP with state 1 terminal: ~half the episode starts bubble.
  env::RandomMdpConfig mc;
  mc.num_states = 2;
  mc.num_actions = 2;
  mc.terminal_fraction = 0.0;
  env::RandomMdp m(mc);
  struct OneTerminal final : env::Environment {
    explicit OneTerminal(const env::RandomMdp& base) : base_(base) {}
    StateId num_states() const override { return base_.num_states(); }
    ActionId num_actions() const override { return base_.num_actions(); }
    StateId transition(StateId s, ActionId a) const override {
      return base_.transition(s, a);
    }
    double reward(StateId s, ActionId a) const override {
      return base_.reward(s, a);
    }
    bool is_terminal(StateId s) const override { return s == 1; }
    const env::RandomMdp& base_;
  } env_with_terminal(m);

  PipelineConfig c;
  c.seed = 9;
  GoldenModel golden(env_with_terminal, c);
  golden.run(10000);
  EXPECT_GT(golden.counters().bubbles, 1000u);
  EXPECT_GT(golden.counters().samples, 1000u);
}

TEST(GoldenModel, FixedPointSaturationIsBounded) {
  // Large rewards + gamma near 1 drive values toward the format limit;
  // the table must stay within representable range (saturating, not
  // wrapping).
  env::GridWorldConfig cfg = grid(4, 4);
  cfg.goal_reward = 511.0;
  cfg.collision_penalty = 511.0;
  env::GridWorld g(cfg);
  PipelineConfig c;
  c.gamma = 0.99;
  c.alpha = 0.9;
  c.seed = 10;
  GoldenModel golden(g, c);
  golden.run(50000);
  for (StateId s = 0; s < g.num_states(); ++s) {
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      EXPECT_GE(golden.q_raw(s, a), c.q_fmt.min_raw());
      EXPECT_LE(golden.q_raw(s, a), c.q_fmt.max_raw());
    }
  }
}

}  // namespace
}  // namespace qta::qtaccel

#include <gtest/gtest.h>

#include <sstream>

#include "common/bit_math.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table_printer.h"

namespace qta {
namespace {

TEST(BitMath, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(BitMath, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(4), 2u);
  EXPECT_EQ(log2_ceil(5), 3u);
  EXPECT_EQ(log2_ceil(1024), 10u);
  EXPECT_EQ(log2_ceil(1025), 11u);
}

TEST(BitMath, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(1024), 10u);
}

TEST(BitMath, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(BitMath, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(BitMath, BitsExtraction) {
  EXPECT_EQ(bits(0b110101, 0, 3), 0b101u);
  EXPECT_EQ(bits(0b110101, 3, 3), 0b110u);
  EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
}

// Property: for any v >= 1, 2^log2_ceil(v) >= v and 2^(log2_ceil(v)-1) < v.
TEST(BitMath, Log2CeilProperty) {
  for (std::uint64_t v = 1; v < 5000; ++v) {
    const unsigned k = log2_ceil(v);
    EXPECT_GE(std::uint64_t{1} << k, v);
    if (k > 0) {
      EXPECT_LT(std::uint64_t{1} << (k - 1), v);
    }
  }
}

TEST(RunningStats, Basics) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> data{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(data, 50), 2.5);
}

TEST(Ema, SeedsWithFirstValue) {
  Ema e(0.5);
  EXPECT_FALSE(e.seeded());
  EXPECT_DOUBLE_EQ(e.add(10.0), 10.0);
  EXPECT_DOUBLE_EQ(e.add(0.0), 5.0);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   |"), std::string::npos);
  EXPECT_NE(out.find("| longer |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, Csv) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Format, Double) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(0.1234, 2), "0.12");
}

TEST(Format, Rate) {
  EXPECT_EQ(format_rate(105500.0), "105.5K");
  EXPECT_EQ(format_rate(189e6), "189M");
  EXPECT_EQ(format_rate(1.5e9), "1.5G");
  EXPECT_EQ(format_rate(12.0), "12");
}

TEST(Format, Count) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

TEST(Cli, ParsesForms) {
  // Note: a bare "--flag" followed by a non-flag token would consume the
  // token as its value, so boolean flags go last.
  const char* argv[] = {"prog", "--a=1", "--b", "2", "pos", "--flag"};
  CliFlags flags(6, argv);
  EXPECT_EQ(flags.get_int("a", 0), 1);
  EXPECT_EQ(flags.get_int("b", 0), 2);
  EXPECT_TRUE(flags.get_bool("flag", false));
  EXPECT_EQ(flags.get_string("missing", "def"), "def");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos");
}

TEST(Cli, TracksUnused) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  CliFlags flags(3, argv);
  EXPECT_EQ(flags.get_int("used", 0), 1);
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, DoubleAndBoolValues) {
  const char* argv[] = {"prog", "--x=2.5", "--y=false", "--z=true"};
  CliFlags flags(4, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 0.0), 2.5);
  EXPECT_FALSE(flags.get_bool("y", true));
  EXPECT_TRUE(flags.get_bool("z", false));
}

}  // namespace
}  // namespace qta

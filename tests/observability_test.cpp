// qtscope observability-plane tests (docs/observability.md):
//   - FlightRecorder ring semantics: bounded, overwrite-oldest, seq
//     monotone from 1, deterministic overflow accounting, and a JSON
//     dump that parses and matches the recorded tail — including under
//     concurrent recording from many threads.
//   - Nearest-rank histogram percentiles over the log2 buckets.
//   - MetricsRegistry::metric_names() enumerates the registered surface,
//     and every registered qtserve_*/qta_* family appears in the metric
//     catalog (docs/serving.md + docs/observability.md) — the drift test
//     that keeps docs and code from diverging silently.
//   - The HTTP introspection endpoint (serve/http_endpoint.h) as a pure
//     function: routes, status codes, content types, error paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/http_endpoint.h"
#include "serve/server.h"
#include "telemetry/event_log.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "test_json.h"

namespace qta::telemetry {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

ServeEvent make_event(ServeEventKind kind, std::uint64_t session,
                      const char* label, std::uint64_t value) {
  ServeEvent e;
  e.kind = kind;
  e.session = session;
  e.label = label;
  e.value = value;
  return e;
}

// ---------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorder, FillsThenOverwritesOldestWithMonotoneSeq) {
  FlightRecorder fr(4);
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.size(), 0u);

  for (std::uint64_t i = 1; i <= 3; ++i) {
    fr.record(make_event(ServeEventKind::kRequest, i, "step", i * 10));
  }
  EXPECT_EQ(fr.size(), 3u);
  EXPECT_EQ(fr.recorded(), 3u);
  EXPECT_EQ(fr.dropped(), 0u);
  {
    const std::vector<ServeEvent> events = fr.events();
    ASSERT_EQ(events.size(), 3u);
    for (std::uint64_t i = 0; i < 3; ++i) {
      EXPECT_EQ(events[i].seq, i + 1);        // assigned by the recorder
      EXPECT_EQ(events[i].session, i + 1);    // oldest first
      EXPECT_EQ(events[i].value, (i + 1) * 10);
    }
  }

  // 7 more pushes through a 4-slot ring: only the last 4 survive, and
  // the accounting states exactly how many fell off.
  for (std::uint64_t i = 4; i <= 10; ++i) {
    fr.record(make_event(ServeEventKind::kEviction, i, "lru", i));
  }
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.recorded(), 10u);
  EXPECT_EQ(fr.dropped(), 6u);
  const std::vector<ServeEvent> events = fr.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 7 + i);  // seq 7..10, oldest-first
    EXPECT_EQ(events[i].session, 7 + i);
  }
}

TEST(FlightRecorder, OverflowAccountingIsDeterministic) {
  // Same event stream, two recorders, different capacities: the
  // surviving window is a pure function of (stream, capacity).
  FlightRecorder small(3);
  FlightRecorder large(100);
  for (std::uint64_t i = 1; i <= 50; ++i) {
    const ServeEvent e =
        make_event(ServeEventKind::kRequest, i % 7, "query", i);
    small.record(e);
    large.record(e);
  }
  EXPECT_EQ(small.recorded(), 50u);
  EXPECT_EQ(small.dropped(), 47u);
  EXPECT_EQ(large.recorded(), 50u);
  EXPECT_EQ(large.dropped(), 0u);
  const std::vector<ServeEvent> tail = small.events();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, 48u);
  EXPECT_EQ(tail[1].seq, 49u);
  EXPECT_EQ(tail[2].seq, 50u);
  // The large recorder holds the same three events at the same seqs.
  const std::vector<ServeEvent> all = large.events();
  ASSERT_EQ(all.size(), 50u);
  EXPECT_EQ(all[47].value, tail[0].value);
  EXPECT_EQ(all[49].value, tail[2].value);
}

TEST(FlightRecorder, CapacityOneKeepsOnlyTheNewest) {
  FlightRecorder fr(1);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    fr.record(make_event(ServeEventKind::kOverload, 0, "step", i));
  }
  const std::vector<ServeEvent> events = fr.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 5u);
  EXPECT_EQ(events[0].value, 5u);
  EXPECT_EQ(fr.dropped(), 4u);
}

TEST(FlightRecorder, JsonDumpParsesAndMatchesTheTail) {
  FlightRecorder fr(4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    fr.record(make_event(i % 2 == 0 ? ServeEventKind::kRestore
                                    : ServeEventKind::kEviction,
                         i, i % 2 == 0 ? "" : "restore", i * 3));
  }
  const std::string text = fr.json_text();
  JsonValue root;
  ASSERT_TRUE(JsonParser(text).parse(&root)) << text;
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  EXPECT_EQ(root.at("capacity").number, 4.0);
  EXPECT_EQ(root.at("recorded").number, 6.0);
  EXPECT_EQ(root.at("dropped").number, 2.0);
  const JsonValue& events = root.at("events");
  ASSERT_EQ(events.type, JsonValue::Type::kArray);
  ASSERT_EQ(events.array.size(), 4u);
  EXPECT_EQ(events.array[0].at("seq").number, 3.0);
  EXPECT_EQ(events.array[0].at("kind").string, "eviction");
  EXPECT_EQ(events.array[0].at("label").string, "restore");
  EXPECT_EQ(events.array[1].at("kind").string, "restore");
  EXPECT_EQ(events.array[3].at("seq").number, 6.0);
  EXPECT_EQ(events.array[3].at("value").number, 18.0);
  // Timestamps are recorder-clock and non-decreasing oldest-first.
  double last_ts = -1.0;
  for (const JsonValue& e : events.array) {
    EXPECT_GE(e.at("ts_us").number, last_ts);
    last_ts = e.at("ts_us").number;
  }
}

TEST(FlightRecorder, ConcurrentRecordNeverLosesAccounting) {
  // TSan-facing: hammer one recorder from several threads. The ring
  // content interleaving is nondeterministic, but the invariants are
  // not: recorded == total pushes, size == capacity, the surviving
  // window is `capacity` events with distinct seqs, each recorded
  // payload intact.
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 500;
  FlightRecorder fr(64);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fr, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        fr.record(make_event(ServeEventKind::kRequest, t, "step", i));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(fr.recorded(), kThreads * kPerThread);
  EXPECT_EQ(fr.dropped(), kThreads * kPerThread - 64);
  const std::vector<ServeEvent> events = fr.events();
  ASSERT_EQ(events.size(), 64u);
  std::set<std::uint64_t> seqs;
  for (const ServeEvent& e : events) {
    seqs.insert(e.seq);
    EXPECT_LT(e.session, kThreads);
    EXPECT_LT(e.value, kPerThread);
  }
  EXPECT_EQ(seqs.size(), 64u);  // no duplicated or torn slots
}

// ---------------------------------------------------------------------
// Nearest-rank percentiles over the log2 histogram

TEST(HistogramPercentile, EmptyAndSingleObservation) {
  Histogram h;
  EXPECT_EQ(histogram_percentile_upper_bound(h, 0.5), 0u);
  h.observe(100);  // slot upper bound 127
  EXPECT_EQ(histogram_percentile_upper_bound(h, 0.0), 127u);
  EXPECT_EQ(histogram_percentile_upper_bound(h, 0.5), 127u);
  EXPECT_EQ(histogram_percentile_upper_bound(h, 1.0), 127u);
}

TEST(HistogramPercentile, NearestRankWalksTheBuckets) {
  Histogram h;
  // 90 tiny observations and 10 large ones: p50 must land in the small
  // bucket, p95/p99 in the large one.
  for (int i = 0; i < 90; ++i) h.observe(3);     // slot upper bound 3
  for (int i = 0; i < 10; ++i) h.observe(1000);  // slot upper bound 1023
  EXPECT_EQ(histogram_percentile_upper_bound(h, 0.50), 3u);
  EXPECT_EQ(histogram_percentile_upper_bound(h, 0.90), 3u);  // rank 90
  EXPECT_EQ(histogram_percentile_upper_bound(h, 0.95), 1023u);
  EXPECT_EQ(histogram_percentile_upper_bound(h, 0.99), 1023u);
  EXPECT_EQ(histogram_percentile_upper_bound(h, 1.0), 1023u);
}

TEST(HistogramPercentile, ZeroBucketCounts) {
  Histogram h;
  h.observe(0);
  h.observe(0);
  h.observe(7);
  EXPECT_EQ(histogram_percentile_upper_bound(h, 0.5), 0u);
  EXPECT_EQ(histogram_percentile_upper_bound(h, 0.99), 7u);
}

// ---------------------------------------------------------------------
// Registered-name enumeration + docs catalog drift

TEST(MetricNames, EnumeratesDistinctRegisteredFamilies) {
  MetricsRegistry registry;
  registry.counter("b_total", {{"x", "1"}});
  registry.counter("b_total", {{"x", "2"}});  // same family, new series
  registry.gauge("a_gauge", {});
  registry.histogram("c_hist", {});
  const std::vector<std::string> names = registry.metric_names();
  EXPECT_EQ(names, (std::vector<std::string>{"a_gauge", "b_total", "c_hist"}));
}

// Every metric family a fully-exercised server registers must be listed
// in the docs catalog. Registering a new series without documenting it
// fails HERE, not in a reviewer's memory.
TEST(MetricNames, EveryRegisteredMetricIsInTheDocsCatalog) {
  serve::ServerOptions options;
  options.max_hot = 2;
  options.workers = 2;
  options.trace = true;
  serve::Server server(options);

  // Exercise enough of the surface to materialize the lazy series:
  // telemetry-enabled engine sessions (qta_* families), steps across
  // more sessions than hot slots (restore + phase + latency series),
  // an overload refusal, and an introspect.
  std::vector<serve::SessionId> ids;
  for (std::uint64_t i = 0; i < 4; ++i) {
    serve::Request req;
    req.type = serve::RequestType::kCreateSession;
    req.spec.width = 8;
    req.spec.height = 8;
    req.spec.actions = 4;
    req.spec.seed = 1 + i;
    req.spec.telemetry = true;
    const serve::Ticket t = server.submit(req);
    ids.push_back(server.take(t).session);
  }
  for (int round = 0; round < 2; ++round) {
    std::vector<serve::Ticket> tickets;
    for (const serve::SessionId id : ids) {
      serve::Request req;
      req.type = serve::RequestType::kStep;
      req.session = id;
      req.steps = 64;
      tickets.push_back(server.submit(req));
    }
    server.drain();
    for (const serve::Ticket t : tickets) server.take(t);
  }
  {
    serve::Request req;
    req.type = serve::RequestType::kIntrospect;
    req.probe = serve::IntrospectProbe::kMetrics;
    server.take(server.submit(req));
  }

  std::string catalog;
  for (const char* doc : {"/serving.md", "/observability.md"}) {
    std::ifstream in(std::string(QTA_DOCS_DIR) + doc);
    ASSERT_TRUE(in.good()) << "missing doc " << doc;
    std::ostringstream os;
    os << in.rdbuf();
    catalog += os.str();
  }
  const std::vector<std::string> names = server.metrics().metric_names();
  EXPECT_FALSE(names.empty());
  for (const std::string& name : names) {
    EXPECT_NE(catalog.find("`" + name + "`"), std::string::npos)
        << "metric family `" << name
        << "` is registered but missing from the docs metric catalog "
           "(docs/serving.md or docs/observability.md)";
  }
}

// ---------------------------------------------------------------------
// HTTP introspection endpoint (pure request -> response function)

std::string status_line(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

TEST(HttpEndpoint, HealthzMetricsAndUnknownRoutes) {
  serve::ServerOptions options;
  serve::Server server(options);

  const std::string healthz =
      serve::handle_http(server, "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status_line(healthz), "HTTP/1.0 200 OK");
  EXPECT_NE(healthz.find("ok\n"), std::string::npos);

  const std::string metrics =
      serve::handle_http(server, "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status_line(metrics), "HTTP/1.0 200 OK");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("qtserve_requests_total"), std::string::npos);

  // Query strings are ignored for routing.
  EXPECT_EQ(status_line(serve::handle_http(
                server, "GET /healthz?verbose=1 HTTP/1.1\r\n\r\n")),
            "HTTP/1.0 200 OK");

  EXPECT_EQ(status_line(serve::handle_http(server,
                                           "GET /nope HTTP/1.1\r\n\r\n")),
            "HTTP/1.0 404 Not Found");
}

TEST(HttpEndpoint, FlightRecorderRouteDumpsJson) {
  serve::ServerOptions options;
  options.flight_recorder_capacity = 8;
  serve::Server server(options);
  {
    serve::Request req;
    req.type = serve::RequestType::kCreateSession;
    req.spec.width = 4;
    req.spec.height = 4;
    req.spec.actions = 4;
    req.spec.seed = 3;
    server.take(server.submit(req));
  }
  const std::string response =
      serve::handle_http(server, "GET /flightrecorder HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status_line(response), "HTTP/1.0 200 OK");
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  JsonValue root;
  ASSERT_TRUE(JsonParser(response.substr(body_at + 4)).parse(&root));
  ASSERT_EQ(root.at("events").type, JsonValue::Type::kArray);
  EXPECT_GE(root.at("events").array.size(), 1u);
  EXPECT_EQ(root.at("events").array[0].at("kind").string, "session_created");
}

TEST(HttpEndpoint, FlightRecorderRouteIs404WhenDisabled) {
  serve::ServerOptions options;
  options.flight_recorder_capacity = 0;
  serve::Server server(options);
  EXPECT_EQ(status_line(serve::handle_http(
                server, "GET /flightrecorder HTTP/1.1\r\n\r\n")),
            "HTTP/1.0 404 Not Found");
}

TEST(HttpEndpoint, RejectsMalformedAndNonGetRequests) {
  serve::ServerOptions options;
  serve::Server server(options);
  EXPECT_EQ(status_line(serve::handle_http(server, "garbage")),
            "HTTP/1.0 400 Bad Request");
  EXPECT_EQ(status_line(serve::handle_http(server, "\r\n\r\n")),
            "HTTP/1.0 400 Bad Request");
  EXPECT_EQ(status_line(serve::handle_http(
                server, "POST /metrics HTTP/1.1\r\n\r\n")),
            "HTTP/1.0 405 Method Not Allowed");
  // HEAD gets status + headers and no body.
  const std::string head =
      serve::handle_http(server, "HEAD /healthz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status_line(head), "HTTP/1.0 200 OK");
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");
  EXPECT_EQ(head.find("ok\n"), std::string::npos);
}

}  // namespace
}  // namespace qta::telemetry

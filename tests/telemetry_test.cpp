// Telemetry subsystem tests (docs/observability.md):
//   * histogram log2 bucketing is exact at the edges (0, powers of two,
//     UINT64_MAX) and the registry exposes both exposition formats;
//   * attaching a sink changes NOTHING observable — both backends retire
//     bit-identical traces/tables/stats with telemetry on and off;
//   * cycle attribution is complete: the four class counters sum to the
//     engine's cycle count on both backends and both hazard modes;
//   * the Chrome trace-event JSON parses (minimal in-test parser) and
//     every track's spans have monotone, non-overlapping timestamps;
//   * the thread-pool observer draws one span per executed task.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/thread_pool.h"
#include "env/grid_world.h"
#include "runtime/engine.h"
#include "telemetry/metrics.h"
#include "telemetry/pipeline_telemetry.h"
#include "telemetry/pool_observer.h"
#include "telemetry/trace.h"
#include "test_json.h"

namespace qta::telemetry {
namespace {

// The in-test JSON parser lives in tests/test_json.h so the serve trace
// and observability tests can validate writer output with the same code.
using testjson::JsonParser;
using testjson::JsonValue;

// ---------------------------------------------------------------------
// Fixtures

env::GridWorldConfig grid8() {
  env::GridWorldConfig c;
  c.width = 8;
  c.height = 8;
  c.num_actions = 4;
  return c;
}

qtaccel::PipelineConfig base_config() {
  qtaccel::PipelineConfig c;
  c.seed = 11;
  c.max_episode_length = 256;
  return c;
}

// The label set PipelineTelemetry derives from a config (class appended
// last, exactly as the sink builds it).
Labels run_labels(const qtaccel::PipelineConfig& config, unsigned pipe,
                  const std::string& cls) {
  const RunLabels rl = qtaccel::make_run_labels(config, pipe);
  Labels labels{{"algo", rl.algorithm},
                {"qmax", rl.qmax},
                {"hazard", rl.hazard},
                {"backend", rl.backend},
                {"pipe", std::to_string(rl.pipe)}};
  if (!cls.empty()) labels.emplace_back("class", cls);
  return labels;
}

std::uint64_t class_cycle_sum(MetricsRegistry& registry,
                              const qtaccel::PipelineConfig& config) {
  std::uint64_t sum = 0;
  for (const char* cls :
       {"issue", "forward_serviced", "stall", "drain"}) {
    sum += registry.counter("qta_cycles_total", run_labels(config, 0, cls))
               .value();
  }
  return sum;
}

// ---------------------------------------------------------------------
// Histogram bucketing

TEST(TelemetryHistogram, SlotOfIsExactAtBucketEdges) {
  EXPECT_EQ(Histogram::slot_of(0), 0u);
  EXPECT_EQ(Histogram::slot_of(1), 1u);
  EXPECT_EQ(Histogram::slot_of(2), 2u);
  EXPECT_EQ(Histogram::slot_of(3), 2u);
  EXPECT_EQ(Histogram::slot_of(4), 3u);
  for (unsigned k = 1; k < 64; ++k) {
    const std::uint64_t lo = std::uint64_t{1} << (k - 1);
    const std::uint64_t hi = (std::uint64_t{1} << k) - 1;
    EXPECT_EQ(Histogram::slot_of(lo), k) << "low edge of slot " << k;
    EXPECT_EQ(Histogram::slot_of(hi), k) << "high edge of slot " << k;
  }
  EXPECT_EQ(Histogram::slot_of(std::numeric_limits<std::uint64_t>::max()),
            64u);
}

TEST(TelemetryHistogram, SlotUpperBoundsTileTheRange) {
  EXPECT_EQ(Histogram::slot_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::slot_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::slot_upper_bound(2), 3u);
  EXPECT_EQ(Histogram::slot_upper_bound(64),
            std::numeric_limits<std::uint64_t>::max());
  for (unsigned k = 0; k < Histogram::kSlots; ++k) {
    const std::uint64_t ub = Histogram::slot_upper_bound(k);
    EXPECT_EQ(Histogram::slot_of(ub), k);
    if (ub != std::numeric_limits<std::uint64_t>::max()) {
      EXPECT_EQ(Histogram::slot_of(ub + 1), k + 1);
    }
  }
}

TEST(TelemetryHistogram, ObserveLandsZeroMaxAndSaturatingValues) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.slot_count(0), 1u);
  EXPECT_EQ(h.slot_count(1), 1u);
  EXPECT_EQ(h.slot_count(64), 1u);
  // Top slot IS a real bucket — nothing overflows past it.
  std::uint64_t total = 0;
  for (unsigned k = 0; k < Histogram::kSlots; ++k) total += h.slot_count(k);
  EXPECT_EQ(total, h.count());
}

TEST(TelemetryRegistry, FindOrCreateReturnsStableInstruments) {
  MetricsRegistry registry;
  Counter& a = registry.counter("qta_test_total", {{"k", "v"}});
  Counter& b = registry.counter("qta_test_total", {{"k", "v"}});
  Counter& c = registry.counter("qta_test_total", {{"k", "w"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryRegistry, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("qta_h", {}, "test histogram");
  h.observe(0);
  h.observe(1);
  h.observe(5);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE qta_h histogram"), std::string::npos);
  EXPECT_NE(text.find("qta_h_bucket{le=\"0\"} 1"), std::string::npos);
  EXPECT_NE(text.find("qta_h_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("qta_h_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("qta_h_count 3"), std::string::npos);
  EXPECT_NE(text.find("qta_h_sum 6"), std::string::npos);
}

TEST(TelemetryRegistry, JsonSnapshotParses) {
  MetricsRegistry registry;
  registry.counter("qta_c_total", {{"algo", "sarsa"}}).inc(7);
  registry.gauge("qta_g").set(2.5);
  registry.histogram("qta_h").observe(4);
  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.json_text()).parse(&root));
  ASSERT_EQ(root.at("counters").array.size(), 1u);
  EXPECT_EQ(root.at("counters").array[0].at("value").number, 7.0);
  EXPECT_EQ(root.at("counters").array[0].at("labels").at("algo").string,
            "sarsa");
  ASSERT_EQ(root.at("gauges").array.size(), 1u);
  EXPECT_EQ(root.at("gauges").array[0].at("value").number, 2.5);
  ASSERT_EQ(root.at("histograms").array.size(), 1u);
  EXPECT_EQ(root.at("histograms").array[0].at("count").number, 1.0);
}

// ---------------------------------------------------------------------
// Telemetry-off bit-identity: attaching a full sink stack must not
// change anything either backend retires.

void expect_identical_runs(qtaccel::PipelineConfig config) {
  env::GridWorld world(grid8());
  for (const qtaccel::Backend backend :
       {qtaccel::Backend::kCycleAccurate, qtaccel::Backend::kFast}) {
    config.backend = backend;
    runtime::Engine plain(world, config);
    runtime::Engine observed(world, config);
    std::vector<qtaccel::SampleTrace> plain_trace, observed_trace;
    plain.set_trace(&plain_trace);
    observed.set_trace(&observed_trace);

    MetricsRegistry registry;
    TraceSession trace;
    PipelineTelemetry sink(qtaccel::make_run_labels(config), &registry,
                           &trace);
    observed.set_telemetry(&sink);

    plain.run_iterations(1500);
    observed.run_iterations(1500);
    plain.run_samples(2500);
    observed.run_samples(2500);

    ASSERT_EQ(plain_trace.size(), observed_trace.size())
        << qtaccel::backend_name(backend);
    for (std::size_t i = 0; i < plain_trace.size(); ++i) {
      ASSERT_TRUE(plain_trace[i] == observed_trace[i])
          << qtaccel::backend_name(backend) << " diverged at " << i;
    }
    for (StateId s = 0; s < world.num_states(); ++s) {
      for (ActionId a = 0; a < world.num_actions(); ++a) {
        ASSERT_EQ(plain.q_raw(s, a), observed.q_raw(s, a));
      }
      ASSERT_EQ(plain.qmax_entry(s).value, observed.qmax_entry(s).value);
    }
    const auto& ps = plain.stats();
    const auto& os = observed.stats();
    EXPECT_EQ(ps.cycles, os.cycles);
    EXPECT_EQ(ps.samples, os.samples);
    EXPECT_EQ(ps.episodes, os.episodes);
    EXPECT_EQ(ps.fwd_q_sa, os.fwd_q_sa);
    EXPECT_EQ(ps.fwd_q_next, os.fwd_q_next);
    EXPECT_EQ(ps.fwd_qmax, os.fwd_qmax);
    EXPECT_EQ(plain.dsp_saturations(), observed.dsp_saturations());
  }
}

TEST(TelemetryBitIdentity, QLearningForward) {
  expect_identical_runs(base_config());
}

TEST(TelemetryBitIdentity, SarsaForward) {
  qtaccel::PipelineConfig c = base_config();
  c.algorithm = qtaccel::Algorithm::kSarsa;
  expect_identical_runs(c);
}

TEST(TelemetryBitIdentity, QLearningStall) {
  qtaccel::PipelineConfig c = base_config();
  c.hazard = qtaccel::HazardMode::kStall;
  expect_identical_runs(c);
}

TEST(TelemetryBitIdentity, DoubleQExactScan) {
  qtaccel::PipelineConfig c = base_config();
  c.algorithm = qtaccel::Algorithm::kDoubleQ;
  c.qmax = qtaccel::QmaxMode::kExactScan;
  expect_identical_runs(c);
}

// ---------------------------------------------------------------------
// Cycle attribution completeness: issue + forward_serviced + stall +
// drain == the engine's cycle count, on both backends and hazard modes.

void expect_complete_attribution(qtaccel::PipelineConfig config) {
  env::GridWorld world(grid8());
  for (const qtaccel::Backend backend :
       {qtaccel::Backend::kCycleAccurate, qtaccel::Backend::kFast}) {
    config.backend = backend;
    runtime::Engine engine(world, config);
    MetricsRegistry registry;
    PipelineTelemetry sink(qtaccel::make_run_labels(config), &registry,
                           nullptr);
    engine.set_telemetry(&sink);
    engine.run_iterations(777);
    engine.run_samples(2000);
    sink.flush();
    EXPECT_EQ(class_cycle_sum(registry, config), engine.stats().cycles)
        << qtaccel::backend_name(backend) << "/"
        << qtaccel::hazard_name(config.hazard);
    EXPECT_EQ(
        registry.counter("qta_samples_total", run_labels(config, 0, ""))
            .value(),
        engine.stats().samples);
    EXPECT_EQ(
        registry.counter("qta_episodes_total", run_labels(config, 0, ""))
            .value(),
        engine.stats().episodes);
  }
}

TEST(TelemetryAttribution, ForwardModeCyclesSumToStats) {
  expect_complete_attribution(base_config());
}

TEST(TelemetryAttribution, StallModeCyclesSumToStats) {
  qtaccel::PipelineConfig c = base_config();
  c.hazard = qtaccel::HazardMode::kStall;
  expect_complete_attribution(c);
}

TEST(TelemetryAttribution, ForwardingHitCountersMatchStats) {
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig config = base_config();
  runtime::Engine engine(world, config);
  MetricsRegistry registry;
  PipelineTelemetry sink(qtaccel::make_run_labels(config), &registry,
                         nullptr);
  engine.set_telemetry(&sink);
  engine.run_samples(4000);
  sink.flush();
  Labels sa = run_labels(config, 0, "");
  sa.emplace_back("path", "q_sa");
  Labels nx = run_labels(config, 0, "");
  nx.emplace_back("path", "q_next");
  Labels qm = run_labels(config, 0, "");
  qm.emplace_back("path", "qmax");
  EXPECT_EQ(registry.counter("qta_fwd_hits_total", sa).value(),
            engine.stats().fwd_q_sa);
  EXPECT_EQ(registry.counter("qta_fwd_hits_total", nx).value(),
            engine.stats().fwd_q_next);
  EXPECT_EQ(registry.counter("qta_fwd_hits_total", qm).value(),
            engine.stats().fwd_qmax);
  // Every serviced Q(S,A)/Q(S',A') read recorded a queue distance 1..3.
  EXPECT_EQ(registry.histogram("qta_fwd_distance", sa).count(),
            engine.stats().fwd_q_sa);
  EXPECT_EQ(registry.histogram("qta_fwd_distance", nx).count(),
            engine.stats().fwd_q_next);
}

// ---------------------------------------------------------------------
// Trace JSON: parses, and per-(pid, tid) spans are monotone.

TEST(TelemetryTrace, JsonParsesWithMonotonePerTrackSpans) {
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig config = base_config();
  MetricsRegistry registry;
  TraceSession trace;
  {
    runtime::Engine engine(world, config);
    PipelineTelemetry sink(qtaccel::make_run_labels(config), &registry,
                           &trace);
    engine.set_telemetry(&sink);
    engine.run_samples(3000);
  }
  JsonValue root;
  ASSERT_TRUE(JsonParser(trace.json_text()).parse(&root));
  ASSERT_TRUE(root.has("traceEvents"));
  const auto& events = root.at("traceEvents").array;
  ASSERT_FALSE(events.empty());

  std::map<std::pair<double, double>, double> track_end;  // (pid,tid) -> end
  std::size_t spans = 0;
  for (const auto& e : events) {
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("name"));
    if (e.at("ph").string != "X") continue;
    ++spans;
    const std::pair<double, double> track{e.at("pid").number,
                                          e.at("tid").number};
    const double ts = e.at("ts").number;
    const double dur = e.at("dur").number;
    EXPECT_GE(dur, 1.0);
    if (track_end.count(track)) {
      EXPECT_GE(ts, track_end.at(track))
          << "overlapping spans on pid/tid " << track.first << "/"
          << track.second;
    }
    track_end[track] = ts + dur;
  }
  EXPECT_GT(spans, 0u);
  // Cycle backend registers the attribution track and all four stages.
  std::size_t thread_names = 0;
  for (const auto& e : events) {
    if (e.at("ph").string == "M" && e.at("name").string == "thread_name") {
      ++thread_names;
    }
  }
  EXPECT_EQ(thread_names, 5u);
}

TEST(TelemetryTrace, FastBackendEmitsEpisodeSpans) {
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig config = base_config();
  config.backend = qtaccel::Backend::kFast;
  MetricsRegistry registry;
  TraceSession trace;
  std::uint64_t episodes = 0;
  {
    runtime::Engine engine(world, config);
    PipelineTelemetry sink(qtaccel::make_run_labels(config), &registry,
                           &trace);
    engine.set_telemetry(&sink);
    engine.run_samples(3000);
    episodes = engine.stats().episodes;
  }
  JsonValue root;
  ASSERT_TRUE(JsonParser(trace.json_text()).parse(&root));
  std::size_t episode_spans = 0;
  for (const auto& e : root.at("traceEvents").array) {
    if (e.at("ph").string == "X" && e.at("name").string == "episode") {
      ++episode_spans;
    }
  }
  EXPECT_GE(episode_spans, episodes);
  EXPECT_LE(episode_spans, episodes + 1);  // + one flushed trailing span
}

TEST(TelemetryTrace, PoolObserverDrawsOneSpanPerTask) {
  TraceSession trace;
  MetricsRegistry registry;
  ThreadPool pool(2);
  PoolTraceObserver observer(trace, /*pid=*/9, pool.size(), "test pool",
                             &registry);
  pool.set_observer(&observer);
  std::vector<std::atomic<int>> hits(16);
  pool.parallel_for(16, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  pool.set_observer(nullptr);

  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  JsonValue root;
  ASSERT_TRUE(JsonParser(trace.json_text()).parse(&root));
  std::size_t spans = 0;
  for (const auto& e : root.at("traceEvents").array) {
    if (e.at("ph").string == "X") {
      ++spans;
      EXPECT_EQ(e.at("pid").number, 9.0);
    }
  }
  EXPECT_EQ(spans, 16u);
  std::uint64_t tasks = 0;
  // <= : the submitting thread executes items too, as worker pool.size()
  // (the PoolTraceObserver "submitter" track).
  for (unsigned w = 0; w <= pool.size(); ++w) {
    tasks += registry
                 .counter("qta_pool_tasks_total",
                          {{"worker", std::to_string(w)}})
                 .value();
  }
  EXPECT_EQ(tasks, 16u);
}

}  // namespace
}  // namespace qta::telemetry

// Sharding-tier contract tests (docs/sharding.md):
//   - HashRing: deterministic placement independent of insertion order,
//     distribution within bounds, minimal remap on membership change,
//     pins override raw placement.
//   - SessionManager migration surface: export/adopt round trips are
//     bit-exact, a cold session's v3 delta chain ships verbatim without
//     building an engine, and --migrate-format=v2 materializes
//     interchange text instead.
//   - Worker-side MigrateOut/MigrateIn through a full serve::Server.
//   - Router end-to-end over LocalCluster: proxied lifecycle is
//     bit-identical to a standalone engine, live migration is invisible
//     mid-run, migrate-while-queued holds and replays in order, a
//     double migrate is refused, a dead migration target rolls back,
//     shard failure replays parked state bit-exactly, and drain empties
//     a shard then shuts it down.
//   - plan_rebalance / scrape_gauge planning helpers and the HTTP
//     plane's routes.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "env/grid_world.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "shard/hash_ring.h"
#include "shard/http_plane.h"
#include "shard/local_shard.h"
#include "shard/router.h"
#include "shard/shard_manager.h"
#include "telemetry/metrics.h"

namespace qta::shard {
namespace {

serve::SessionSpec small_spec(std::uint64_t seed = 7) {
  serve::SessionSpec spec;
  spec.width = 8;
  spec.height = 8;
  spec.actions = 4;
  spec.seed = seed;
  spec.max_episode_length = 64;
  return spec;
}

/// The standalone replay twin of a proxied session: the same spec run
/// with the same Step partitioning, snapshotted as v2 text.
std::string replay_snapshot(const serve::SessionSpec& spec,
                            const std::vector<std::uint64_t>& step_calls) {
  env::GridWorldConfig gc;
  gc.width = spec.width;
  gc.height = spec.height;
  gc.num_actions = spec.actions;
  env::GridWorld world(gc);
  runtime::Engine engine(world, serve::make_config(spec));
  for (const std::uint64_t steps : step_calls) {
    engine.run_samples(engine.stats().samples + steps);
  }
  std::ostringstream os;
  runtime::save_snapshot(engine, os);
  return os.str();
}

// --- HashRing -------------------------------------------------------

TEST(HashRing, PlacementIsDeterministicAndOrderIndependent) {
  HashRing forward(64);
  for (ShardId s = 0; s < 5; ++s) forward.add(s);
  HashRing backward(64);
  for (ShardId s = 5; s-- > 0;) backward.add(s);
  for (std::uint64_t key = 1; key <= 2000; ++key) {
    const auto a = forward.place(key);
    const auto b = backward.place(key);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, *b) << "key " << key;
  }
  EXPECT_EQ(forward.shards(), (std::vector<ShardId>{0, 1, 2, 3, 4}));
}

TEST(HashRing, SpreadsSequentialKeysWithinBounds) {
  HashRing ring(64);
  for (ShardId s = 0; s < 4; ++s) ring.add(s);
  std::map<ShardId, unsigned> counts;
  const unsigned kKeys = 40000;
  for (std::uint64_t key = 1; key <= kKeys; ++key) {
    counts[*ring.place(key)]++;
  }
  // Fair share is 25%; 64 vnodes should hold every shard well within
  // [half, double] of it. (Deterministic hash, so this never flakes.)
  for (ShardId s = 0; s < 4; ++s) {
    EXPECT_GT(counts[s], kKeys / 8) << "shard " << s;
    EXPECT_LT(counts[s], kKeys / 2) << "shard " << s;
  }
  // Regression: vnode points are double-mixed so they never coincide
  // with mixed small keys. (With one round, shard 0's points equal
  // mix(replica) and every session id < vnodes lands on shard 0.)
  std::map<ShardId, unsigned> small;
  for (std::uint64_t key = 1; key <= 32; ++key) small[*ring.place(key)]++;
  EXPECT_GE(small.size(), 3u);
}

TEST(HashRing, MembershipChangeRemapsMinimally) {
  HashRing ring(64);
  for (ShardId s = 0; s < 3; ++s) ring.add(s);
  const unsigned kKeys = 10000;
  std::vector<ShardId> before(kKeys);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    before[key] = *ring.place(key);
  }
  ring.add(3);
  unsigned moved = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const ShardId now = *ring.place(key);
    if (now != before[key]) {
      ++moved;
      // Every remapped key must land on the newcomer; survivors never
      // reshuffle among themselves.
      EXPECT_EQ(now, 3u) << "key " << key;
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kKeys / 2);  // ~1/4 expected; never a wholesale move
  // Removing it again restores the original placement exactly.
  ring.remove(3);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    EXPECT_EQ(*ring.place(key), before[key]);
  }
}

TEST(HashRing, PinsOverridePlacementAndSurviveRemoval) {
  HashRing ring(64);
  ring.add(0);
  ring.add(1);
  std::uint64_t key = 1;
  while (*ring.place(key) != 0) ++key;  // a key that naturally lands on 0
  ring.pin(key, 1);
  EXPECT_EQ(*ring.lookup(key), 1u);
  EXPECT_EQ(*ring.place(key), 0u);  // raw placement ignores the pin
  // remove() leaves pins alone: the router owns session fate.
  ring.remove(1);
  EXPECT_EQ(*ring.lookup(key), 1u);
  EXPECT_EQ(ring.pinned(key), std::optional<ShardId>(1));
  ring.unpin(key);
  EXPECT_EQ(*ring.lookup(key), 0u);
  EXPECT_EQ(ring.pin_count(), 0u);
}

TEST(HashRing, EmptyRingPlacesNothing) {
  HashRing ring;
  EXPECT_FALSE(ring.place(1).has_value());
  ring.pin(5, 2);  // a pin still answers even with no members
  EXPECT_EQ(*ring.lookup(5), 2u);
  EXPECT_FALSE(ring.lookup(6).has_value());
}

// --- SessionManager export/adopt ------------------------------------

TEST(ShardMigration, HotExportAdoptsBitExact) {
  serve::SessionManager source(2, nullptr);
  const serve::SessionId id = source.create(small_spec(11));
  runtime::Engine* engine = source.acquire(id);
  ASSERT_NE(engine, nullptr);
  engine->run_samples(500);
  // run_samples overshoots to a batch boundary; the exact count is
  // whatever the engine retired.
  const std::uint64_t samples = engine->stats().samples;
  const std::string text = source.snapshot_text(id);

  serve::MigrationImage image;
  ASSERT_TRUE(source.export_session(id, &image));
  EXPECT_FALSE(source.exists(id));  // the state moved, it did not fork
  EXPECT_EQ(source.exports(), 1u);
  EXPECT_FALSE(image.base.empty());

  serve::SessionManager target(2, nullptr);
  ASSERT_EQ(target.adopt_session(id, image), "");
  EXPECT_EQ(target.adopts(), 1u);
  EXPECT_EQ(target.snapshot_text(id), text);
  // And it keeps running: the adopted engine is a live session.
  runtime::Engine* adopted = target.acquire(id);
  ASSERT_NE(adopted, nullptr);
  EXPECT_EQ(adopted->stats().samples, samples);
}

TEST(ShardMigration, ColdDeltaChainShipsVerbatimWithoutEngineBuild) {
  serve::SessionManagerOptions opts;
  opts.park_format = serve::ParkFormat::kV3Binary;
  opts.max_delta_chain = 4;
  serve::SessionManager source(1, nullptr, nullptr, opts);
  const serve::SessionId a = source.create(small_spec(21));
  const serve::SessionId b = source.create(small_spec(22));
  // Build a base + delta chain on `a`: run, evict (full v3 park), run
  // again, evict (delta).
  source.acquire(a)->run_samples(300);
  source.acquire(b);  // max_hot=1: parks `a` as a full v3 image
  runtime::Engine* hot = source.acquire(a);
  hot->run_samples(600);
  const std::uint64_t samples = hot->stats().samples;
  source.acquire(b);  // parks `a` again, this time as a delta
  const std::string text = source.snapshot_text(a);
  const std::uint64_t restores_before = source.restores();

  serve::MigrationImage image;
  ASSERT_TRUE(source.export_session(a, &image));
  // The satellite invariant: a cold session's chain moves AS-IS — v3
  // base, v3 delta, no engine build, nothing inflated to v2 text.
  EXPECT_TRUE(image.base_is_v3);
  EXPECT_EQ(image.deltas.size(), 1u);
  EXPECT_EQ(source.restores(), restores_before);

  serve::SessionManager target(2, nullptr);
  ASSERT_EQ(target.adopt_session(a, image), "");
  EXPECT_FALSE(target.is_hot(a));  // adoption is bookkeeping, not build
  EXPECT_EQ(target.snapshot_text(a), text);
  runtime::Engine* adopted = target.acquire(a);
  ASSERT_NE(adopted, nullptr);
  EXPECT_EQ(adopted->stats().samples, samples);
}

TEST(ShardMigration, MigrateFormatV2MaterializesInterchangeText) {
  serve::SessionManagerOptions opts;
  opts.park_format = serve::ParkFormat::kV3Binary;
  opts.migrate_format = serve::ParkFormat::kV2Text;
  serve::SessionManager source(1, nullptr, nullptr, opts);
  const serve::SessionId a = source.create(small_spec(31));
  const serve::SessionId b = source.create(small_spec(32));
  source.acquire(a)->run_samples(250);
  source.acquire(b);  // parks `a` as v3 binary
  const std::string text = source.snapshot_text(a);

  serve::MigrationImage image;
  ASSERT_TRUE(source.export_session(a, &image));
  // The escape hatch: the v3 chain was materialized to one v2 text
  // image (for fleets mid-upgrade whose target workers predate v3).
  EXPECT_FALSE(image.base_is_v3);
  EXPECT_TRUE(image.deltas.empty());
  EXPECT_EQ(image.base, text);

  serve::SessionManager target(2, nullptr);
  ASSERT_EQ(target.adopt_session(a, image), "");
  EXPECT_EQ(target.snapshot_text(a), text);
}

TEST(ShardMigration, FreshSessionExportsEmptyBaseAndAdoptsAsCreate) {
  serve::SessionManager source(2, nullptr);
  const serve::SessionId id = source.create(small_spec(41));
  serve::MigrationImage image;
  ASSERT_TRUE(source.export_session(id, &image));
  EXPECT_TRUE(image.base.empty());
  EXPECT_TRUE(image.deltas.empty());

  serve::SessionManager target(2, nullptr);
  ASSERT_EQ(target.adopt_session(id, image), "");
  // Equivalent to CreateSession(spec): a fresh engine under the id.
  runtime::Engine* engine = target.acquire(id);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->stats().samples, 0u);
  // The id allocator stays ahead of adopted ids.
  EXPECT_NE(target.create(small_spec(42)), id);
}

TEST(ShardMigration, AdoptRejectsGarbageWithoutAborting) {
  serve::SessionManager manager(2, nullptr);
  serve::MigrationImage image;
  image.spec = small_spec(51);

  EXPECT_NE(manager.adopt_session(0, image), "");  // id 0 is reserved

  const serve::SessionId id = manager.create(small_spec(52));
  EXPECT_NE(manager.adopt_session(id, image), "");  // duplicate id

  serve::MigrationImage bad_spec = image;
  bad_spec.spec.actions = 0;
  EXPECT_NE(manager.adopt_session(id + 1, bad_spec), "");

  serve::MigrationImage foreign = image;
  foreign.base = "these bytes are not snapshot material";
  EXPECT_NE(manager.adopt_session(id + 1, foreign), "");

  serve::MigrationImage orphan_deltas = image;
  orphan_deltas.deltas = {"QTACCEL-SNAPSHOT v3-delta\n"};
  EXPECT_NE(manager.adopt_session(id + 1, orphan_deltas), "");

  EXPECT_EQ(manager.adopts(), 0u);
  EXPECT_FALSE(manager.exists(id + 1));
}

// --- worker-side MigrateOut / MigrateIn -----------------------------

serve::Response run_one(serve::Server& server, const serve::Request& req) {
  const serve::Ticket t = server.submit(req);
  server.drain();
  EXPECT_TRUE(server.done(t));
  return server.take(t);
}

TEST(ShardMigration, ServerMigrateRoundTripIsBitExact) {
  serve::ServerOptions options;
  options.workers = 2;
  serve::Server source(options);
  serve::Server target(options);

  serve::Request create;
  create.type = serve::RequestType::kCreateSession;
  create.spec = small_spec(61);
  const serve::Response created = run_one(source, create);
  ASSERT_EQ(created.status, serve::Status::kOk);
  const serve::SessionId id = created.session;

  serve::Request step;
  step.type = serve::RequestType::kStep;
  step.session = id;
  step.steps = 400;
  ASSERT_EQ(run_one(source, step).status, serve::Status::kOk);

  serve::Request snap;
  snap.type = serve::RequestType::kSnapshot;
  snap.session = id;
  const std::string text = run_one(source, snap).snapshot;

  // Export: the reply's snapshot field carries the encoded image, and
  // the source forgets the session.
  serve::Request out;
  out.type = serve::RequestType::kMigrateOut;
  out.session = id;
  const serve::Response exported = run_one(source, out);
  ASSERT_EQ(exported.status, serve::Status::kOk);
  EXPECT_FALSE(source.sessions().exists(id));
  ASSERT_TRUE(serve::decode_migration_image(exported.snapshot).has_value());

  serve::Request in;
  in.type = serve::RequestType::kMigrateIn;
  in.session = id;
  in.payload = exported.snapshot;
  ASSERT_EQ(run_one(target, in).status, serve::Status::kOk);
  EXPECT_EQ(run_one(target, snap).snapshot, text);

  // A second adopt under the same id is refused, as is exporting a
  // session that does not exist.
  EXPECT_EQ(run_one(target, in).status, serve::Status::kError);
  EXPECT_EQ(run_one(source, out).status, serve::Status::kError);

  // Workers answer the Shards probe with an error: topology lives in
  // the router.
  serve::Request probe;
  probe.type = serve::RequestType::kIntrospect;
  probe.probe = serve::IntrospectProbe::kShards;
  EXPECT_EQ(run_one(target, probe).status, serve::Status::kError);
}

// --- Router over LocalCluster ---------------------------------------

/// Decoded-response convenience around LocalCluster's raw payloads.
struct ClusterClient {
  LocalCluster* cluster;
  ClientId id;
  std::deque<serve::Response> inbox;

  void pump_inbox() {
    for (std::string& payload : cluster->take_responses(id)) {
      auto resp = serve::decode_response(payload);
      ASSERT_TRUE(resp.has_value());
      inbox.push_back(std::move(*resp));
    }
  }
  serve::Response call(const serve::Request& req) {
    cluster->client_request(id, serve::encode_request(req));
    pump_inbox();
    EXPECT_FALSE(inbox.empty());
    if (inbox.empty()) return serve::Response{};
    serve::Response resp = std::move(inbox.front());
    inbox.pop_front();
    return resp;
  }
  serve::SessionId create(const serve::SessionSpec& spec) {
    serve::Request req;
    req.type = serve::RequestType::kCreateSession;
    req.spec = spec;
    const serve::Response resp = call(req);
    EXPECT_EQ(resp.status, serve::Status::kOk) << resp.error;
    return resp.session;
  }
  serve::Response step(serve::SessionId session, std::uint64_t steps) {
    serve::Request req;
    req.type = serve::RequestType::kStep;
    req.session = session;
    req.steps = steps;
    return call(req);
  }
  std::string snapshot(serve::SessionId session) {
    serve::Request req;
    req.type = serve::RequestType::kSnapshot;
    req.session = session;
    const serve::Response resp = call(req);
    EXPECT_EQ(resp.status, serve::Status::kOk) << resp.error;
    return resp.snapshot;
  }
};

TEST(RouterCluster, ProxiedLifecycleIsBitExact) {
  RouterOptions options;
  options.checkpoint_every = 4;
  LocalCluster cluster(2, options);
  ClusterClient client{&cluster, 1, {}};

  const unsigned kSessions = 12;
  std::vector<serve::SessionId> ids;
  std::vector<serve::SessionSpec> specs;
  for (unsigned i = 0; i < kSessions; ++i) {
    specs.push_back(small_spec(100 + i));
    ids.push_back(client.create(specs.back()));
  }
  // Ids are router-allocated and unique; both shards own some.
  EXPECT_GT(cluster.router().sessions_on(0), 0u);
  EXPECT_GT(cluster.router().sessions_on(1), 0u);
  EXPECT_EQ(cluster.router().sessions_on(0) + cluster.router().sessions_on(1),
            kSessions);

  for (unsigned round = 0; round < 3; ++round) {
    for (unsigned i = 0; i < kSessions; ++i) {
      const serve::Response resp = client.step(ids[i], 64);
      ASSERT_EQ(resp.status, serve::Status::kOk) << resp.error;
      // run_samples overshoots to a batch boundary, so the retired
      // count is a lower bound — bit-exactness is proven against the
      // replay twin below, which partitions its Steps identically.
      EXPECT_GE(resp.samples, 64u * (round + 1));
    }
  }
  // Query decodes through the proxy too.
  serve::Request query;
  query.type = serve::RequestType::kQuery;
  query.session = ids[0];
  query.state = 0;
  const serve::Response q = client.call(query);
  ASSERT_EQ(q.status, serve::Status::kOk);
  EXPECT_EQ(q.q_row.size(), specs[0].actions);

  for (unsigned i = 0; i < kSessions; ++i) {
    EXPECT_EQ(client.snapshot(ids[i]),
              replay_snapshot(specs[i], {64, 64, 64}))
        << "session " << ids[i];
  }

  // Close removes the session from the fleet.
  serve::Request close;
  close.type = serve::RequestType::kClose;
  close.session = ids[0];
  EXPECT_EQ(client.call(close).status, serve::Status::kOk);
  EXPECT_EQ(cluster.router().session_count(), kSessions - 1);
  EXPECT_EQ(client.step(ids[0], 1).status, serve::Status::kError);
}

TEST(RouterCluster, LiveMigrationIsInvisibleMidRun) {
  RouterOptions options;
  options.checkpoint_every = 8;
  LocalCluster cluster(2, options);
  ClusterClient client{&cluster, 1, {}};

  const serve::SessionSpec spec = small_spec(71);
  const serve::SessionId id = client.create(spec);
  const ShardId home = *cluster.router().ring().lookup(id);
  const ShardId away = home == 0 ? 1 : 0;

  ASSERT_EQ(client.step(id, 64).status, serve::Status::kOk);
  ASSERT_TRUE(cluster.router().migrate(id, away));
  cluster.settle();
  EXPECT_EQ(cluster.router().migrations(), 1u);
  EXPECT_EQ(*cluster.router().ring().lookup(id), away);
  EXPECT_EQ(cluster.router().sessions_on(home), 0u);

  // Work continues on the new owner; the final state is byte-identical
  // to a never-migrated engine.
  ASSERT_EQ(client.step(id, 64).status, serve::Status::kOk);
  EXPECT_EQ(client.snapshot(id), replay_snapshot(spec, {64, 64}));

  // A hop back is equally invisible.
  ASSERT_TRUE(cluster.router().migrate(id, home));
  cluster.settle();
  ASSERT_EQ(client.step(id, 32).status, serve::Status::kOk);
  EXPECT_EQ(client.snapshot(id), replay_snapshot(spec, {64, 64, 32}));
  EXPECT_EQ(cluster.router().migrations(), 2u);
}

TEST(RouterCluster, AutoMigrateForcesMovesAndStaysBitExact) {
  RouterOptions options;
  options.checkpoint_every = 4;
  options.migrate_every = 2;  // hop after every other Step
  LocalCluster cluster(2, options);
  ClusterClient client{&cluster, 1, {}};

  const serve::SessionSpec spec = small_spec(81);
  const serve::SessionId id = client.create(spec);
  std::vector<std::uint64_t> calls;
  for (unsigned i = 0; i < 8; ++i) {
    ASSERT_EQ(client.step(id, 32).status, serve::Status::kOk);
    calls.push_back(32);
  }
  EXPECT_GE(cluster.router().migrations(), 3u);
  EXPECT_EQ(client.snapshot(id), replay_snapshot(spec, calls));
}

// A hand-cranked two-shard fleet: unlike LocalCluster::settle() (which
// runs every exchange to quiescence), each pump is explicit, so a test
// can freeze the fleet mid-migration and kill a shard at the worst
// possible moment.
struct ManualCluster : RouterHost {
  std::map<ShardId, std::unique_ptr<LocalShard>> shards;
  std::unique_ptr<Router> router;
  std::map<ClientId, std::vector<serve::Response>> responses;

  explicit ManualCluster(unsigned count, const RouterOptions& options = {}) {
    router = std::make_unique<Router>(options, this);
    for (ShardId id = 0; id < count; ++id) {
      shards.emplace(id, std::make_unique<LocalShard>());
      router->add_shard(id);
    }
  }
  void send_to_client(ClientId client, std::string payload) override {
    auto resp = serve::decode_response(payload);
    ASSERT_TRUE(resp.has_value());
    responses[client].push_back(std::move(*resp));
  }
  void send_to_shard(ShardId shard, std::string payload) override {
    auto it = shards.find(shard);
    if (it != shards.end()) it->second->submit(std::move(payload));
  }
  /// One pump of one shard: its ready responses reach the router (and
  /// may fan new work out to other shards, which stays queued).
  void pump(ShardId shard) {
    auto it = shards.find(shard);
    if (it == shards.end()) return;
    for (std::string& payload : it->second->poll()) {
      router->on_shard_payload(shard, std::move(payload));
    }
  }
  void settle() {
    bool moved = true;
    while (moved) {
      moved = false;
      for (auto& [id, shard] : shards) {
        for (std::string& payload : shard->poll()) {
          router->on_shard_payload(id, std::move(payload));
          moved = true;
        }
      }
    }
  }
  void kill(ShardId shard) {
    shards.erase(shard);
    router->on_shard_failed(shard);
  }
  void request(ClientId client, const serve::Request& req) {
    router->on_client_payload(client, serve::encode_request(req));
  }
  serve::SessionId create(const serve::SessionSpec& spec) {
    serve::Request req;
    req.type = serve::RequestType::kCreateSession;
    req.spec = spec;
    request(1, req);
    settle();
    EXPECT_FALSE(responses[1].empty());
    const serve::Response resp = responses[1].back();
    responses[1].clear();
    EXPECT_EQ(resp.status, serve::Status::kOk) << resp.error;
    return resp.session;
  }
  void step(serve::SessionId id, std::uint64_t steps) {
    serve::Request req;
    req.type = serve::RequestType::kStep;
    req.session = id;
    req.steps = steps;
    request(1, req);
  }
  std::string snapshot(serve::SessionId id) {
    serve::Request req;
    req.type = serve::RequestType::kSnapshot;
    req.session = id;
    request(1, req);
    settle();
    EXPECT_FALSE(responses[1].empty());
    const serve::Response resp = responses[1].back();
    responses[1].clear();
    EXPECT_EQ(resp.status, serve::Status::kOk) << resp.error;
    return resp.snapshot;
  }
};

TEST(RouterCluster, MigrateWhileQueuedHoldsAndReplaysInOrder) {
  ManualCluster cluster(2);
  const serve::SessionSpec spec = small_spec(91);
  const serve::SessionId id = cluster.create(spec);
  const ShardId home = *cluster.router->ring().lookup(id);
  const ShardId away = home == 0 ? 1 : 0;

  cluster.step(id, 64);
  cluster.settle();
  cluster.responses[1].clear();

  // Start the migration, then fire Steps while the image is in flight:
  // they must hold at the router and replay on the target in order.
  ASSERT_TRUE(cluster.router->migrate(id, away));
  cluster.step(id, 32);
  cluster.step(id, 16);
  cluster.pump(home);  // MigrateOut answers; adopt goes to `away`
  cluster.settle();    // adopt lands, held Steps flush and execute

  ASSERT_EQ(cluster.responses[1].size(), 2u);
  EXPECT_GE(cluster.responses[1][0].samples, 64u + 32u);
  EXPECT_GT(cluster.responses[1][1].samples,
            cluster.responses[1][0].samples);  // replayed in order
  cluster.responses[1].clear();
  EXPECT_EQ(*cluster.router->ring().lookup(id), away);
  EXPECT_EQ(cluster.snapshot(id), replay_snapshot(spec, {64, 32, 16}));
}

TEST(RouterCluster, SecondMigrateOfMovingSessionIsRefused) {
  ManualCluster cluster(2);
  const serve::SessionId id = cluster.create(small_spec(92));
  const ShardId home = *cluster.router->ring().lookup(id);
  const ShardId away = home == 0 ? 1 : 0;

  ASSERT_TRUE(cluster.router->migrate(id, away));
  EXPECT_FALSE(cluster.router->migrate(id, away));  // already in flight
  EXPECT_FALSE(cluster.router->migrate(id, home));  // either direction
  cluster.settle();
  // After it lands, a fresh migrate is fine again.
  EXPECT_EQ(*cluster.router->ring().lookup(id), away);
  EXPECT_TRUE(cluster.router->migrate(id, home));
  cluster.settle();

  // And migrate() validates its inputs: unknown session, unknown
  // target, target == current owner.
  EXPECT_FALSE(cluster.router->migrate(9999, away));
  EXPECT_FALSE(cluster.router->migrate(id, 7));
  EXPECT_FALSE(cluster.router->migrate(id, home));
}

TEST(RouterCluster, DeadMigrationTargetRollsBackToSource) {
  ManualCluster cluster(2);
  const serve::SessionSpec spec = small_spec(93);
  const serve::SessionId id = cluster.create(spec);
  const ShardId home = *cluster.router->ring().lookup(id);
  const ShardId away = home == 0 ? 1 : 0;

  cluster.step(id, 64);
  cluster.settle();
  cluster.responses[1].clear();

  ASSERT_TRUE(cluster.router->migrate(id, away));
  cluster.step(id, 32);  // held during the move
  cluster.pump(home);    // image exported; adopt now queued on `away`
  cluster.kill(away);    // ...which dies holding it

  // The image rolls back onto the source, the held Step replays there,
  // and the session never skips a beat.
  cluster.settle();
  ASSERT_EQ(cluster.responses[1].size(), 1u);
  EXPECT_EQ(cluster.responses[1][0].status, serve::Status::kOk);
  EXPECT_GE(cluster.responses[1][0].samples, 96u);
  cluster.responses[1].clear();
  EXPECT_EQ(*cluster.router->ring().lookup(id), home);
  EXPECT_GE(cluster.router->rollbacks(), 1u);
  EXPECT_EQ(cluster.router->migrations(), 0u);  // it never completed
  EXPECT_EQ(cluster.snapshot(id), replay_snapshot(spec, {64, 32}));
}

TEST(RouterCluster, ShardDeathReplaysParkedStateBitExact) {
  RouterOptions options;
  options.checkpoint_every = 2;  // park often so the log stays short
  LocalCluster cluster(3, options);
  ClusterClient client{&cluster, 1, {}};

  const unsigned kSessions = 6;
  std::vector<serve::SessionId> ids;
  std::vector<serve::SessionSpec> specs;
  for (unsigned i = 0; i < kSessions; ++i) {
    specs.push_back(small_spec(200 + i));
    ids.push_back(client.create(specs.back()));
  }
  std::vector<std::vector<std::uint64_t>> calls(kSessions);
  for (unsigned round = 0; round < 3; ++round) {
    for (unsigned i = 0; i < kSessions; ++i) {
      ASSERT_EQ(client.step(ids[i], 48).status, serve::Status::kOk);
      calls[i].push_back(48);
    }
  }

  // Kill a shard that owns sessions. Its parked images + replay logs
  // reconstruct every session on the survivors.
  ShardId victim = 0;
  while (cluster.router().sessions_on(victim) == 0) ++victim;
  cluster.kill(victim);
  EXPECT_EQ(cluster.router().failovers(), 1u);
  EXPECT_EQ(cluster.router().session_count(), kSessions);
  EXPECT_EQ(cluster.router().sessions_on(victim), 0u);

  // Every session — failed-over or not — continues bit-exactly.
  for (unsigned i = 0; i < kSessions; ++i) {
    ASSERT_EQ(client.step(ids[i], 48).status, serve::Status::kOk);
    calls[i].push_back(48);
    EXPECT_EQ(client.snapshot(ids[i]), replay_snapshot(specs[i], calls[i]))
        << "session " << ids[i];
  }
}

TEST(RouterCluster, DrainEmptiesShardThenShutsItDown) {
  RouterOptions options;
  options.checkpoint_every = 4;
  LocalCluster cluster(2, options);
  ClusterClient client{&cluster, 1, {}};

  const unsigned kSessions = 4;
  std::vector<serve::SessionId> ids;
  std::vector<serve::SessionSpec> specs;
  for (unsigned i = 0; i < kSessions; ++i) {
    specs.push_back(small_spec(300 + i));
    ids.push_back(client.create(specs.back()));
    ASSERT_EQ(client.step(ids[i], 40).status, serve::Status::kOk);
  }
  ShardId victim = 0;
  while (cluster.router().sessions_on(victim) == 0) ++victim;
  const ShardId survivor = victim == 0 ? 1 : 0;

  ASSERT_TRUE(cluster.router().drain(victim));
  cluster.settle();
  // Every resident migrated away and the empty worker was shut down
  // and dropped from the topology.
  EXPECT_EQ(cluster.router().session_count(), kSessions);
  EXPECT_EQ(cluster.router().sessions_on(victim), 0u);
  EXPECT_EQ(cluster.router().sessions_on(survivor), kSessions);
  EXPECT_NE(cluster.shard(victim), nullptr);  // process still exists...
  EXPECT_TRUE(cluster.shard(victim)->shutdown_requested());  // ...drained
  EXPECT_FALSE(cluster.router().ring().contains(victim));

  // Draining the last placeable shard is refused.
  EXPECT_FALSE(cluster.router().drain(survivor));

  // The fleet of one keeps serving, bit-exactly.
  for (unsigned i = 0; i < kSessions; ++i) {
    ASSERT_EQ(client.step(ids[i], 40).status, serve::Status::kOk);
    EXPECT_EQ(client.snapshot(ids[i]), replay_snapshot(specs[i], {40, 40}));
  }
}

TEST(RouterCluster, ControlPlaneAnswersLocally) {
  LocalCluster cluster(2, {});
  ClusterClient client{&cluster, 1, {}};

  serve::Request ping;
  ping.type = serve::RequestType::kPing;
  EXPECT_EQ(client.call(ping).status, serve::Status::kOk);

  serve::Request probe;
  probe.type = serve::RequestType::kIntrospect;
  probe.probe = serve::IntrospectProbe::kShards;
  const serve::Response topo = client.call(probe);
  ASSERT_EQ(topo.status, serve::Status::kOk);
  EXPECT_NE(topo.introspect_json.find("\"shards\":"), std::string::npos);

  serve::Request stats;
  stats.type = serve::RequestType::kStats;
  const serve::Response s = client.call(stats);
  ASSERT_EQ(s.status, serve::Status::kOk);
  EXPECT_NE(s.stats_prometheus.find("qtrouter_shards"), std::string::npos);
  EXPECT_NE(s.stats_prometheus.find("qtserve_sessions_live"),
            std::string::npos);

  // Clients cannot speak the shard control plane.
  serve::Request in;
  in.type = serve::RequestType::kMigrateIn;
  in.session = 1;
  EXPECT_EQ(client.call(in).status, serve::Status::kError);

  // Unknown-session requests fail fast at the router.
  serve::Request step;
  step.type = serve::RequestType::kStep;
  step.session = 4242;
  step.steps = 1;
  EXPECT_EQ(client.call(step).status, serve::Status::kError);
}

// --- rebalance planning / scraping ----------------------------------

TEST(ShardManager, BalancedFleetPlansNothing) {
  EXPECT_TRUE(plan_rebalance({{0, 10}, {1, 10}, {2, 10}}, 0.25).empty());
  EXPECT_TRUE(plan_rebalance({{0, 10}, {1, 12}}, 0.25).empty());
  EXPECT_TRUE(plan_rebalance({{0, 100}}, 0.0).empty());  // nowhere to go
  EXPECT_TRUE(plan_rebalance({}, 0.0).empty());
}

TEST(ShardManager, OverloadedShardDonatesTowardTheMean) {
  const std::vector<RebalanceMove> moves =
      plan_rebalance({{0, 100}, {1, 0}}, 0.25);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, 0u);
  EXPECT_EQ(moves[0].to, 1u);
  EXPECT_EQ(moves[0].count, 50u);

  // Deterministic: identical inputs, identical plan.
  EXPECT_EQ(plan_rebalance({{0, 100}, {1, 0}}, 0.25)[0].count, 50u);

  // Multiple takers fill lowest-first.
  const std::vector<RebalanceMove> spread =
      plan_rebalance({{0, 90}, {1, 0}, {2, 30}}, 0.1);
  ASSERT_FALSE(spread.empty());
  EXPECT_EQ(spread[0].from, 0u);
  EXPECT_EQ(spread[0].to, 1u);
}

TEST(ShardManager, ScrapeGaugeSumsFamiliesWithNameBoundaries) {
  const std::string text =
      "# HELP qtserve_sessions_live live\n"
      "# TYPE qtserve_sessions_live gauge\n"
      "qtserve_sessions_live 12\n"
      "qtserve_sessions_hot 3\n"
      "qtserve_requests_total{type=\"step\"} 100\n"
      "qtserve_requests_total{type=\"query\"} 7\n";
  EXPECT_EQ(scrape_gauge(text, "qtserve_sessions_live"), 12.0);
  EXPECT_EQ(scrape_gauge(text, "qtserve_sessions_hot"), 3.0);
  // Label sets sum; family-name prefixes do not bleed into longer
  // names.
  EXPECT_EQ(scrape_gauge(text, "qtserve_requests_total"), 107.0);
  EXPECT_EQ(scrape_gauge(text, "qtserve_sessions"), std::nullopt);
  EXPECT_EQ(scrape_gauge(text, "absent_family"), std::nullopt);
}

// --- HTTP plane -----------------------------------------------------

TEST(ShardHttpPlane, RoutesAgainstALiveRouter) {
  LocalCluster cluster(2, {});
  ClusterClient client{&cluster, 1, {}};
  const serve::SessionId id = client.create(small_spec(401));
  const ShardId home = *cluster.router().ring().lookup(id);
  const ShardId away = home == 0 ? 1 : 0;
  Router& router = cluster.router();

  EXPECT_NE(handle_router_http(router, "GET /healthz HTTP/1.0\r\n\r\n")
                .find("ok\n"),
            std::string::npos);
  EXPECT_NE(handle_router_http(router, "GET /metrics HTTP/1.0\r\n\r\n")
                .find("qtrouter_shards"),
            std::string::npos);
  EXPECT_NE(handle_router_http(router, "GET /shards HTTP/1.0\r\n\r\n")
                .find("\"draining\":false"),
            std::string::npos);

  // /migrate parses its query params and starts a real migration.
  const std::string migrate = handle_router_http(
      router, "GET /migrate?session=" + std::to_string(id) +
                  "&shard=" + std::to_string(away) + " HTTP/1.0\r\n\r\n");
  EXPECT_NE(migrate.find("{\"ok\":true}"), std::string::npos);
  cluster.settle();
  EXPECT_EQ(*router.ring().lookup(id), away);

  EXPECT_NE(handle_router_http(router, "GET /migrate?session=9 HTTP/1.0\r\n\r\n")
                .find("400"),
            std::string::npos);
  // checkpoint_all only snapshots sessions with replay-log entries;
  // give it one to park.
  ASSERT_EQ(client.step(id, 16).status, serve::Status::kOk);
  EXPECT_NE(handle_router_http(router, "GET /checkpoint HTTP/1.0\r\n\r\n")
                .find("{\"ok\":true}"),
            std::string::npos);
  cluster.settle();
  EXPECT_GE(router.checkpoints(), 1u);

  const std::string drain = handle_router_http(
      router,
      "GET /drain?shard=" + std::to_string(home) + " HTTP/1.0\r\n\r\n");
  EXPECT_NE(drain.find("{\"ok\":true}"), std::string::npos);
  cluster.settle();
  EXPECT_FALSE(router.ring().contains(home));

  // HEAD gets headers only; bad methods and routes get 405/404.
  const std::string head =
      handle_router_http(router, "HEAD /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(head.find("200 OK"), std::string::npos);
  EXPECT_EQ(head.find("ok\n"), std::string::npos);
  EXPECT_NE(handle_router_http(router, "POST /drain HTTP/1.0\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(handle_router_http(router, "GET /nope HTTP/1.0\r\n\r\n")
                .find("404"),
            std::string::npos);
  EXPECT_NE(handle_router_http(router, "garbage").find("400"),
            std::string::npos);
}

}  // namespace
}  // namespace qta::shard

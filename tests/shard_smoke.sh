#!/usr/bin/env bash
# Sharded-serving smoke (ctest: shard_smoke; CI: shard-smoke): three
# qtserved workers behind qtrouterd on ephemeral ports.
#
# What it proves, all via qtclient --verify (byte-for-byte snapshot
# comparison against a local replay twin):
#   1. The router is bit-invisible across all four algorithms, with
#      --migrate-every forcing live migrations mid-run (qtclient
#      --expect-migration fails if the router never moved a session).
#   2. Killing a worker mid-run is survivable: the dead shard's parked
#      images + replay logs reconstruct its sessions on the survivors,
#      and the post-kill rounds still verify bit-exact.
#   3. Shutdown drains the whole fleet (router exit 0).
#
# Usage: shard_smoke.sh <qtserved> <qtrouterd> <qtclient>
set -euo pipefail

# Resolve to absolute paths: the smoke runs out of a temp directory.
QTSERVED=$(readlink -f "$1")
QTROUTERD=$(readlink -f "$2")
QTCLIENT=$(readlink -f "$3")

WORK=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"

WORKER_PIDS=()
for i in 1 2 3; do
  "$QTSERVED" --port=0 --port-file="w$i.port" \
    --max-hot=8 --workers=2 --max-queue=256 &
  WORKER_PIDS+=($!)
done
for i in 1 2 3; do
  for _ in $(seq 100); do [ -s "w$i.port" ] && break; sleep 0.1; done
  [ -s "w$i.port" ] || { echo "shard_smoke: worker $i never published a port"; exit 1; }
done

SHARDS="127.0.0.1:$(cat w1.port),127.0.0.1:$(cat w2.port),127.0.0.1:$(cat w3.port)"
# migrate-every counts Step REQUESTS per session (not samples); the
# clients below send 4 per session, so 2 forces a hop mid-run.
"$QTROUTERD" --shards="$SHARDS" --port=0 --port-file=router.port \
  --migrate-every=2 --checkpoint-every=8 &
ROUTER=$!
for _ in $(seq 100); do [ -s router.port ] && break; sleep 0.1; done
[ -s router.port ] || { echo "shard_smoke: router never published a port"; exit 1; }
RPORT=$(cat router.port)

# 1. All four algorithms through the router, migrations forced.
for algo in q_learning sarsa expected_sarsa double_q; do
  "$QTCLIENT" --shards="127.0.0.1:$RPORT" \
    --sessions=64 --rounds=4 --steps=128 --algorithm="$algo" \
    --verify --expect-migration
done

# 2. Kill worker 3 halfway through a verified run: failover must be
#    bit-exact for both the failed-over sessions and everyone else.
"$QTCLIENT" --shards="127.0.0.1:$RPORT" \
  --sessions=32 --rounds=4 --steps=128 --algorithm=q_learning \
  --verify --mid-run-cmd="kill ${WORKER_PIDS[2]}"

# 3. Clean fleet-wide shutdown.
"$QTCLIENT" --shards="127.0.0.1:$RPORT" \
  --sessions=1 --rounds=1 --steps=32 --shutdown
wait "$ROUTER"
echo "shard_smoke: OK"

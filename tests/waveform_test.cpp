#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "env/grid_world.h"
#include "qtaccel/pipeline.h"

namespace qta::qtaccel {
namespace {

env::GridWorldConfig grid4() {
  env::GridWorldConfig c;
  c.width = 4;
  c.height = 4;
  c.num_actions = 4;
  return c;
}

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(Waveform, OneLinePerCycle) {
  env::GridWorld g(grid4());
  PipelineConfig c;
  c.seed = 1;
  Pipeline p(g, c);
  std::ostringstream os;
  p.set_waveform(&os);
  p.run_iterations(10);
  const auto lines = lines_of(os.str());
  EXPECT_EQ(lines.size(), p.stats().cycles);
}

TEST(Waveform, PipelineFillsStageByStage) {
  env::GridWorld g(grid4());
  PipelineConfig c;
  c.seed = 1;
  Pipeline p(g, c);
  std::ostringstream os;
  p.set_waveform(&os);
  p.run_iterations(6);
  const auto lines = lines_of(os.str());
  ASSERT_GE(lines.size(), 4u);
  // Cycle 0: only S1 occupied.
  EXPECT_NE(lines[0].find("S1 s="), std::string::npos);
  EXPECT_NE(lines[0].find("S2 --"), std::string::npos);
  EXPECT_NE(lines[0].find("S3 --"), std::string::npos);
  EXPECT_NE(lines[0].find("RET --"), std::string::npos);
  // Cycle 3: full pipe, first retirement.
  EXPECT_EQ(lines[3].find("S2 --"), std::string::npos);
  EXPECT_EQ(lines[3].find("S3 --"), std::string::npos);
  EXPECT_NE(lines[3].find("RET s="), std::string::npos);
}

TEST(Waveform, DrainEmptiesStages) {
  env::GridWorld g(grid4());
  PipelineConfig c;
  c.seed = 2;
  Pipeline p(g, c);
  std::ostringstream os;
  p.set_waveform(&os);
  p.run_iterations(5);
  const auto lines = lines_of(os.str());
  // The last drain cycle has only the retirement populated.
  const std::string& last = lines.back();
  EXPECT_NE(last.find("S1 --"), std::string::npos);
  EXPECT_NE(last.find("S2 --"), std::string::npos);
  EXPECT_NE(last.find("S3 --"), std::string::npos);
  EXPECT_NE(last.find("RET s="), std::string::npos);
}

TEST(Waveform, StallModeShowsGaps) {
  env::GridWorld g(grid4());
  PipelineConfig c;
  c.hazard = HazardMode::kStall;
  c.seed = 3;
  Pipeline p(g, c);
  std::ostringstream os;
  p.set_waveform(&os);
  p.run_iterations(3);
  const auto lines = lines_of(os.str());
  // In stall mode an issue is followed by 3 cycles with S1 empty.
  EXPECT_NE(lines[1].find("S1 --"), std::string::npos);
  EXPECT_NE(lines[2].find("S1 --"), std::string::npos);
  EXPECT_NE(lines[4].find("S1 s="), std::string::npos);
}

TEST(Waveform, ReusedLineBufferIsDeterministic) {
  // The writer reuses one line buffer across cycles; a stale tail from
  // an earlier line must never leak into a later one. Two identically-
  // seeded pipelines must emit byte-identical text, and because every
  // field is padded to a fixed column layout, every line must come out
  // the same width — a leaked tail would break both properties.
  env::GridWorld g(grid4());
  PipelineConfig c;
  c.seed = 9;
  Pipeline first(g, c);
  Pipeline second(g, c);
  std::ostringstream a, b;
  first.set_waveform(&a);
  second.set_waveform(&b);
  first.run_iterations(60);
  second.run_iterations(60);
  ASSERT_FALSE(a.str().empty());
  EXPECT_EQ(a.str(), b.str());
  const auto lines = lines_of(a.str());
  ASSERT_FALSE(lines.empty());
  for (const auto& line : lines) {
    EXPECT_EQ(line.find('\0'), std::string::npos);
    EXPECT_EQ(line.size(), lines.front().size());
  }
}

TEST(Waveform, DetachStopsEmission) {
  env::GridWorld g(grid4());
  PipelineConfig c;
  Pipeline p(g, c);
  std::ostringstream os;
  p.set_waveform(&os);
  p.run_iterations(2);
  const auto before = os.str().size();
  p.set_waveform(nullptr);
  p.run_iterations(10);
  EXPECT_EQ(os.str().size(), before);
}

}  // namespace
}  // namespace qta::qtaccel

// qtscope serving-tier tracing tests (docs/observability.md):
//   - Span-chain completeness: every engine-executed request in a traced
//     run yields one enclosing span plus the five lifecycle children
//     (admission -> queue -> acquire -> execute -> reply) that tile it:
//     consecutive children abut, durations sum within the parent, and
//     the wire trace context (trace_id) rides on every span. Validated
//     by actually parsing the Chrome trace-event JSON.
//   - Lane-coalesced batches land as lane_group spans on their own
//     track.
//   - The observability-off differential: with tracing AND the flight
//     recorder disabled, every backend retires byte-identical snapshots,
//     stats, and Q rows versus a fully-instrumented server. Observation
//     must never perturb the datapath.
//   - Eviction attribution: capacity churn caused by restores is
//     labelled reason="restore", fresh-acquire pressure reason="lru",
//     explicit Evict reason="request" — and the three labels plus the
//     restore counter reconcile exactly.
//   - Introspect probes over the loopback transport (wire codec
//     included): metrics, flight recorder, per-session summary, and the
//     error replies for unknown sessions / disabled recorders.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/transport.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "test_json.h"

namespace qta::serve {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

SessionSpec small_spec(std::uint64_t seed,
                       qtaccel::Backend backend = qtaccel::Backend::kFast) {
  SessionSpec spec;
  spec.width = 8;
  spec.height = 8;
  spec.actions = 4;
  spec.seed = seed;
  spec.backend = backend;
  spec.max_episode_length = 64;
  return spec;
}

struct Span {
  std::string name;
  double pid = 0;
  double tid = 0;
  double ts = 0;
  double dur = 0;
  std::map<std::string, double> args;
};

std::vector<Span> parse_spans(const std::string& trace_json) {
  JsonValue root;
  EXPECT_TRUE(JsonParser(trace_json).parse(&root));
  std::vector<Span> spans;
  for (const JsonValue& e : root.at("traceEvents").array) {
    if (!e.has("ph") || e.at("ph").string != "X") continue;
    Span s;
    s.name = e.at("name").string;
    s.pid = e.at("pid").number;
    if (e.has("tid")) s.tid = e.at("tid").number;
    s.ts = e.at("ts").number;
    s.dur = e.at("dur").number;
    if (e.has("args")) {
      for (const auto& [k, v] : e.at("args").object) {
        s.args[k] = v.number;
      }
    }
    spans.push_back(std::move(s));
  }
  return spans;
}

bool is_phase_name(const std::string& name) {
  return name == "admission" || name == "queue" || name == "execute" ||
         name == "reply" || name == "acquire (hot)" ||
         name == "acquire (restore)";
}

TEST(ServeTrace, SpanChainConnectsEveryExecutedRequest) {
  ServerOptions options;
  options.max_hot = 2;  // 5 sessions through 2 slots: restores guaranteed
  options.workers = 2;
  options.trace = true;
  LoopbackTransport transport(options);

  constexpr std::uint64_t kTraceId = 77;
  constexpr std::size_t kSessions = 5;
  std::vector<SessionId> ids(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    Request req;
    req.type = RequestType::kCreateSession;
    req.spec = small_spec(10 + i);
    req.trace_id = kTraceId;
    ids[i] = transport.call(req).session;
  }
  std::size_t executed = 0;
  for (int round = 0; round < 2; ++round) {
    std::vector<Ticket> tickets;
    for (const SessionId id : ids) {
      Request req;
      req.type = RequestType::kStep;
      req.session = id;
      req.steps = 48;
      req.trace_id = kTraceId;
      tickets.push_back(transport.post(req));
    }
    for (const Ticket t : tickets) {
      ASSERT_EQ(transport.wait(t).status, Status::kOk);
      ++executed;
    }
  }
  for (const SessionId id : ids) {
    Request req;
    req.type = RequestType::kQuery;
    req.session = id;
    req.state = 0;
    req.trace_id = kTraceId;
    ASSERT_EQ(transport.call(req).status, Status::kOk);
    ++executed;
  }

  const std::vector<Span> spans =
      parse_spans(transport.server().trace()->json_text());
  std::map<double, std::vector<const Span*>> by_ticket;
  for (const Span& s : spans) {
    auto it = s.args.find("ticket");
    if (it != s.args.end()) by_ticket[it->second].push_back(&s);
  }

  std::size_t chains = 0;
  bool saw_restore = false;
  bool saw_hot = false;
  for (const auto& [ticket, group] : by_ticket) {
    const Span* enclosing = nullptr;
    std::vector<const Span*> children;
    for (const Span* s : group) {
      ASSERT_EQ(s->args.at("trace_id"), kTraceId) << s->name;
      if (is_phase_name(s->name)) children.push_back(s);
      else enclosing = s;
    }
    ASSERT_NE(enclosing, nullptr) << "ticket " << ticket;
    if (children.empty()) continue;  // control-plane: enclosing span only
    ++chains;

    // Exactly the five lifecycle phases, in wall-clock order.
    ASSERT_EQ(children.size(), 5u) << enclosing->name;
    std::sort(children.begin(), children.end(),
              [](const Span* a, const Span* b) { return a->ts < b->ts; });
    EXPECT_EQ(children[0]->name, "admission");
    EXPECT_EQ(children[1]->name, "queue");
    EXPECT_TRUE(children[2]->name == "acquire (hot)" ||
                children[2]->name == "acquire (restore)");
    saw_restore = saw_restore || children[2]->name == "acquire (restore)";
    saw_hot = saw_hot || children[2]->name == "acquire (hot)";
    EXPECT_EQ(children[3]->name, "execute");
    EXPECT_EQ(children[4]->name, "reply");

    // The chain is connected: each phase starts no earlier than the
    // previous one ended, all inside the enclosing span, and the phase
    // durations sum to no more than the enclosing duration.
    double phase_sum = 0;
    double cursor = enclosing->ts;
    for (const Span* c : children) {
      EXPECT_GE(c->ts, cursor) << c->name;
      EXPECT_LE(c->ts + c->dur, enclosing->ts + enclosing->dur) << c->name;
      EXPECT_EQ(c->tid, enclosing->tid);
      cursor = c->ts + c->dur;
      phase_sum += c->dur;
    }
    EXPECT_LE(phase_sum, enclosing->dur);
    // admission/queue/acquire abut exactly (stamped at the same instant
    // a control-thread handoff happens); only execute may start late
    // (worker scheduling) — so the first three tile with zero gaps.
    EXPECT_EQ(children[0]->ts + children[0]->dur, children[1]->ts);
    EXPECT_EQ(children[1]->ts + children[1]->dur, children[2]->ts);
    // reply runs to the enclosing span's end.
    EXPECT_EQ(children[4]->ts + children[4]->dur,
              enclosing->ts + enclosing->dur);
  }
  EXPECT_EQ(chains, executed);
  EXPECT_TRUE(saw_restore);  // 5 sessions through 2 hot slots must churn
  EXPECT_TRUE(saw_hot);
}

TEST(ServeTrace, LaneGroupSpansLandOnTheirOwnTrack) {
  ServerOptions options;
  options.max_hot = 4;
  options.workers = 2;
  options.trace = true;
  options.coalesce_lanes = true;
  LoopbackTransport transport(options);

  std::vector<SessionId> ids(4);
  for (std::size_t i = 0; i < 4; ++i) {
    Request req;
    req.type = RequestType::kCreateSession;
    req.spec = small_spec(20 + i, qtaccel::Backend::kLanes);
    ids[i] = transport.call(req).session;
  }
  // All four posted before any pump: one batch, one coalesced group.
  std::vector<Ticket> tickets;
  for (const SessionId id : ids) {
    Request req;
    req.type = RequestType::kStep;
    req.session = id;
    req.steps = 64;
    tickets.push_back(transport.post(req));
  }
  for (const Ticket t : tickets) {
    ASSERT_EQ(transport.wait(t).status, Status::kOk);
  }

  const std::vector<Span> spans =
      parse_spans(transport.server().trace()->json_text());
  std::size_t groups = 0;
  for (const Span& s : spans) {
    if (s.name.rfind("lane_group[", 0) != 0) continue;
    ++groups;
    EXPECT_EQ(s.pid, 1) << "lane groups live on their own track";
    EXPECT_EQ(s.args.at("lanes"), 4);
    // Per-lane progress args: every lane advanced by at least the
    // requested 64 (episode drain may overshoot a little).
    for (int lane = 0; lane < 4; ++lane) {
      EXPECT_GE(s.args.at("lane" + std::to_string(lane) + "_samples"), 64)
          << "lane " << lane;
    }
  }
  EXPECT_EQ(groups, 1u);
}

// ---------------------------------------------------------------------
// Observability must not perturb the datapath.

struct WorkloadResult {
  std::vector<std::string> snapshots;
  std::vector<std::uint64_t> samples;
  std::vector<std::uint64_t> episodes;
  std::vector<std::uint64_t> cycles;
  std::vector<std::vector<double>> q_rows;
};

WorkloadResult run_workload(qtaccel::Backend backend, bool observed) {
  ServerOptions options;
  options.max_hot = 2;  // 6 sessions: heavy evict/restore churn
  options.workers = 2;
  options.trace = observed;
  options.flight_recorder_capacity = observed ? 32 : 0;
  LoopbackTransport transport(options);

  constexpr std::size_t kSessions = 6;
  std::vector<SessionId> ids(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    Request req;
    req.type = RequestType::kCreateSession;
    req.spec = small_spec(40 + i, backend);
    req.trace_id = observed ? 5 : 0;
    ids[i] = transport.call(req).session;
  }
  for (int round = 0; round < 3; ++round) {
    std::vector<Ticket> tickets;
    for (const SessionId id : ids) {
      Request req;
      req.type = RequestType::kStep;
      req.session = id;
      req.steps = 32;
      req.trace_id = observed ? 5 : 0;
      tickets.push_back(transport.post(req));
    }
    for (const Ticket t : tickets) {
      EXPECT_EQ(transport.wait(t).status, Status::kOk);
    }
  }

  WorkloadResult result;
  for (const SessionId id : ids) {
    Request snap;
    snap.type = RequestType::kSnapshot;
    snap.session = id;
    const Response sr = transport.call(snap);
    EXPECT_EQ(sr.status, Status::kOk);
    result.snapshots.push_back(sr.snapshot);
    result.samples.push_back(sr.samples);
    result.episodes.push_back(sr.episodes);
    result.cycles.push_back(sr.cycles);

    Request query;
    query.type = RequestType::kQuery;
    query.session = id;
    query.state = 3;
    const Response qr = transport.call(query);
    EXPECT_EQ(qr.status, Status::kOk);
    result.q_rows.push_back(qr.q_row);
  }
  return result;
}

TEST(ServeObservability, OffIsBitIdenticalToOnAcrossBackends) {
  for (const qtaccel::Backend backend :
       {qtaccel::Backend::kCycleAccurate, qtaccel::Backend::kFast,
        qtaccel::Backend::kLanes}) {
    const WorkloadResult off = run_workload(backend, false);
    const WorkloadResult on = run_workload(backend, true);
    EXPECT_EQ(off.snapshots, on.snapshots)
        << "backend " << qtaccel::backend_name(backend);
    EXPECT_EQ(off.samples, on.samples);
    EXPECT_EQ(off.episodes, on.episodes);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.q_rows, on.q_rows);
  }
}

TEST(ServeObservability, EvictionReasonsReconcileWithRestores) {
  ServerOptions options;
  options.max_hot = 1;  // every second acquire forces an eviction
  options.workers = 1;
  LoopbackTransport transport(options);
  Server& server = transport.server();

  SessionId a, b;
  {
    Request req;
    req.type = RequestType::kCreateSession;
    req.spec = small_spec(70);
    a = transport.call(req).session;
    req.spec = small_spec(71);
    b = transport.call(req).session;
  }
  const auto step = [&](SessionId id) {
    Request req;
    req.type = RequestType::kStep;
    req.session = id;
    req.steps = 16;
    ASSERT_EQ(transport.call(req).status, Status::kOk);
  };
  step(a);  // a hot, slot was free: no eviction
  step(b);  // b fresh (never evicted): evicts a, reason=lru
  step(a);  // a restores from its snapshot: evicts b, reason=restore
  {
    Request req;  // explicit Evict on the hot session: reason=request
    req.type = RequestType::kEvict;
    req.session = a;
    ASSERT_EQ(transport.call(req).status, Status::kOk);
  }

  telemetry::MetricsRegistry& m = server.metrics();
  const std::uint64_t lru =
      m.counter("qtserve_evictions_total", {{"reason", "lru"}}).value();
  const std::uint64_t restore =
      m.counter("qtserve_evictions_total", {{"reason", "restore"}}).value();
  const std::uint64_t request =
      m.counter("qtserve_evictions_total", {{"reason", "request"}}).value();
  EXPECT_EQ(lru, 1u);
  EXPECT_EQ(restore, 1u);
  EXPECT_EQ(request, 1u);
  // The plain capacity-eviction counter spans lru + restore (the CI
  // churn gate keys off it), and restores reconcile with the restore
  // that caused the restore-reason eviction.
  EXPECT_EQ(server.sessions().lru_evictions(), lru + restore);
  EXPECT_EQ(server.sessions().restores(), 1u);
}

// ---------------------------------------------------------------------
// Introspect probes, through the wire codec via loopback.

TEST(ServeIntrospect, MetricsFlightAndSessionProbes) {
  ServerOptions options;
  options.max_hot = 2;
  options.flight_recorder_capacity = 16;
  LoopbackTransport transport(options);

  SessionId id;
  {
    Request req;
    req.type = RequestType::kCreateSession;
    req.spec = small_spec(90);
    req.spec.telemetry = true;
    id = transport.call(req).session;
  }
  {
    Request req;
    req.type = RequestType::kStep;
    req.session = id;
    req.steps = 32;
    ASSERT_EQ(transport.call(req).status, Status::kOk);
  }

  {
    Request req;
    req.type = RequestType::kIntrospect;
    req.probe = IntrospectProbe::kMetrics;
    const Response resp = transport.call(req);
    ASSERT_EQ(resp.status, Status::kOk);
    JsonValue root;
    ASSERT_TRUE(JsonParser(resp.introspect_json).parse(&root));
  }
  {
    Request req;
    req.type = RequestType::kIntrospect;
    req.probe = IntrospectProbe::kFlightRecorder;
    const Response resp = transport.call(req);
    ASSERT_EQ(resp.status, Status::kOk);
    JsonValue root;
    ASSERT_TRUE(JsonParser(resp.introspect_json).parse(&root));
    EXPECT_EQ(root.at("capacity").number, 16.0);
    EXPECT_GE(root.at("events").array.size(), 2u);  // created + request
  }
  {
    Request req;
    req.type = RequestType::kIntrospect;
    req.probe = IntrospectProbe::kSession;
    req.session = id;
    const Response resp = transport.call(req);
    ASSERT_EQ(resp.status, Status::kOk);
    JsonValue root;
    ASSERT_TRUE(JsonParser(resp.introspect_json).parse(&root));
    EXPECT_EQ(root.at("session").number, static_cast<double>(id));
    EXPECT_EQ(root.at("hot").boolean, true);
    EXPECT_EQ(root.at("telemetry").boolean, true);
    EXPECT_EQ(root.at("spec").at("backend").string, "fast");
    EXPECT_GE(root.at("stats").at("samples").number, 32.0);
  }
  {
    Request req;  // unknown session: error reply, not an abort
    req.type = RequestType::kIntrospect;
    req.probe = IntrospectProbe::kSession;
    req.session = 999;
    const Response resp = transport.call(req);
    EXPECT_EQ(resp.status, Status::kError);
    EXPECT_FALSE(resp.error.empty());
  }
}

TEST(ServeIntrospect, FlightProbeErrorsWhenRecorderDisabled) {
  ServerOptions options;
  options.flight_recorder_capacity = 0;
  LoopbackTransport transport(options);
  Request req;
  req.type = RequestType::kIntrospect;
  req.probe = IntrospectProbe::kFlightRecorder;
  const Response resp = transport.call(req);
  EXPECT_EQ(resp.status, Status::kError);
  EXPECT_NE(resp.error.find("disabled"), std::string::npos);
}

}  // namespace
}  // namespace qta::serve

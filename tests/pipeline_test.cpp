#include <gtest/gtest.h>

#include "env/grid_world.h"
#include "env/random_mdp.h"
#include "env/value_iteration.h"
#include "qtaccel/pipeline.h"

namespace qta::qtaccel {
namespace {

env::GridWorldConfig grid(unsigned w, unsigned h, unsigned a = 4) {
  env::GridWorldConfig c;
  c.width = w;
  c.height = h;
  c.num_actions = a;
  return c;
}

TEST(Pipeline, OneSamplePerCycleSteadyState) {
  env::GridWorld g(grid(16, 16));
  PipelineConfig c;
  c.seed = 1;
  Pipeline p(g, c);
  p.run_iterations(10000);
  const PipelineStats& st = p.stats();
  // cycles = iterations + drain (3) exactly, in forward mode.
  EXPECT_EQ(st.cycles, 10000u + 3u);
  EXPECT_EQ(st.iterations, 10000u);
  EXPECT_EQ(st.samples + st.bubbles, 10000u);
  EXPECT_GT(st.samples_per_cycle(), 0.99);
}

TEST(Pipeline, StallModeTakesFourCyclesPerSample) {
  env::GridWorld g(grid(16, 16));
  PipelineConfig c;
  c.hazard = HazardMode::kStall;
  c.seed = 1;
  Pipeline p(g, c);
  p.run_iterations(1000);
  const PipelineStats& st = p.stats();
  EXPECT_NEAR(st.samples_per_cycle(), 0.25, 0.01);
  EXPECT_GT(st.stall_cycles, 2900u);
}

TEST(Pipeline, StallAndForwardModesLearnIdentically) {
  // The stall pipeline is trivially sequential; forwarding must not
  // change WHAT is learned, only how fast cycles pass.
  env::GridWorld g(grid(8, 8));
  PipelineConfig fwd;
  fwd.seed = 3;
  PipelineConfig stall = fwd;
  stall.hazard = HazardMode::kStall;
  Pipeline a(g, fwd), b(g, stall);
  a.run_iterations(5000);
  b.run_iterations(5000);
  for (StateId s = 0; s < g.num_states(); ++s) {
    for (ActionId act = 0; act < g.num_actions(); ++act) {
      ASSERT_EQ(a.q_raw(s, act), b.q_raw(s, act));
    }
  }
  EXPECT_GT(b.stats().cycles, 3 * a.stats().cycles);
}

TEST(Pipeline, RunSamplesReachesTarget) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.seed = 2;
  Pipeline p(g, c);
  p.run_samples(5000);
  EXPECT_GE(p.stats().samples, 5000u);
  EXPECT_LE(p.stats().samples, 5000u + 4u);  // overshoot <= pipe depth
  EXPECT_FALSE(p.in_flight());
}

TEST(Pipeline, NoPortConflictsEver) {
  // SARSA with heavy exploration + episode churn is the port-pressure
  // worst case; the kAbort policy in the BRAM would fire on violation.
  env::GridWorld g(grid(4, 4, 8));
  PipelineConfig c;
  c.algorithm = Algorithm::kSarsa;
  c.epsilon = 0.7;
  c.seed = 3;
  Pipeline p(g, c);
  p.run_iterations(30000);
  EXPECT_EQ(p.q_table().stats().port_conflicts, 0u);
  EXPECT_EQ(p.reward_table().stats().port_conflicts, 0u);
}

TEST(Pipeline, RewardTableIsReadOnly) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  Pipeline p(g, c);
  p.run_iterations(2000);
  EXPECT_EQ(p.reward_table().stats().writes, 0u);
  EXPECT_GT(p.reward_table().stats().reads, 0u);
}

TEST(Pipeline, QTableWritesMatchSamples) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  Pipeline p(g, c);
  p.run_iterations(2000);
  EXPECT_EQ(p.q_table().stats().writes, p.stats().samples);
}

TEST(Pipeline, EveryTableReadIsAccountedFor) {
  // Q-Learning: one Q read + one R read per non-bubble iteration, one
  // Qmax read per non-terminal sample — the Bram counters must add up
  // exactly (no phantom or double accesses).
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.seed = 11;
  Pipeline p(g, c);
  std::vector<SampleTrace> trace;
  p.set_trace(&trace);
  p.run_iterations(5000);
  std::uint64_t non_bubble = 0, non_terminal = 0;
  for (const auto& t : trace) {
    if (!t.bubble) {
      ++non_bubble;
      if (!t.end_episode) ++non_terminal;
    }
  }
  EXPECT_EQ(p.q_table().stats().reads, non_bubble);
  EXPECT_EQ(p.reward_table().stats().reads, non_bubble);
}

TEST(Pipeline, EpisodeAccountingMatchesTerminalHits) {
  env::GridWorld g(grid(4, 4));
  PipelineConfig c;
  c.seed = 5;
  Pipeline p(g, c);
  std::vector<SampleTrace> trace;
  p.set_trace(&trace);
  p.run_iterations(5000);
  std::uint64_t ends = 0;
  for (const auto& t : trace) ends += (!t.bubble && t.end_episode) ? 1 : 0;
  EXPECT_EQ(ends, p.stats().episodes);
}

TEST(Pipeline, DrainLeavesNothingInFlight) {
  env::GridWorld g(grid(4, 4));
  PipelineConfig c;
  Pipeline p(g, c);
  p.run_iterations(10);
  EXPECT_FALSE(p.in_flight());
  // Ticking while drained is harmless.
  p.tick(false);
  EXPECT_FALSE(p.in_flight());
}

TEST(Pipeline, SaturationCountersExposeOverflowPressure)
{
  // Positive per-step rewards with gamma near 1 drive Q* toward
  // step_reward / (1 - gamma), far past the format maximum: the adder
  // tree and/or DSP outputs must clamp (and count it), never wrap.
  env::GridWorldConfig cfg = grid(4, 4);
  cfg.step_reward = 100.0;
  env::GridWorld g(cfg);
  PipelineConfig c;
  c.alpha = 0.5;
  c.gamma = 0.99;
  Pipeline p(g, c);
  p.run_iterations(50000);
  EXPECT_GT(p.dsp_saturations() + p.stats().adder_saturations, 0u);
  for (StateId s = 0; s < g.num_states(); ++s) {
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      EXPECT_LE(p.q_raw(s, a), c.q_fmt.max_raw());
      EXPECT_GE(p.q_raw(s, a), c.q_fmt.min_raw());
    }
  }
}

TEST(Pipeline, QmaxEntryExposedForInspection) {
  env::GridWorld g(grid(4, 4));
  PipelineConfig c;
  c.seed = 6;
  Pipeline p(g, c);
  p.run_iterations(20000);
  // The state just before the goal must have recorded a large max.
  const auto e = p.qmax_entry(g.state_of(2, 3));
  EXPECT_GT(fixed::to_double(e.value, c.q_fmt), 100.0);
}

TEST(Pipeline, ExactScanModeRuns) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.qmax = QmaxMode::kExactScan;
  c.seed = 7;
  Pipeline p(g, c);
  p.run_iterations(10000);
  EXPECT_GT(p.stats().samples, 9000u);
  EXPECT_GT(p.stats().samples_per_cycle(), 0.99);
}

TEST(Pipeline, ExpectedSarsaLearnsGrid) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.algorithm = Algorithm::kExpectedSarsa;
  c.alpha = 0.2;
  c.epsilon = 0.25;
  c.seed = 9;
  c.max_episode_length = 256;
  Pipeline p(g, c);
  p.run_samples(400000);
  std::vector<ActionId> policy(g.num_states(), 0);
  for (StateId s = 0; s < g.num_states(); ++s) {
    double best = -1e300;
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      if (p.q_value(s, a) > best) {
        best = p.q_value(s, a);
        policy[s] = a;
      }
    }
  }
  int reached = 0, total = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_terminal(s)) continue;
    ++total;
    reached += env::rollout_steps(g, policy, s, 500) >= 0 ? 1 : 0;
  }
  EXPECT_GE(reached, total * 9 / 10);
  EXPECT_GT(p.stats().samples_per_cycle(), 0.99);
}

TEST(Pipeline, LearnsSlipperyGridToNearOptimal) {
  // Stochastic transitions through the noise LFSR: the learned Q must
  // approach the expectation-correct Q* from value iteration, and the
  // greedy policy should agree with the optimal one on most states.
  // Keep Q* inside the s9.8 range: intent-paid rewards inflate values
  // near the goal under slip (see env_test SlipperyGridIntentPaidRewards),
  // so the +255 default would saturate the fixed-point table.
  env::GridWorldConfig gc = grid(8, 8);
  gc.slip_probability = 0.2;
  gc.goal_reward = 100.0;
  gc.collision_penalty = 20.0;
  env::GridWorld g(gc);
  const auto vi = env::value_iteration(g, 0.9);

  // Run both greedy-maximum modes: stochastic targets make Q values
  // fluctuate downward, so the paper's raise-only Qmax table acquires a
  // structural upward bias; the exact row scan tracks Q* tightly. Both
  // still act near-optimally (greedy actions within 2.0 of v* under the
  // TRUE Q — plain argmax agreement is meaningless where several actions
  // tie at optimal).
  struct Outcome {
    double sup = 0.0, mean_signed = 0.0;
    int near_optimal = 0, total = 0;
  };
  auto run_mode = [&](QmaxMode mode) {
    PipelineConfig c;
    c.alpha = 0.02;  // stochastic targets need a small step size
    c.gamma = 0.9;
    c.seed = 12;
    c.max_episode_length = 512;
    c.qmax = mode;
    Pipeline p(g, c);
    p.run_samples(3000000);
    Outcome o;
    for (StateId s = 0; s < g.num_states(); ++s) {
      if (g.is_terminal(s)) continue;
      ++o.total;
      ActionId best = 0;
      double bq = -1e300;
      for (ActionId a = 0; a < g.num_actions(); ++a) {
        if (p.q_value(s, a) > bq) {
          bq = p.q_value(s, a);
          best = a;
        }
      }
      o.near_optimal += vi.q_at(g, s, best) >= vi.v[s] - 2.0 ? 1 : 0;
      const double e =
          p.q_value(s, vi.policy[s]) - vi.q_at(g, s, vi.policy[s]);
      o.mean_signed += e;
      o.sup = std::max(o.sup, std::abs(e));
    }
    o.mean_signed /= o.total;
    return o;
  };
  const Outcome mono = run_mode(QmaxMode::kMonotoneTable);
  const Outcome exact = run_mode(QmaxMode::kExactScan);

  EXPECT_EQ(mono.near_optimal, mono.total);
  EXPECT_EQ(exact.near_optimal, exact.total);
  // Exact scan: tight to Q* (sup within 5% of the reward scale).
  EXPECT_LT(exact.sup / 100.0, 0.05);
  // Monotone table: documented upward bias under stochastic dynamics.
  EXPECT_GT(mono.mean_signed, 5.0);
  EXPECT_GT(mono.mean_signed, 5.0 * std::abs(exact.mean_signed));
}

TEST(Pipeline, DoubleQLearnsGridAtFullRate) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.algorithm = Algorithm::kDoubleQ;
  c.alpha = 0.2;
  c.seed = 13;
  c.max_episode_length = 256;
  Pipeline p(g, c);
  p.run_samples(500000);
  std::vector<ActionId> policy(g.num_states(), 0);
  for (StateId s = 0; s < g.num_states(); ++s) {
    double best = -1e300;
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      if (p.q_value(s, a) > best) {
        best = p.q_value(s, a);
        policy[s] = a;
      }
    }
  }
  int reached = 0, total = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_terminal(s)) continue;
    ++total;
    reached += env::rollout_steps(g, policy, s, 500) >= 0 ? 1 : 0;
  }
  EXPECT_GE(reached, total * 9 / 10);
  EXPECT_GT(p.stats().samples_per_cycle(), 0.99);
  EXPECT_EQ(p.q_table().stats().port_conflicts, 0u);

  // The coin flip must actually distribute learning over BOTH tables (a
  // stuck select bit would still pass equivalence, since the golden
  // model would be equally stuck).
  std::uint64_t a_nonzero = 0, b_nonzero = 0, differ = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    for (ActionId act = 0; act < g.num_actions(); ++act) {
      a_nonzero += p.q_raw(s, act) != 0 ? 1u : 0u;
      b_nonzero += p.q2_raw(s, act) != 0 ? 1u : 0u;
      differ += p.q_raw(s, act) != p.q2_raw(s, act) ? 1u : 0u;
    }
  }
  EXPECT_GT(a_nonzero, 50u);
  EXPECT_GT(b_nonzero, 50u);
  EXPECT_GT(differ, 10u);  // finite-sample tables are not identical
}

TEST(Pipeline, DoubleQAvoidsTheOverestimationBias) {
  // The slippery-world companion to LearnsSlipperyGridToNearOptimal:
  // Double-Q's cross-table evaluation must not inherit the monotone
  // table's upward bias (it tends to sit at or slightly below Q*).
  env::GridWorldConfig gc = grid(8, 8);
  gc.slip_probability = 0.2;
  gc.goal_reward = 100.0;
  gc.collision_penalty = 20.0;
  env::GridWorld g(gc);
  const auto vi = env::value_iteration(g, 0.9);

  PipelineConfig c;
  c.algorithm = Algorithm::kDoubleQ;
  c.alpha = 0.02;
  c.gamma = 0.9;
  c.seed = 14;
  c.max_episode_length = 512;
  Pipeline p(g, c);
  p.run_samples(3000000);

  double mean_signed = 0.0;
  int total = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_terminal(s)) continue;
    ++total;
    mean_signed += p.q_value(s, vi.policy[s]) -
                   vi.q_at(g, s, vi.policy[s]);
  }
  mean_signed /= total;
  EXPECT_LT(mean_signed, 5.0);    // no monotone-style inflation (+14)
  EXPECT_GT(mean_signed, -15.0);  // and no collapse either
}

TEST(Pipeline, LargeStateSpaceSmokeTest) {
  // Paper case 5: |S| = 16384, |A| = 8 (128x128 grid) — the pipeline must
  // sustain rate and stay port-clean at scale.
  env::GridWorld g(grid(128, 128, 8));
  PipelineConfig c;
  c.seed = 8;
  Pipeline p(g, c);
  p.run_iterations(50000);
  EXPECT_GT(p.stats().samples_per_cycle(), 0.99);
  EXPECT_EQ(p.q_table().stats().port_conflicts, 0u);
}

}  // namespace
}  // namespace qta::qtaccel

#include <gtest/gtest.h>

#include <sstream>

#include "env/grid_map.h"
#include "env/value_iteration.h"
#include "qtaccel/pipeline.h"

namespace qta::env {
namespace {

constexpr const char* kMap =
    ". . # .\n"
    ". . # .\n"
    ". . . .\n"
    "# . . G\n";

TEST(GridMap, ParsesGeometry) {
  const GridWorldConfig c = parse_grid_map(kMap);
  EXPECT_EQ(c.width, 4u);
  EXPECT_EQ(c.height, 4u);
  EXPECT_EQ(c.goal_x.value(), 3u);
  EXPECT_EQ(c.goal_y.value(), 3u);
  ASSERT_EQ(c.extra_obstacles.size(), 3u);
}

TEST(GridMap, BuildsWorkingWorld) {
  GridWorld world(parse_grid_map(kMap));
  EXPECT_TRUE(world.is_obstacle(world.state_of(2, 0)));
  EXPECT_TRUE(world.is_obstacle(world.state_of(2, 1)));
  EXPECT_TRUE(world.is_obstacle(world.state_of(0, 3)));
  EXPECT_FALSE(world.is_obstacle(world.state_of(1, 1)));
  EXPECT_EQ(world.goal_state(), world.state_of(3, 3));
  // From (0,0) the goal is 6 moves away (Manhattan distance; the column-2
  // wall gap at row 2 lies on a shortest path anyway).
  const auto vi = value_iteration(world, 0.9);
  EXPECT_EQ(rollout_steps(world, vi.policy, world.state_of(0, 0), 100), 6);
}

TEST(GridMap, CompactTokensWithoutSpaces) {
  const GridWorldConfig c = parse_grid_map("..#.\n...#\n....\n...G\n");
  EXPECT_EQ(c.width, 4u);
  EXPECT_EQ(c.extra_obstacles.size(), 2u);
}

TEST(GridMap, RoundTripsThroughToString) {
  GridWorld world(parse_grid_map(kMap));
  const std::string rendered = grid_map_to_string(world);
  GridWorld again(parse_grid_map(rendered));
  EXPECT_EQ(grid_map_to_string(again), rendered);
}

TEST(GridMap, BaseConfigCarriesRewards) {
  GridWorldConfig base;
  base.goal_reward = 10.0;
  base.num_actions = 8;
  const GridWorldConfig c = parse_grid_map(kMap, base);
  EXPECT_DOUBLE_EQ(c.goal_reward, 10.0);
  EXPECT_EQ(c.num_actions, 8u);
}

TEST(GridMap, RejectsMalformedMaps) {
  EXPECT_DEATH(parse_grid_map(""), "no rows");
  EXPECT_DEATH(parse_grid_map("..\n...\n"), "differ in length");
  EXPECT_DEATH(parse_grid_map("...\n...\n...\n"), "powers of two");
  EXPECT_DEATH(parse_grid_map("....\n....\n....\n....\n"), "no goal");
  EXPECT_DEATH(parse_grid_map("G..G\n....\n....\n....\n"),
               "more than one goal");
  EXPECT_DEATH(parse_grid_map("..X.\n....\n....\n...G\n"), "cell must be");
}

TEST(GridMap, AcceleratorLearnsTheMappedWorld) {
  GridWorld world(parse_grid_map(kMap));
  qtaccel::PipelineConfig c;
  c.alpha = 0.2;
  c.seed = 4;
  c.max_episode_length = 256;
  qtaccel::Pipeline p(world, c);
  p.run_samples(100000);
  std::vector<ActionId> policy(world.num_states(), 0);
  for (StateId s = 0; s < world.num_states(); ++s) {
    double best = -1e300;
    for (ActionId a = 0; a < world.num_actions(); ++a) {
      if (p.q_value(s, a) > best) {
        best = p.q_value(s, a);
        policy[s] = a;
      }
    }
  }
  const auto vi = value_iteration(world, 0.9);
  for (StateId s = 0; s < world.num_states(); ++s) {
    if (world.is_terminal(s) || world.is_obstacle(s)) continue;
    EXPECT_EQ(rollout_steps(world, policy, s, 100),
              rollout_steps(world, vi.policy, s, 100))
        << "state " << s;
  }
}

}  // namespace
}  // namespace qta::env

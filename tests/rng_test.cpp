#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "rng/lfsr.h"
#include "rng/normal_clt.h"
#include "rng/xoshiro.h"

namespace qta::rng {
namespace {

// Maximal-length property: an LFSR of width w visits all 2^w - 1 nonzero
// states before repeating. Exhaustive for small widths.
class LfsrPeriodTest : public testing::TestWithParam<unsigned> {};

TEST_P(LfsrPeriodTest, IsMaximalLength) {
  const unsigned width = GetParam();
  Lfsr lfsr(width, 1);
  const std::uint64_t period = (std::uint64_t{1} << width) - 1;
  const std::uint64_t start = lfsr.state();
  std::uint64_t steps = 0;
  do {
    const std::uint64_t s = lfsr.step();
    ASSERT_NE(s, 0u) << "LFSR reached the absorbing zero state";
    ++steps;
    ASSERT_LE(steps, period);
  } while (lfsr.state() != start);
  EXPECT_EQ(steps, period);
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrPeriodTest,
                         testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                         10u, 11u, 12u, 13u, 14u, 15u, 16u,
                                         17u, 18u));

// Larger widths: verify a long run produces no zero state and no short
// cycle within a window.
class LfsrWideTest : public testing::TestWithParam<unsigned> {};

TEST_P(LfsrWideTest, NoShortCycle) {
  const unsigned width = GetParam();
  Lfsr lfsr(width, 0xdeadbeefcafeULL);
  const std::uint64_t start = lfsr.state();
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t s = lfsr.step();
    ASSERT_NE(s, 0u);
    ASSERT_NE(s, start) << "cycle shorter than 100000 at width " << width;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrWideTest,
                         testing::Values(24u, 32u, 40u, 48u, 56u, 64u));

TEST(Lfsr, ZeroSeedIsFixedUp) {
  Lfsr lfsr(16, 0);
  EXPECT_NE(lfsr.state(), 0u);
}

TEST(Lfsr, SeedIsMasked) {
  Lfsr lfsr(8, 0xFFFF);
  EXPECT_LE(lfsr.state(), 0xFFu);
}

TEST(Lfsr, DrawBitsWidths) {
  Lfsr lfsr(32, 99);
  for (unsigned n = 1; n <= 64; ++n) {
    const std::uint64_t v = lfsr.draw_bits(n);
    if (n < 64) {
      EXPECT_LT(v, std::uint64_t{1} << n) << n;
    }
  }
}

TEST(Lfsr, DrawBitsRoughlyUniform) {
  Lfsr lfsr(32, 7);
  // Count ones across many 32-bit draws; expect ~50%.
  std::uint64_t ones = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    ones += static_cast<std::uint64_t>(__builtin_popcountll(
        lfsr.draw_bits(32)));
  }
  const double frac =
      static_cast<double>(ones) / (32.0 * static_cast<double>(draws));
  EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(Lfsr, BelowStaysInBounds) {
  Lfsr lfsr(32, 3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 5ull, 100ull, 262144ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(lfsr.below(bound), bound);
    }
  }
}

TEST(Lfsr, BelowCoversRange) {
  Lfsr lfsr(32, 13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(lfsr.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Lfsr, DeterministicForSeed) {
  Lfsr a(32, 42), b(32, 42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.step(), b.step());
}

TEST(Lfsr, Period) {
  EXPECT_EQ(Lfsr(16).period(), 65535u);
  EXPECT_EQ(Lfsr(32).period(), 4294967295u);
}

TEST(Lfsr, FlipFlops) { EXPECT_EQ(Lfsr(24).flip_flops(), 24u); }

TEST(NormalClt, MeanAndStddev) {
  NormalClt gen(123);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = gen.sample_standard();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(NormalClt, ScaledSample) {
  NormalClt gen(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += gen.sample(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(NormalClt, BoundedSupport) {
  // Irwin-Hall with k=12: support is +/- sqrt(12)/2 * ... => |x| <= 6.
  NormalClt gen(9, 12);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LE(std::abs(gen.sample_standard()), 6.001);
  }
}

TEST(NormalClt, FixedPointSample) {
  NormalClt gen(77);
  const fixed::Format f{18, 8};
  for (int i = 0; i < 100; ++i) {
    const fixed::raw_t r = gen.sample_fixed(0.0, 1.0, f);
    EXPECT_GE(r, f.min_raw());
    EXPECT_LE(r, f.max_raw());
  }
}

TEST(NormalClt, RoughlyGaussianShape) {
  // ~68% of samples within one stddev.
  NormalClt gen(31);
  int within = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    if (std::abs(gen.sample_standard()) <= 1.0) ++within;
  }
  EXPECT_NEAR(static_cast<double>(within) / n, 0.6827, 0.02);
}

TEST(Xoshiro, Deterministic) {
  Xoshiro256 a(1), b(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, BelowUnbiasedCoverage) {
  Xoshiro256 rng(2);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Xoshiro, UniformInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro, BernoulliFrequency) {
  Xoshiro256 rng(4);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(SplitMix, DistinctStreams) {
  SplitMix64 sm(1);
  const std::uint64_t a = sm.next();
  const std::uint64_t b = sm.next();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace qta::rng

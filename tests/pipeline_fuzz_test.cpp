// Randomized equivalence fuzzing: many random MDP shapes, parameters and
// seeds, each checked for bit-exact pipeline-vs-sequential agreement.
// This is the wide net behind the targeted cases in
// pipeline_equivalence_test.cpp — any hazard-window or RNG-ordering bug
// that slips those shapes should land somewhere in this sweep.
#include <gtest/gtest.h>

#include <memory>

#include "env/random_mdp.h"
#include "qtaccel/golden_model.h"
#include "qtaccel/pipeline.h"
#include "rng/xoshiro.h"

namespace qta::qtaccel {
namespace {

class FuzzEquivalence : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzEquivalence, RandomConfigMatches) {
  rng::Xoshiro256 meta(GetParam() * 0x9e3779b97f4a7c15ULL + 17);

  env::RandomMdpConfig mc;
  const StateId sizes[] = {2, 3, 4, 7, 16, 33, 64};
  mc.num_states = sizes[meta.below(7)];
  const ActionId acts[] = {2, 4, 8};
  mc.num_actions = acts[meta.below(3)];
  mc.seed = meta.next();
  mc.reward_lo = meta.uniform(-300.0, 0.0);
  mc.reward_hi = mc.reward_lo + meta.uniform(0.1, 500.0);
  mc.terminal_fraction = meta.bernoulli(0.5) ? meta.uniform(0.0, 0.4) : 0.0;
  mc.ring = meta.bernoulli(0.25);
  mc.self_loop = !mc.ring && meta.bernoulli(0.25);
  env::RandomMdp mdp(mc);

  PipelineConfig config;
  const Algorithm algos[] = {Algorithm::kQLearning, Algorithm::kSarsa,
                             Algorithm::kExpectedSarsa,
                             Algorithm::kDoubleQ};
  config.algorithm = algos[meta.below(4)];
  config.qmax = meta.bernoulli(0.5) ? QmaxMode::kMonotoneTable
                                    : QmaxMode::kExactScan;
  config.hazard =
      meta.bernoulli(0.15) ? HazardMode::kStall : HazardMode::kForward;
  config.alpha = meta.uniform(0.01, 1.0);
  config.gamma = meta.uniform(0.0, 0.99);
  config.epsilon = meta.uniform(0.0, 1.0);
  config.epsilon_bits = 8 + static_cast<unsigned>(meta.below(9));
  config.seed = meta.next();
  config.max_episode_length = 1 + meta.below(300);

  constexpr std::uint64_t kIterations = 1500;
  GoldenModel golden(mdp, config);
  std::vector<SampleTrace> gt;
  golden.set_trace(&gt);
  golden.run(kIterations);

  Pipeline pipeline(mdp, config);
  std::vector<SampleTrace> pt;
  pipeline.set_trace(&pt);
  pipeline.run_iterations(kIterations);

  ASSERT_EQ(gt.size(), pt.size());
  for (std::size_t i = 0; i < gt.size(); ++i) {
    ASSERT_EQ(gt[i], pt[i]) << "divergence at iteration " << i;
  }
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    for (ActionId a = 0; a < mdp.num_actions(); ++a) {
      ASSERT_EQ(golden.q_raw(s, a), pipeline.q_raw(s, a));
      if (config.algorithm == Algorithm::kDoubleQ) {
        ASSERT_EQ(golden.q2_raw(s, a), pipeline.q2_raw(s, a));
      }
    }
  }
  EXPECT_EQ(pipeline.q_table().stats().port_conflicts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         testing::Range<std::uint64_t>(0, 80));

}  // namespace
}  // namespace qta::qtaccel

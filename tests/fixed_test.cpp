#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "fixed/exp_lut.h"
#include "fixed/fixed_point.h"
#include "rng/xoshiro.h"

namespace qta::fixed {
namespace {

TEST(Format, Ranges) {
  const Format f{18, 8};  // s9.8
  EXPECT_EQ(f.int_bits(), 9u);
  EXPECT_EQ(f.max_raw(), (1 << 17) - 1);
  EXPECT_EQ(f.min_raw(), -(1 << 17));
  EXPECT_DOUBLE_EQ(f.resolution(), 1.0 / 256.0);
  EXPECT_NEAR(f.max_value(), 511.996, 0.001);
  EXPECT_DOUBLE_EQ(f.min_value(), -512.0);
}

TEST(Format, ToString) {
  EXPECT_EQ(to_string(Format{18, 8}), "s9.8 (18b)");
  EXPECT_EQ(to_string(Format{18, 16}), "s1.16 (18b)");
}

TEST(Conversion, RoundTripExactValues) {
  const Format f{18, 8};
  for (double v : {0.0, 1.0, -1.0, 0.5, -0.5, 255.0, -255.0, 511.0,
                   0.00390625 /* 2^-8 */}) {
    EXPECT_DOUBLE_EQ(to_double(from_double(v, f), f), v) << v;
  }
}

TEST(Conversion, RoundsHalfAwayFromZero) {
  const Format f{18, 8};
  // 0.001953125 = 0.5 * 2^-8: rounds to 1 raw ulp.
  EXPECT_EQ(from_double(0.001953125, f), 1);
  EXPECT_EQ(from_double(-0.001953125, f), -1);
}

TEST(Conversion, SaturatesAtBounds) {
  const Format f{18, 8};
  EXPECT_EQ(from_double(1e9, f), f.max_raw());
  EXPECT_EQ(from_double(-1e9, f), f.min_raw());
}

TEST(Conversion, QuantizationErrorWithinHalfUlp) {
  const Format f{18, 8};
  rng::Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(-500.0, 500.0);
    const double back = to_double(from_double(v, f), f);
    EXPECT_LE(std::abs(back - v), f.resolution() / 2.0 + 1e-12) << v;
  }
}

TEST(SatAdd, SaturatesAndFlags) {
  const Format f{18, 8};
  bool sat = false;
  EXPECT_EQ(sat_add(f.max_raw(), 1, f, &sat), f.max_raw());
  EXPECT_TRUE(sat);
  sat = false;
  EXPECT_EQ(sat_add(f.min_raw(), -1, f, &sat), f.min_raw());
  EXPECT_TRUE(sat);
  sat = false;
  EXPECT_EQ(sat_add(100, 28, f, &sat), 128);
  EXPECT_FALSE(sat);
}

TEST(SatSub, Works) {
  const Format f{18, 8};
  const raw_t one = from_double(1.0, f);
  const raw_t half = from_double(0.5, f);
  EXPECT_EQ(sat_sub(one, half, f), half);
  bool sat = false;
  EXPECT_EQ(sat_sub(f.min_raw(), 1, f, &sat), f.min_raw());
  EXPECT_TRUE(sat);
}

TEST(Mul, ExactProducts) {
  const Format q{18, 8};
  const Format c{18, 16};
  // 2.0 (q) * 0.5 (c) = 1.0 (q)
  EXPECT_EQ(mul(from_double(2.0, q), q, from_double(0.5, c), c, q),
            from_double(1.0, q));
  // -4.0 * 0.25 = -1.0
  EXPECT_EQ(mul(from_double(-4.0, q), q, from_double(0.25, c), c, q),
            from_double(-1.0, q));
}

TEST(Mul, MatchesDoubleWithinUlp) {
  const Format q{18, 8};
  const Format c{18, 16};
  rng::Xoshiro256 rng(2);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform(-400.0, 400.0);
    const double b = rng.uniform(0.0, 1.0);
    const raw_t ra = from_double(a, q);
    const raw_t rb = from_double(b, c);
    const double exact = to_double(ra, q) * to_double(rb, c);
    const double got = to_double(mul(ra, q, rb, c, q), q);
    EXPECT_LE(std::abs(got - exact), q.resolution() / 2.0 + 1e-12)
        << a << " * " << b;
  }
}

TEST(Mul, RoundingIsSymmetric) {
  const Format q{18, 8};
  const Format c{18, 16};
  const raw_t b = from_double(0.3, c);
  for (raw_t a = -600; a <= 600; a += 7) {
    const raw_t pos = mul(a, q, b, c, q);
    const raw_t neg = mul(-a, q, b, c, q);
    EXPECT_EQ(pos, -neg) << a;
  }
}

TEST(Mul, SaturationFlag) {
  const Format q{18, 8};
  const Format wide{18, 2};  // values up to ~16000
  bool sat = false;
  // 500 * 500 in s9.8 -> way past max -> saturate.
  mul(from_double(500.0, q), q, from_double(500.0, wide), wide, q, &sat);
  EXPECT_TRUE(sat);
}

TEST(Convert, BetweenFormats) {
  const Format a{18, 8};
  const Format b{18, 16};
  const raw_t half_a = from_double(0.5, a);
  EXPECT_EQ(convert(half_a, a, b), from_double(0.5, b));
  // Down-conversion rounds.
  const raw_t tiny_b = from_double(0.0000152587890625, b);  // 2^-16
  EXPECT_EQ(convert(tiny_b, b, a), 0);
}

TEST(Value, Wrapper) {
  const Value v = Value::of(1.5, Format{18, 8});
  EXPECT_DOUBLE_EQ(v.as_double(), 1.5);
}

// Property sweep over several formats: add is commutative, mul by the
// coefficient 1.0 is identity, and saturation clamps monotonically.
class FormatPropertyTest : public testing::TestWithParam<Format> {};

TEST_P(FormatPropertyTest, MulByOneIsIdentity) {
  const Format f = GetParam();
  const Format c{18, 16};
  const raw_t one = from_double(1.0, c);
  rng::Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) {
    const raw_t v = from_double(
        rng.uniform(f.min_value() * 0.9, f.max_value() * 0.9), f);
    EXPECT_EQ(mul(v, f, one, c, f), v);
  }
}

TEST_P(FormatPropertyTest, AddCommutes) {
  const Format f = GetParam();
  rng::Xoshiro256 rng(4);
  for (int i = 0; i < 500; ++i) {
    const raw_t a = from_double(rng.uniform(-100.0, 100.0), f);
    const raw_t b = from_double(rng.uniform(-100.0, 100.0), f);
    EXPECT_EQ(sat_add(a, b, f), sat_add(b, a, f));
  }
}

TEST_P(FormatPropertyTest, SaturateIsIdempotent) {
  const Format f = GetParam();
  rng::Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    const raw_t v = static_cast<raw_t>(rng.next() >> 30) - (1ll << 33);
    const raw_t s1 = saturate(v, f);
    EXPECT_EQ(saturate(s1, f), s1);
    EXPECT_GE(s1, f.min_raw());
    EXPECT_LE(s1, f.max_raw());
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, FormatPropertyTest,
                         testing::Values(Format{18, 8}, Format{16, 8},
                                         Format{18, 12}, Format{32, 16},
                                         Format{24, 10}),
                         [](const testing::TestParamInfo<Format>& param_info) {
                           return "w" + std::to_string(param_info.param.width) +
                                  "f" + std::to_string(param_info.param.frac);
                         });

TEST(ExpLut, ApproximatesExp) {
  const ExpLut lut(-8.0, 8.0, 12, Format{32, 12});
  // Relative error should be small over the domain; absolute error is
  // dominated by the large end (exp(8) ~ 2981).
  for (double x = -8.0; x <= 8.0; x += 0.37) {
    EXPECT_NEAR(lut.eval_double(x), std::exp(x),
                std::exp(x) * 0.01 + 0.01)
        << x;
  }
}

TEST(ExpLut, ClampsDomain) {
  const ExpLut lut(-4.0, 4.0, 10, Format{32, 12});
  EXPECT_DOUBLE_EQ(lut.eval_double(-100.0), lut.eval_double(-4.0));
  EXPECT_DOUBLE_EQ(lut.eval_double(100.0), lut.eval_double(4.0));
}

TEST(ExpLut, FixedPointEval) {
  const ExpLut lut(-4.0, 4.0, 12, Format{32, 12});
  const Format arg{18, 8};
  const raw_t x = from_double(1.0, arg);
  EXPECT_NEAR(to_double(lut.eval(x, arg), lut.value_fmt()), std::exp(1.0),
              0.01);
}

TEST(ExpLut, ErrorBoundReported) {
  const ExpLut lut(-2.0, 2.0, 12, Format{32, 16});
  EXPECT_LT(lut.max_abs_error(), 0.005);
}

TEST(ExpLut, StorageBits) {
  const ExpLut lut(-2.0, 2.0, 10, Format{32, 16});
  EXPECT_EQ(lut.entries(), 1024u);
  EXPECT_EQ(lut.storage_bits(), 1024u * 32u);
}

}  // namespace
}  // namespace qta::fixed

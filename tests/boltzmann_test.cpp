#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "env/grid_world.h"
#include "env/random_mdp.h"
#include "env/value_iteration.h"
#include "qtaccel/boltzmann_pipeline.h"

namespace qta::qtaccel {
namespace {

env::GridWorldConfig grid(unsigned w, unsigned h, unsigned a = 4) {
  env::GridWorldConfig c;
  c.width = w;
  c.height = h;
  c.num_actions = a;
  return c;
}

TEST(Boltzmann, InitialPolicyIsUniform) {
  env::GridWorld g(grid(4, 4));
  BoltzmannConfig c;
  BoltzmannPipeline p(g, c);
  for (ActionId a = 0; a < 4; ++a) {
    EXPECT_NEAR(p.action_probability(0, a), 0.25, 1e-6);
  }
}

TEST(Boltzmann, SelectionMatchesStoredWeights) {
  env::GridWorld g(grid(4, 4));
  BoltzmannConfig c;
  c.seed = 2;
  BoltzmannPipeline p(g, c);
  // All weights equal: samples should cover all actions ~uniformly.
  std::array<int, 4> counts{};
  for (int i = 0; i < 40000; ++i) ++counts[p.sample_action_for_test(5)];
  for (int k : counts) {
    EXPECT_NEAR(static_cast<double>(k) / 40000.0, 0.25, 0.02);
  }
}

TEST(Boltzmann, WeightsTrackExpOfQOverT) {
  env::GridWorld g(grid(4, 4));
  BoltzmannConfig c;
  c.temperature = 64.0;  // Q/T stays inside the LUT domain for |Q| <= 512
  c.seed = 3;
  BoltzmannPipeline p(g, c);
  p.run_samples(50000);
  // Every visited (s, a) has weight == expLUT(Q / T) within LUT +
  // weight-quantization error.
  int checked = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      const double q = p.q_value(s, a);
      if (q == 0.0) continue;  // likely unvisited; init weight
      const double expect = std::exp(q / c.temperature);
      EXPECT_NEAR(p.weight(s, a), expect, 0.05 * expect + 0.15)
          << "s=" << s << " a=" << a;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(Boltzmann, LearnsGoalDirectedPolicy) {
  env::GridWorld g(grid(8, 8));
  BoltzmannConfig c;
  c.alpha = 0.2;
  c.temperature = 24.0;
  c.seed = 4;
  c.max_episode_length = 256;
  BoltzmannPipeline p(g, c);
  p.run_samples(600000);
  std::vector<ActionId> policy(g.num_states(), 0);
  for (StateId s = 0; s < g.num_states(); ++s) {
    double best = -1e300;
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      if (p.q_value(s, a) > best) {
        best = p.q_value(s, a);
        policy[s] = a;
      }
    }
  }
  int reached = 0, total = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_terminal(s)) continue;
    ++total;
    reached += env::rollout_steps(g, policy, s, 500) >= 0 ? 1 : 0;
  }
  EXPECT_GE(reached, total * 8 / 10);
}

TEST(Boltzmann, HighQActionsDominateAfterLearning) {
  env::GridWorld g(grid(4, 4));
  BoltzmannConfig c;
  c.alpha = 0.3;
  c.temperature = 32.0;
  c.seed = 5;
  c.max_episode_length = 128;
  BoltzmannPipeline p(g, c);
  p.run_samples(200000);
  // The cell left of the goal: moving right (into the goal, +255) must be
  // the single most probable action.
  const StateId s = g.state_of(2, 3);
  for (ActionId a = 0; a < 4; ++a) {
    if (a == 2) continue;
    EXPECT_GT(p.action_probability(s, 2), p.action_probability(s, a));
  }
  EXPECT_GT(p.action_probability(s, 2), 0.35);
}

TEST(Boltzmann, SelectionStallCycleAccounting) {
  env::GridWorld g(grid(4, 4));       // |A| = 4 -> 2 stall cycles
  env::GridWorld g8(grid(4, 4, 8));   // |A| = 8 -> 3 stall cycles
  BoltzmannConfig c;
  c.seed = 6;
  c.max_episode_length = 128;
  BoltzmannPipeline p4(g, c);
  BoltzmannPipeline p8(g8, c);
  p4.run_samples(10000);
  p8.run_samples(10000);
  EXPECT_NEAR(p4.stats().samples_per_cycle(), 1.0 / 3.0, 0.01);
  EXPECT_NEAR(p8.stats().samples_per_cycle(), 1.0 / 4.0, 0.01);
  EXPECT_EQ(p4.stats().selection_stall_cycles, 2u * p4.stats().samples);
}

TEST(Boltzmann, TemperatureControlsExploration) {
  // Hotter temperature => flatter learned distributions.
  env::GridWorld g(grid(4, 4));
  BoltzmannConfig hot, cold;
  hot.temperature = 512.0;
  cold.temperature = 48.0;
  hot.seed = cold.seed = 7;
  hot.max_episode_length = cold.max_episode_length = 128;
  BoltzmannPipeline ph(g, hot), pc(g, cold);
  ph.run_samples(150000);
  pc.run_samples(150000);
  const StateId s = g.state_of(2, 3);
  double hmax = 0.0, cmax = 0.0;
  for (ActionId a = 0; a < 4; ++a) {
    hmax = std::max(hmax, ph.action_probability(s, a));
    cmax = std::max(cmax, pc.action_probability(s, a));
  }
  EXPECT_LT(hmax, cmax);
}

TEST(Boltzmann, ResourcesIncludeProbabilityTable) {
  env::GridWorld g(grid(16, 16, 8));
  BoltzmannConfig c;
  BoltzmannPipeline p(g, c);
  const auto ledger = p.resources();
  bool has_prob = false;
  for (const auto& m : ledger.memories()) {
    if (m.name == "probability_table") has_prob = true;
  }
  EXPECT_TRUE(has_prob);
  EXPECT_EQ(ledger.dsp(), 5u);  // 4 datapath + 1 probability-scale
}

TEST(Boltzmann, WatchdogAndBubblesAccounted) {
  env::RandomMdpConfig mc;
  mc.num_states = 4;
  mc.num_actions = 4;
  mc.self_loop = true;
  env::RandomMdp m(mc);
  BoltzmannConfig c;
  c.max_episode_length = 50;
  c.seed = 8;
  BoltzmannPipeline p(m, c);
  p.run_samples(5000);
  EXPECT_EQ(p.stats().episodes, 100u);
}

}  // namespace
}  // namespace qta::qtaccel

// QTACCEL-SNAPSHOT v2/v3 contract tests: the fuzzed pause/resume
// invariant (run(N); save; load; run(M) is bit-identical to an
// uninterrupted continuation — trace, stats, tables, AND telemetry,
// with the save format fuzzed across v2 text and v3 binary),
// cross-backend restores in both directions, v3 full/delta round trips
// and cross-format equivalence, v1 warm-start sniffing, the backend
// registry, and rejection of corrupted/foreign/truncated streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "env/grid_world.h"
#include "runtime/backend_registry.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"
#include "runtime/table_io.h"
#include "telemetry/metrics.h"
#include "telemetry/pipeline_telemetry.h"

namespace qta::runtime {
namespace {

env::GridWorldConfig grid8() {
  env::GridWorldConfig c;
  c.width = 8;
  c.height = 8;
  c.num_actions = 4;
  return c;
}

void expect_same_tables(const Engine& a, const Engine& b,
                        const env::Environment& env,
                        const std::string& tag) {
  for (StateId s = 0; s < env.num_states(); ++s) {
    for (ActionId act = 0; act < env.num_actions(); ++act) {
      ASSERT_EQ(a.q_raw(s, act), b.q_raw(s, act)) << tag;
      if (a.config().algorithm == qtaccel::Algorithm::kDoubleQ) {
        ASSERT_EQ(a.q2_raw(s, act), b.q2_raw(s, act)) << tag;
      }
    }
    ASSERT_EQ(a.qmax_entry(s).value, b.qmax_entry(s).value) << tag;
    ASSERT_EQ(a.qmax_entry(s).action, b.qmax_entry(s).action) << tag;
  }
}

void expect_same_stats(const qtaccel::PipelineStats& a,
                       const qtaccel::PipelineStats& b,
                       const std::string& tag) {
  EXPECT_EQ(a.iterations, b.iterations) << tag;
  EXPECT_EQ(a.samples, b.samples) << tag;
  EXPECT_EQ(a.episodes, b.episodes) << tag;
  EXPECT_EQ(a.bubbles, b.bubbles) << tag;
  EXPECT_EQ(a.cycles, b.cycles) << tag;
  EXPECT_EQ(a.issued, b.issued) << tag;
  EXPECT_EQ(a.stall_cycles, b.stall_cycles) << tag;
  EXPECT_EQ(a.fwd_q_sa, b.fwd_q_sa) << tag;
  EXPECT_EQ(a.fwd_q_next, b.fwd_q_next) << tag;
  EXPECT_EQ(a.fwd_qmax, b.fwd_qmax) << tag;
  EXPECT_EQ(a.adder_saturations, b.adder_saturations) << tag;
}

// One fuzz case: random algorithm/qmax/hazard, random save and resume
// backends, random split point. The reference runs the SAME two chunks
// on one uninterrupted engine (on the resume backend — backends retire
// identical traces/stats, so this also covers the cross-backend pairs);
// the candidate pauses at the split through a serialized snapshot. The
// post-split trace, final stats, final tables, and the telemetry both
// sides aggregate over the second chunk must all be identical.
void check_resume_case(std::mt19937& rng, const std::string& tag) {
  env::GridWorld world(grid8());

  qtaccel::PipelineConfig base;
  base.algorithm =
      static_cast<qtaccel::Algorithm>(rng() % 4);
  base.qmax = static_cast<qtaccel::QmaxMode>(rng() % 2);
  base.hazard = static_cast<qtaccel::HazardMode>(rng() % 2);
  base.alpha = 0.2;
  base.gamma = 0.9;
  base.seed = 1 + rng() % 1000;
  base.max_episode_length = 128;

  const qtaccel::Backend save_backend = (rng() % 2 == 0)
                                            ? qtaccel::Backend::kCycleAccurate
                                            : qtaccel::Backend::kFast;
  const qtaccel::Backend resume_backend =
      (rng() % 2 == 0) ? qtaccel::Backend::kCycleAccurate
                       : qtaccel::Backend::kFast;
  const std::uint64_t split = 500 + rng() % 4000;
  const std::uint64_t total = split + 500 + rng() % 4000;
  const bool save_v3 = rng() % 2 == 0;

  const std::string what =
      tag + " [" + qtaccel::algorithm_name(base.algorithm) + " " +
      qtaccel::backend_name(save_backend) + "->" +
      qtaccel::backend_name(resume_backend) + " split=" +
      std::to_string(split) + " total=" + std::to_string(total) +
      (save_v3 ? " v3" : " v2") + "]";

  qtaccel::PipelineConfig rc = base;
  rc.backend = resume_backend;
  Engine ref(world, rc);
  std::vector<qtaccel::SampleTrace> ref_trace;
  ref.set_trace(&ref_trace);
  ref.run_samples(split);
  const std::size_t ref_prefix = ref_trace.size();

  qtaccel::PipelineConfig sc = base;
  sc.backend = save_backend;
  Engine saver(world, sc);
  saver.run_samples(split);
  std::stringstream snap;
  if (save_v3) {
    save_snapshot_v3(saver, snap);
  } else {
    save_snapshot(saver, snap);
  }

  Engine resumed(world, rc);
  load_snapshot(resumed, snap);
  std::vector<qtaccel::SampleTrace> resumed_trace;
  resumed.set_trace(&resumed_trace);

  // Both sinks attach at the same logical point (the split), so the
  // metrics each registry aggregates over the second chunk — cycle
  // attribution, forwarding hits, episode/stall histograms — must be
  // identical if the restore was truly bit-exact.
  telemetry::MetricsRegistry ref_metrics, resumed_metrics;
  {
    telemetry::PipelineTelemetry ref_sink(qtaccel::make_run_labels(rc),
                                          &ref_metrics, nullptr);
    telemetry::PipelineTelemetry resumed_sink(qtaccel::make_run_labels(rc),
                                              &resumed_metrics, nullptr);
    ref.set_telemetry(&ref_sink);
    resumed.set_telemetry(&resumed_sink);
    ref.run_samples(total);
    resumed.run_samples(total);
    ref.set_telemetry(nullptr);
    resumed.set_telemetry(nullptr);
  }

  ASSERT_EQ(ref_trace.size(), ref_prefix + resumed_trace.size()) << what;
  for (std::size_t i = 0; i < resumed_trace.size(); ++i) {
    ASSERT_TRUE(ref_trace[ref_prefix + i] == resumed_trace[i])
        << what << " trace diverged at " << i;
  }
  expect_same_stats(ref.stats(), resumed.stats(), what);
  EXPECT_EQ(ref.dsp_saturations(), resumed.dsp_saturations()) << what;
  expect_same_tables(ref, resumed, world, what);
  EXPECT_EQ(ref_metrics.json_text(), resumed_metrics.json_text()) << what;
}

TEST(SnapshotFuzz, RandomConfigAndSplitResumeBitExactly) {
  std::mt19937 rng(0xC0FFEE);
  for (int i = 0; i < 12; ++i) {
    check_resume_case(rng, "case " + std::to_string(i));
    if (HasFatalFailure()) return;
  }
}

TEST(Snapshot, CrossBackendResumeBothDirections) {
  // The fuzz test hits cross-backend pairs probabilistically; this one
  // pins both directions explicitly for every algorithm.
  env::GridWorld world(grid8());
  for (const auto algorithm :
       {qtaccel::Algorithm::kQLearning, qtaccel::Algorithm::kSarsa,
        qtaccel::Algorithm::kExpectedSarsa, qtaccel::Algorithm::kDoubleQ}) {
    for (const bool save_on_cycle : {true, false}) {
      qtaccel::PipelineConfig sc;
      sc.algorithm = algorithm;
      sc.seed = 7;
      sc.max_episode_length = 128;
      sc.backend = save_on_cycle ? qtaccel::Backend::kCycleAccurate
                                 : qtaccel::Backend::kFast;
      qtaccel::PipelineConfig rc = sc;
      rc.backend = save_on_cycle ? qtaccel::Backend::kFast
                                 : qtaccel::Backend::kCycleAccurate;

      Engine ref(world, rc);
      ref.run_samples(4000);
      ref.run_samples(10000);

      Engine saver(world, sc);
      saver.run_samples(4000);
      std::stringstream snap;
      save_snapshot(saver, snap);
      Engine resumed(world, rc);
      load_snapshot(resumed, snap);
      resumed.run_samples(10000);

      const std::string tag =
          std::string(qtaccel::algorithm_name(algorithm)) +
          (save_on_cycle ? " cycle->fast" : " fast->cycle");
      expect_same_stats(ref.stats(), resumed.stats(), tag);
      expect_same_tables(ref, resumed, world, tag);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(Snapshot, SniffsV1QtableMagicAsWarmStart) {
  // load_snapshot routes on the magic word: a v1 QTACCEL-QTABLE stream
  // warm-starts the Q table (preset_q + rebuild_qmax) instead of being
  // rejected as a foreign file.
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig c;
  c.seed = 5;
  c.max_episode_length = 128;
  Engine trained(world, c);
  trained.run_samples(30000);
  std::stringstream buf;
  save_q_table(buf, trained);  // writes the v1 format

  Engine fresh(world, c);
  load_snapshot(fresh, buf);
  for (StateId s = 0; s < world.num_states(); ++s) {
    for (ActionId a = 0; a < world.num_actions(); ++a) {
      ASSERT_EQ(fresh.q_raw(s, a), trained.q_raw(s, a));
    }
  }
  // Warm start, not a machine restore: counters stay at zero.
  EXPECT_EQ(fresh.stats().samples, 0u);
}

TEST(BackendRegistry, BuildsTheConfiguredBackend) {
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig c;
  c.backend = qtaccel::Backend::kCycleAccurate;
  const auto cycle = make_backend(world, c);
  EXPECT_EQ(cycle->kind(), qtaccel::Backend::kCycleAccurate);
  EXPECT_TRUE(cycle->has_waveforms());
  EXPECT_TRUE(cycle->has_single_cycle_step());
  EXPECT_NE(cycle->cycle_pipeline(), nullptr);

  c.backend = qtaccel::Backend::kFast;
  const auto fast = make_backend(world, c);
  EXPECT_EQ(fast->kind(), qtaccel::Backend::kFast);
  EXPECT_FALSE(fast->has_waveforms());
  EXPECT_FALSE(fast->has_port_audit());
  EXPECT_EQ(fast->cycle_pipeline(), nullptr);
}

std::unique_ptr<QrlBackend> aborting_factory(const env::Environment&,
                                             const qtaccel::PipelineConfig&) {
  QTA_CHECK_MSG(false, "out-of-tree backend factory invoked");
  return nullptr;
}

TEST(BackendRegistryDeath, RegisteredFactoryReplacesBuiltin) {
  // register_backend must win over the built-in adapter. Run inside the
  // death-test child so the parent process keeps the real fast backend.
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig c;
  c.backend = qtaccel::Backend::kFast;
  EXPECT_DEATH(
      {
        register_backend(qtaccel::Backend::kFast, &aborting_factory);
        Engine e(world, c);
      },
      "out-of-tree backend factory invoked");
}

std::string valid_snapshot_text(const env::Environment& env,
                                const qtaccel::PipelineConfig& c) {
  Engine e(env, c);
  e.run_samples(2000);
  std::stringstream buf;
  save_snapshot(e, buf);
  return buf.str();
}

TEST(SnapshotDeath, RejectsForeignAndCorruptedStreams) {
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig c;
  c.seed = 9;
  c.max_episode_length = 128;
  Engine target(world, c);
  const std::string good = valid_snapshot_text(world, c);

  {
    std::stringstream garbage("hello world");
    EXPECT_DEATH(load_snapshot(target, garbage),
                 "not a QTACCEL-QTABLE or QTACCEL-SNAPSHOT file");
  }
  {
    std::string future = good;
    future.replace(future.find("v2"), 2, "v9");
    std::stringstream in(future);
    EXPECT_DEATH(load_snapshot(target, in), "unsupported SNAPSHOT version");
  }
  {
    // Cut mid-payload: the word reads hit eof.
    std::stringstream in(good.substr(0, good.size() / 2));
    EXPECT_DEATH(load_snapshot(target, in), "truncated");
  }
  {
    // Remove the trailing sentinel only: every section parses, the
    // missing `end` is what catches it.
    std::string headless = good.substr(0, good.rfind("end"));
    std::stringstream in(headless);
    EXPECT_DEATH(load_snapshot(target, in),
                 "truncated or malformed snapshot header");
  }
}

TEST(Snapshot, TryLoadReportsFailuresWithoutAborting) {
  // try_load_snapshot is the non-aborting twin of load_snapshot (the
  // fuzz harness's entry point): same sniffing and diagnostics, but a
  // bad stream returns false and the message load_snapshot would have
  // died with.
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig c;
  c.seed = 9;
  c.max_episode_length = 128;
  Engine target(world, c);
  const std::string good = valid_snapshot_text(world, c);
  std::string error;

  {
    std::stringstream garbage("hello world");
    EXPECT_FALSE(try_load_snapshot(target, garbage, &error));
    EXPECT_NE(
        error.find("not a QTACCEL-QTABLE or QTACCEL-SNAPSHOT file"),
        std::string::npos);
  }
  {
    std::string future = good;
    future.replace(future.find("v2"), 2, "v9");
    std::stringstream in(future);
    EXPECT_FALSE(try_load_snapshot(target, in, &error));
    EXPECT_NE(error.find("unsupported SNAPSHOT version"),
              std::string::npos);
  }
  {
    std::stringstream in(good.substr(0, good.size() / 2));
    EXPECT_FALSE(try_load_snapshot(target, in, &error));
    EXPECT_NE(error.find("truncated"), std::string::npos);
  }
  {
    // The failure message carries the source context, exactly like the
    // aborting path's diagnostic.
    std::stringstream in("junk");
    EXPECT_FALSE(try_load_snapshot(target, in, &error,
                                   SnapshotSource{"ckpt.txt", 2}));
    EXPECT_NE(error.find("(ckpt.txt, pipe 2)"), std::string::npos);
    // A null error pointer is legal (caller only wants the bool).
    std::stringstream again("junk");
    EXPECT_FALSE(try_load_snapshot(target, again, nullptr));
  }
}

TEST(Snapshot, TryLoadSucceedsOnV2AndV1Streams) {
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig c;
  c.seed = 9;
  c.max_episode_length = 128;
  std::string error = "untouched on success";

  // v2 machine restore.
  const std::string good = valid_snapshot_text(world, c);
  Engine restored(world, c);
  std::stringstream in(good);
  EXPECT_TRUE(try_load_snapshot(restored, in, &error));
  EXPECT_EQ(error, "untouched on success");
  // Counters came from the snapshot (the pipeline may retire a few
  // in-flight samples past the requested 2000 before draining).
  EXPECT_GE(restored.stats().samples, 2000u);

  // v1 warm start through the same sniffing path.
  Engine trained(world, c);
  trained.run_samples(2000);
  std::stringstream v1;
  save_q_table(v1, trained);
  Engine warm(world, c);
  EXPECT_TRUE(try_load_snapshot(warm, v1, &error));
  EXPECT_EQ(warm.q_raw(0, 0), trained.q_raw(0, 0));
  EXPECT_EQ(warm.stats().samples, 0u);  // warm start, not a restore
}

TEST(Snapshot, TryLoadV2FailureLeavesEngineUntouched) {
  // The v2 path validates the whole stream before load_state, so a
  // failed try_load leaves the target exactly as it was.
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig c;
  c.seed = 9;
  c.max_episode_length = 128;
  const std::string good = valid_snapshot_text(world, c);

  Engine target(world, c);
  target.run_samples(777);
  const auto samples_before = target.stats().samples;
  const auto q00 = target.q_raw(0, 0);
  std::stringstream in(good.substr(0, good.size() / 2));
  EXPECT_FALSE(try_load_snapshot(target, in, nullptr));
  EXPECT_EQ(target.stats().samples, samples_before);
  EXPECT_EQ(target.q_raw(0, 0), q00);
}

TEST(SnapshotDeath, FileDiagnosticsNameThePath) {
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig c;
  c.seed = 9;
  c.max_episode_length = 128;
  Engine target(world, c);

  EXPECT_DEATH(
      load_snapshot_file(target, "/nonexistent/qta_snap_nope.txt"),
      "cannot open snapshot file for reading.*qta_snap_nope");

  // A corrupted file's parse diagnostic carries the path too.
  const std::string good = valid_snapshot_text(world, c);
  const std::string path =
      testing::TempDir() + "qta_snap_truncated.txt";
  {
    std::ofstream os(path);
    os << good.substr(0, good.size() / 2);
  }
  EXPECT_DEATH(load_snapshot_file(target, path),
               "truncated.*qta_snap_truncated");
}

TEST(Snapshot, SourceDescribeFormats) {
  EXPECT_EQ(SnapshotSource{}.describe(), "");
  EXPECT_EQ((SnapshotSource{"ckpt.txt", -1}).describe(), " (ckpt.txt)");
  EXPECT_EQ((SnapshotSource{"ckpt.txt", 3}).describe(),
            " (ckpt.txt, pipe 3)");
  EXPECT_EQ((SnapshotSource{"", 0}).describe(), " (pipe 0)");
}

TEST(SnapshotDeath, RejectsFingerprintAndGeometryMismatch) {
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig c;
  c.seed = 9;
  c.max_episode_length = 128;
  const std::string good = valid_snapshot_text(world, c);

  {
    qtaccel::PipelineConfig other = c;
    other.alpha = 0.25;
    Engine target(world, other);
    std::stringstream in(good);
    EXPECT_DEATH(load_snapshot(target, in),
                 "snapshot fingerprint does not match");
  }
  {
    env::GridWorldConfig gc = grid8();
    gc.width = 16;
    env::GridWorld bigger(gc);
    Engine target(bigger, c);
    std::stringstream in(good);
    EXPECT_DEATH(load_snapshot(target, in),
                 "snapshot geometry does not match");
  }
  {
    // Same geometry/rates but the wrong algorithm: the fingerprint (not
    // the table-shape check) must reject it.
    qtaccel::PipelineConfig other = c;
    other.algorithm = qtaccel::Algorithm::kSarsa;
    Engine target(world, other);
    std::stringstream in(good);
    EXPECT_DEATH(load_snapshot(target, in),
                 "snapshot fingerprint does not match");
  }
}

TEST(Snapshot, SeedAndBackendAreNotPartOfTheFingerprint) {
  // The live RNG registers travel in the snapshot; the seed only chose
  // their t=0 value. A restore into an engine built with a different
  // seed (or backend) must succeed and still resume bit-exactly.
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig c;
  c.seed = 3;
  c.max_episode_length = 128;
  Engine ref(world, c);
  ref.run_samples(3000);
  std::stringstream snap;
  save_snapshot(ref, snap);
  ref.run_samples(8000);

  qtaccel::PipelineConfig other = c;
  other.seed = 4444;
  other.backend = qtaccel::Backend::kFast;
  Engine resumed(world, other);
  load_snapshot(resumed, snap);
  resumed.run_samples(8000);
  expect_same_stats(ref.stats(), resumed.stats(), "seed/backend");
  expect_same_tables(ref, resumed, world, "seed/backend");
}

std::vector<qtaccel::Backend> all_backends() {
  return {qtaccel::Backend::kCycleAccurate, qtaccel::Backend::kFast,
          qtaccel::Backend::kLanes};
}

TEST(SnapshotV3, FullRoundTripBitExactOnAllBackends) {
  env::GridWorld world(grid8());
  for (const auto backend : all_backends()) {
    qtaccel::PipelineConfig c;
    c.backend = backend;
    c.seed = 11;
    c.max_episode_length = 128;
    const std::string tag =
        std::string("v3 full ") + qtaccel::backend_name(backend);

    Engine ref(world, c);
    ref.run_samples(3000);
    ref.run_samples(8000);

    Engine saver(world, c);
    saver.run_samples(3000);
    std::stringstream snap;
    save_snapshot_v3(saver, snap);
    Engine resumed(world, c);
    load_snapshot(resumed, snap);
    resumed.run_samples(8000);

    expect_same_stats(ref.stats(), resumed.stats(), tag);
    expect_same_tables(ref, resumed, world, tag);
    if (HasFatalFailure()) return;
  }
}

TEST(SnapshotV3, CrossFormatRoundTripIsByteIdentical) {
  // v2 -> v3 -> v2 must reproduce the original v2 text byte for byte:
  // both formats carry exactly the MachineState fields, nothing lossy.
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig c;
  c.algorithm = qtaccel::Algorithm::kDoubleQ;  // exercises q2 too
  c.seed = 11;
  c.max_episode_length = 128;
  Engine e(world, c);
  e.run_samples(5000);

  std::stringstream v2_text, v3_bin;
  save_snapshot(e, v2_text);
  save_snapshot_v3(e, v3_bin);
  // v3's size is a pure function of the geometry — fixed-width words,
  // unlike text whose size tracks the printed magnitude of every value.
  qtaccel::PipelineConfig other = c;
  other.seed = 4242;
  Engine e2(world, other);
  e2.run_samples(12000);
  std::stringstream v3_other;
  save_snapshot_v3(e2, v3_other);
  EXPECT_EQ(v3_bin.str().size(), v3_other.str().size());

  Engine via_v3(world, c);
  load_snapshot(via_v3, v3_bin);
  std::stringstream v2_again;
  save_snapshot(via_v3, v2_again);
  EXPECT_EQ(v2_again.str(), v2_text.str());
}

TEST(SnapshotV3, DeltaChainReplayMatchesFullStateOnAllBackends) {
  // Base + delta must reproduce the saver's state byte-identically AND
  // resume bit-exactly: run(N); base; run(M); delta; replay; run(K) ==
  // run(N); run(M); run(K) uninterrupted.
  env::GridWorld world(grid8());
  for (const auto backend : all_backends()) {
    for (const auto algorithm : {qtaccel::Algorithm::kQLearning,
                                 qtaccel::Algorithm::kDoubleQ}) {
      qtaccel::PipelineConfig c;
      c.backend = backend;
      c.algorithm = algorithm;
      c.seed = 13;
      c.max_episode_length = 128;
      const std::string tag = std::string("delta ") +
                              qtaccel::backend_name(backend) + " " +
                              qtaccel::algorithm_name(algorithm);

      Engine saver(world, c);
      saver.run_samples(2000);
      std::stringstream base;
      save_snapshot_v3(saver, base);
      saver.reset_dirty_rows();  // the delta epoch starts at the base
      saver.run_samples(4000);
      std::stringstream delta;
      write_snapshot_delta(delta, saver.config(), saver.environment(),
                           saver.save_state());

      qtaccel::MachineState ms = read_snapshot(base, c, world);
      apply_snapshot_delta(delta, c, world, ms);
      Engine resumed(world, c);
      resumed.load_state(ms);

      // Replayed state is byte-identical to the saver's...
      std::stringstream from_saver, from_replay;
      save_snapshot(saver, from_saver);
      save_snapshot(resumed, from_replay);
      ASSERT_EQ(from_replay.str(), from_saver.str()) << tag;

      // ...and resumes bit-exactly against an uninterrupted run.
      Engine ref(world, c);
      ref.run_samples(2000);
      ref.run_samples(4000);
      ref.run_samples(9000);
      resumed.run_samples(9000);
      expect_same_stats(ref.stats(), resumed.stats(), tag);
      expect_same_tables(ref, resumed, world, tag);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(SnapshotV3, DeltaEpochTracksOnlyTouchedRows) {
  // On a big world a short epoch touches few rows, and the delta byte
  // estimate that motivates the whole format holds: the delta is far
  // smaller than a full image.
  env::GridWorldConfig gc;
  gc.width = 16;
  gc.height = 16;
  gc.num_actions = 4;
  env::GridWorld world(gc);
  qtaccel::PipelineConfig c;
  c.backend = qtaccel::Backend::kFast;
  c.seed = 17;
  c.max_episode_length = 64;

  Engine e(world, c);
  e.run_samples(500);
  std::stringstream base;
  save_snapshot_v3(e, base);
  e.reset_dirty_rows();
  EXPECT_EQ(e.dirty_row_count(), 0u);
  e.run_samples(600);  // a 100-sample epoch touches at most 100 rows
  EXPECT_GT(e.dirty_row_count(), 0u);
  EXPECT_LT(e.dirty_row_count(), world.num_states() / 2);

  std::stringstream delta;
  write_snapshot_delta(delta, e.config(), e.environment(), e.save_state());
  EXPECT_LT(delta.str().size(), base.str().size() / 2);
}

TEST(SnapshotV3, CrossBackendDeltaReplay) {
  // A delta written on one backend applies onto a base written on
  // another: DirtyRows is part of the backend-neutral machine state.
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig cycle_cfg;
  cycle_cfg.backend = qtaccel::Backend::kCycleAccurate;
  cycle_cfg.seed = 19;
  cycle_cfg.max_episode_length = 128;
  qtaccel::PipelineConfig fast_cfg = cycle_cfg;
  fast_cfg.backend = qtaccel::Backend::kFast;

  Engine cycle_engine(world, cycle_cfg);
  cycle_engine.run_samples(2000);
  std::stringstream base;
  save_snapshot_v3(cycle_engine, base);

  // Hand the state to the fast backend mid-epoch through the snapshot.
  Engine fast_engine(world, fast_cfg);
  {
    std::stringstream base_copy(base.str());
    load_snapshot(fast_engine, base_copy);
  }
  fast_engine.reset_dirty_rows();
  fast_engine.run_samples(4000);
  std::stringstream delta;
  write_snapshot_delta(delta, fast_engine.config(),
                       fast_engine.environment(), fast_engine.save_state());

  qtaccel::MachineState ms = read_snapshot(base, cycle_cfg, world);
  apply_snapshot_delta(delta, cycle_cfg, world, ms);
  Engine resumed(world, cycle_cfg);
  resumed.load_state(ms);
  std::stringstream expect_text, got_text;
  save_snapshot(fast_engine, expect_text);
  save_snapshot(resumed, got_text);
  EXPECT_EQ(got_text.str(), expect_text.str());
}

std::string valid_v3_snapshot(const env::Environment& env,
                              const qtaccel::PipelineConfig& c) {
  Engine e(env, c);
  e.run_samples(2000);
  std::stringstream buf;
  save_snapshot_v3(e, buf);
  return buf.str();
}

TEST(SnapshotV3Death, RejectsCorruptAndMisusedStreams) {
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig c;
  c.seed = 9;
  c.max_episode_length = 128;
  Engine target(world, c);
  const std::string good = valid_v3_snapshot(world, c);

  {
    // Truncation mid-payload: the binary reader names the byte offset.
    std::stringstream in(good.substr(0, good.size() / 2));
    EXPECT_DEATH(load_snapshot(target, in),
                 "truncated snapshot payload.* at byte ");
  }
  {
    // Chop the end sentinel: everything parses, the sentinel catches it.
    std::stringstream in(good.substr(0, good.size() - 9));
    EXPECT_DEATH(load_snapshot(target, in), "truncated snapshot payload");
  }
  {
    // Corrupt the sentinel in place.
    std::string bad = good;
    bad[bad.size() - 5] = 'X';
    std::stringstream in(bad);
    EXPECT_DEATH(load_snapshot(target, in),
                 "malformed snapshot end sentinel");
  }
  {
    // A standalone delta is not a full image.
    Engine e(world, c);
    e.run_samples(2000);
    std::stringstream delta;
    write_snapshot_delta(delta, e.config(), e.environment(),
                         e.save_state());
    EXPECT_DEATH(load_snapshot(target, delta),
                 "snapshot delta without a base image");
  }
  {
    // And a full image is not a delta.
    qtaccel::MachineState ms;
    std::stringstream in(good);
    EXPECT_DEATH(apply_snapshot_delta(in, c, world, ms),
                 "expected a delta snapshot");
  }
  {
    // Source context rides along exactly like the v2 diagnostics.
    std::stringstream in(good.substr(0, good.size() / 2));
    EXPECT_DEATH(
        read_snapshot(in, c, world, SnapshotSource{"ckpt.bin", 2}),
        "truncated snapshot payload \\(ckpt\\.bin, pipe 2\\) at byte ");
  }
}

TEST(SnapshotV3, TryApplyDeltaReportsFailuresWithoutAborting) {
  env::GridWorld world(grid8());
  qtaccel::PipelineConfig c;
  c.seed = 9;
  c.max_episode_length = 128;
  const std::string base_text = valid_v3_snapshot(world, c);

  Engine e(world, c);
  {
    std::stringstream base_in(base_text);
    load_snapshot(e, base_in);
  }
  e.reset_dirty_rows();
  e.run_samples(4000);
  std::stringstream delta;
  write_snapshot_delta(delta, e.config(), e.environment(), e.save_state());
  const std::string delta_bytes = delta.str();
  std::string error;

  {
    // The happy path: base + delta applies cleanly.
    std::stringstream base_in(base_text);
    qtaccel::MachineState ms = read_snapshot(base_in, c, world);
    std::stringstream delta_in(delta_bytes);
    EXPECT_TRUE(try_apply_snapshot_delta(delta_in, c, world, ms, &error))
        << error;
  }
  {
    std::stringstream base_in(base_text);
    qtaccel::MachineState ms = read_snapshot(base_in, c, world);
    std::stringstream truncated(
        delta_bytes.substr(0, delta_bytes.size() / 2));
    EXPECT_FALSE(try_apply_snapshot_delta(truncated, c, world, ms, &error));
    EXPECT_NE(error.find("truncated snapshot payload"), std::string::npos);
    EXPECT_NE(error.find(" at byte "), std::string::npos);
  }
  {
    // A v2 text stream is not a delta carrier.
    Engine v2e(world, c);
    v2e.run_samples(1000);
    std::stringstream v2_text;
    save_snapshot(v2e, v2_text);
    std::stringstream base_in(base_text);
    qtaccel::MachineState ms = read_snapshot(base_in, c, world);
    EXPECT_FALSE(try_apply_snapshot_delta(v2_text, c, world, ms, &error));
    EXPECT_NE(error.find("snapshot delta must be a v3 stream"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace qta::runtime

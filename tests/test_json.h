// Minimal recursive-descent JSON parser shared by test TUs — just
// enough to validate JsonWriter output (trace files, metric dumps,
// flight-recorder dumps) without pulling a JSON library into the image.
// Validation-grade only: \uXXXX escapes are consumed, not decoded.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qta::testjson {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const { return object.count(key) != 0; }
  const JsonValue& at(const std::string& key) const {
    return object.at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return string(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return literal("null");
      default: return number(out);
    }
  }
  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return true;
  }
  bool string(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u':
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // consumed, not decoded — fine for validation
            out->push_back('?');
            break;
          default: out->push_back(esc);
        }
      } else {
        out->push_back(text_[pos_++]);
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool array(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      if (!value(&item)) return false;
      out->array.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool object(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue item;
      if (!value(&item)) return false;
      out->object[key] = std::move(item);
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace qta::testjson

#include <gtest/gtest.h>

#include "algo/lambda_returns.h"
#include "algo/q_learning.h"
#include "algo/sarsa.h"
#include "algo/trainer.h"
#include "env/grid_world.h"
#include "env/value_iteration.h"

namespace qta::algo {
namespace {

env::GridWorldConfig grid(unsigned w, unsigned h) {
  env::GridWorldConfig c;
  c.width = w;
  c.height = h;
  c.num_actions = 4;
  c.step_reward = -1.0;  // dense signal makes propagation measurable
  c.goal_reward = 100.0;
  c.collision_penalty = 5.0;
  return c;
}

double success_rate(const env::GridWorld& g, const TabularLearner& l) {
  const auto policy = l.greedy_policy();
  int reached = 0, total = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_terminal(s)) continue;
    ++total;
    reached += env::rollout_steps(g, policy, s, 500) >= 0 ? 1 : 0;
  }
  return static_cast<double>(reached) / total;
}

TEST(SarsaLambda, ConvergesOnGrid) {
  env::GridWorld g(grid(8, 8));
  LambdaOptions opt;
  opt.alpha = 0.15;
  opt.lambda = 0.85;
  opt.epsilon = 0.2;
  SarsaLambda learner(g, opt);
  TrainOptions topt;
  topt.total_samples = 200000;
  topt.max_steps_per_episode = 512;
  train(learner, topt);
  EXPECT_GT(success_rate(g, learner), 0.9);
}

TEST(SarsaLambda, LambdaZeroMatchesPlainSarsaQualitatively) {
  env::GridWorld g(grid(8, 8));
  LambdaOptions opt;
  opt.lambda = 0.0;
  opt.alpha = 0.2;
  opt.epsilon = 0.2;
  SarsaLambda learner(g, opt);
  TrainOptions topt;
  topt.total_samples = 300000;
  topt.max_steps_per_episode = 512;
  train(learner, topt);
  EXPECT_GT(success_rate(g, learner), 0.9);
  // With lambda = 0 only the current pair ever has a trace.
  EXPECT_LE(learner.active_traces(), 1u);
}

TEST(SarsaLambda, PropagatesFasterThanOneStep) {
  // At a tight sample budget the traced learner should have spread value
  // to more of the grid than 1-step SARSA.
  env::GridWorld g(grid(16, 16));
  LambdaOptions lopt;
  lopt.alpha = 0.15;
  lopt.lambda = 0.9;
  lopt.epsilon = 0.2;
  SarsaLambda traced(g, lopt);
  SarsaOptions sopt;
  sopt.alpha = 0.15;
  sopt.epsilon = 0.2;
  Sarsa one_step(g, sopt);

  TrainOptions topt;
  topt.total_samples = 60000;
  topt.max_steps_per_episode = 512;
  topt.seed = 3;
  train(traced, topt);
  train(one_step, topt);
  EXPECT_GT(success_rate(g, traced), success_rate(g, one_step));
}

TEST(SarsaLambda, TracesDecayAndGetDropped) {
  env::GridWorld g(grid(8, 8));
  LambdaOptions opt;
  opt.lambda = 0.5;
  opt.trace_cutoff = 1e-3;
  SarsaLambda learner(g, opt);
  TrainOptions topt;
  topt.total_samples = 20000;
  topt.max_steps_per_episode = 256;
  train(learner, topt);
  // gamma * lambda = 0.45: traces die after ~9 steps, so the active set
  // stays far below the table size.
  EXPECT_LT(learner.active_traces(), 16u);
}

TEST(WatkinsQLambda, ConvergesOnGrid) {
  env::GridWorld g(grid(8, 8));
  LambdaOptions opt;
  opt.alpha = 0.15;
  opt.lambda = 0.85;
  opt.epsilon = 0.2;
  WatkinsQLambda learner(g, opt);
  TrainOptions topt;
  topt.total_samples = 200000;
  topt.max_steps_per_episode = 512;
  train(learner, topt);
  EXPECT_GT(success_rate(g, learner), 0.9);
}

TEST(WatkinsQLambda, CutsTracesOnExploration) {
  env::GridWorld g(grid(8, 8));
  LambdaOptions opt;
  opt.epsilon = 0.5;  // explore a lot -> many cuts
  WatkinsQLambda learner(g, opt);
  TrainOptions topt;
  topt.total_samples = 20000;
  topt.max_steps_per_episode = 256;
  train(learner, topt);
  // Roughly eps * (1 - 1/|A|) of steps take a non-greedy action.
  EXPECT_GT(learner.trace_cuts(), 5000u);
}

TEST(WatkinsQLambda, MatchesQLearningFixpointDirection) {
  // Both should approach Q* on the optimal path; Watkins must not
  // diverge despite traces.
  env::GridWorld g(grid(8, 8));
  const auto optimal = env::value_iteration(g, 0.9);
  LambdaOptions opt;
  opt.alpha = 0.1;
  opt.lambda = 0.7;
  opt.epsilon = 0.3;
  WatkinsQLambda learner(g, opt);
  TrainOptions topt;
  topt.total_samples = 400000;
  topt.max_steps_per_episode = 512;
  train(learner, topt);
  EXPECT_LT(env::greedy_path_q_error(g, optimal, learner.q(),
                                     g.state_of(0, 0)),
            5.0);
}

TEST(LambdaOptions, Validation) {
  env::GridWorld g(grid(8, 8));
  LambdaOptions opt;
  opt.lambda = 1.5;
  EXPECT_DEATH(SarsaLambda(g, opt), "lambda");
}

}  // namespace
}  // namespace qta::algo

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "env/grid_world.h"
#include "env/partition.h"
#include "env/value_iteration.h"
#include "runtime/multi_pipeline.h"

namespace qta::qtaccel {
namespace {

using runtime::IndependentPipelines;
using runtime::SharedTablePipelines;

env::GridWorldConfig grid(unsigned w, unsigned h, unsigned a = 4) {
  env::GridWorldConfig c;
  c.width = w;
  c.height = h;
  c.num_actions = a;
  return c;
}

TEST(SharedPipelines, DoublesSamplesPerCycle) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.seed = 1;
  SharedTablePipelines dual(g, c, 2);
  dual.run_cycles(5000);
  // Each pipeline issues every cycle; minus fill and rare bubbles the
  // combined rate approaches 2 samples/cycle.
  EXPECT_GT(dual.samples_per_cycle(), 1.95);
}

TEST(SharedPipelines, SinglePipelineVariantMatchesPlainRate) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.seed = 1;
  SharedTablePipelines solo(g, c, 1);
  solo.run_cycles(5000);
  EXPECT_GT(solo.samples_per_cycle(), 0.97);
  EXPECT_LE(solo.samples_per_cycle(), 1.0);
}

TEST(SharedPipelines, CollisionsHappenAndAreCounted) {
  // Tiny world: two agents constantly trample the same cells.
  env::GridWorld g(grid(4, 4));
  PipelineConfig c;
  c.seed = 2;
  SharedTablePipelines dual(g, c, 2);
  dual.run_cycles(20000);
  EXPECT_GT(dual.q_write_collisions(), 0u);
}

TEST(SharedPipelines, CollisionRateDropsWithWorldSize) {
  PipelineConfig c;
  c.seed = 3;
  env::GridWorld small(grid(4, 4));
  env::GridWorld large(grid(32, 32));
  SharedTablePipelines dual_small(small, c, 2);
  SharedTablePipelines dual_large(large, c, 2);
  dual_small.run_cycles(20000);
  dual_large.run_cycles(20000);
  const double rate_small =
      static_cast<double>(dual_small.q_write_collisions()) / 20000.0;
  const double rate_large =
      static_cast<double>(dual_large.q_write_collisions()) / 20000.0;
  EXPECT_GT(rate_small, rate_large);
}

TEST(SharedPipelines, SharedTableStillLearnsGoal) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.alpha = 0.2;
  c.seed = 4;
  SharedTablePipelines dual(g, c, 2);
  dual.run_samples_total(300000);
  // Greedy policy from the shared table reaches the goal.
  std::vector<ActionId> policy(g.num_states(), 0);
  for (StateId s = 0; s < g.num_states(); ++s) {
    double best = -1e300;
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      if (dual.q_value(s, a) > best) {
        best = dual.q_value(s, a);
        policy[s] = a;
      }
    }
  }
  EXPECT_GE(env::rollout_steps(g, policy, g.state_of(0, 0), 200), 0);
}

TEST(SharedPipelines, ConvergesFasterInWallClockCycles) {
  // The paper's claim: two agents sharing a Q table reach a trained table
  // in fewer cycles than one agent. Compare cycles needed for the start
  // state's Qmax path to form (proxy: total samples at fixed cycles, and
  // policy quality at equal cycle budgets).
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.alpha = 0.2;
  c.seed = 5;
  SharedTablePipelines solo(g, c, 1);
  SharedTablePipelines dual(g, c, 2);
  const std::uint64_t budget = 60000;
  solo.run_cycles(budget);
  dual.run_cycles(budget);
  EXPECT_GT(dual.total_samples(), solo.total_samples() * 3 / 2);
}

TEST(SharedPipelines, SarsaAgentsShareATableToo) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.algorithm = Algorithm::kSarsa;
  c.epsilon = 0.3;
  c.alpha = 0.2;
  c.seed = 9;
  c.max_episode_length = 256;
  SharedTablePipelines dual(g, c, 2);
  dual.run_cycles(120000);
  EXPECT_GT(dual.samples_per_cycle(), 1.9);
  std::vector<ActionId> policy(g.num_states(), 0);
  for (StateId s = 0; s < g.num_states(); ++s) {
    double best = -1e300;
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      if (dual.q_value(s, a) > best) {
        best = dual.q_value(s, a);
        policy[s] = a;
      }
    }
  }
  int reached = 0, total = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_terminal(s)) continue;
    ++total;
    reached += env::rollout_steps(g, policy, s, 500) >= 0 ? 1 : 0;
  }
  EXPECT_GE(reached, total * 8 / 10);
}

TEST(IndependentPipelines, EachBandLearnsItsOwnGoal) {
  auto bands = env::partition_grid(grid(8, 16), 4);
  std::vector<std::unique_ptr<env::Environment>> envs;
  for (const auto& b : bands) {
    envs.push_back(std::make_unique<env::GridWorld>(b));
  }
  PipelineConfig c;
  c.alpha = 0.2;
  c.seed = 6;
  IndependentPipelines rovers(std::move(envs), c);
  rovers.run_samples_each(60000, 2);

  ASSERT_EQ(rovers.num_pipelines(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    const auto& band_env =
        static_cast<const env::GridWorld&>(rovers.environment(i));
    const runtime::Engine& p = rovers.engine(i);
    std::vector<ActionId> policy(band_env.num_states(), 0);
    for (StateId s = 0; s < band_env.num_states(); ++s) {
      double best = -1e300;
      for (ActionId a = 0; a < band_env.num_actions(); ++a) {
        if (p.q_value(s, a) > best) {
          best = p.q_value(s, a);
          policy[s] = a;
        }
      }
    }
    EXPECT_GE(env::rollout_steps(band_env, policy, band_env.state_of(0, 0),
                                 200),
              0)
        << "band " << i;
  }
}

TEST(IndependentPipelines, ThroughputScalesWithN) {
  auto bands = env::partition_grid(grid(8, 16), 4);
  std::vector<std::unique_ptr<env::Environment>> envs;
  for (const auto& b : bands) {
    envs.push_back(std::make_unique<env::GridWorld>(b));
  }
  PipelineConfig c;
  c.seed = 7;
  IndependentPipelines rovers(std::move(envs), c);
  rovers.run_samples_each(10000, 1);
  // 4 pipelines, each ~1 sample/cycle concurrently.
  EXPECT_GT(rovers.samples_per_cycle(), 3.8);
  EXPECT_GE(rovers.total_samples(), 4u * 10000u);
}

TEST(IndependentPipelines, ResourceLedgerScales) {
  auto bands = env::partition_grid(grid(8, 16), 4);
  std::vector<std::unique_ptr<env::Environment>> envs;
  for (const auto& b : bands) {
    envs.push_back(std::make_unique<env::GridWorld>(b));
  }
  PipelineConfig c;
  IndependentPipelines rovers(std::move(envs), c);
  EXPECT_EQ(rovers.resources().dsp(), 16u);  // 4 pipelines x 4 DSP
}

TEST(IndependentPipelines, ThreadedAndSerialAgree) {
  // Determinism: running the same pipelines on 1 thread or 2 threads
  // must produce identical tables (no shared state).
  auto make = [] {
    auto bands = env::partition_grid(grid(8, 16), 2);
    std::vector<std::unique_ptr<env::Environment>> envs;
    for (const auto& b : bands) {
      envs.push_back(std::make_unique<env::GridWorld>(b));
    }
    PipelineConfig c;
    c.seed = 8;
    return std::make_unique<IndependentPipelines>(std::move(envs), c);
  };
  auto serial = make();
  auto threaded = make();
  serial->run_samples_each(20000, 1);
  threaded->run_samples_each(20000, 2);
  for (unsigned i = 0; i < 2; ++i) {
    const auto& es = serial->environment(i);
    for (StateId s = 0; s < es.num_states(); ++s) {
      for (ActionId a = 0; a < es.num_actions(); ++a) {
        ASSERT_EQ(serial->engine(i).q_raw(s, a),
                  threaded->engine(i).q_raw(s, a));
      }
    }
  }
}

TEST(SharedPipelinesDeath, RejectsFastBackendConfig) {
  // The satellite bugfix: a fast-backend config reaching shared-table
  // mode must be a loud config error, not a silent misconfig (the fast
  // engine has no port-level sharing or collision model).
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.backend = Backend::kFast;
  EXPECT_DEATH(SharedTablePipelines(g, c, 2),
               "shared-table mode requires the cycle-accurate backend");
}

TEST(SharedPipelines, CheckpointRoundTripResumesTransparently) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.seed = 12;
  c.max_episode_length = 256;

  // Reference: run to the barrier, checkpoint, keep running.
  SharedTablePipelines pool(g, c, 2);
  pool.run_cycles(6000);
  std::stringstream ckpt;
  pool.save_checkpoint(ckpt);
  pool.run_cycles(4000);

  // Restored pool continues exactly as the saved pool did.
  SharedTablePipelines restored(g, c, 2);
  restored.load_checkpoint(ckpt);
  EXPECT_LT(restored.total_samples(), pool.total_samples());
  restored.run_cycles(4000);

  EXPECT_EQ(restored.cycles(), pool.cycles());
  EXPECT_EQ(restored.total_samples(), pool.total_samples());
  for (StateId s = 0; s < g.num_states(); ++s) {
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      ASSERT_EQ(restored.pipeline(0).q_raw(s, a),
                pool.pipeline(0).q_raw(s, a))
          << "shared Q divergence at s=" << s << " a=" << a;
    }
  }
}

TEST(SharedPipelinesDeath, CheckpointRejectsForeignAndMisshapenFiles) {
  env::GridWorld g(grid(4, 4));
  PipelineConfig c;
  SharedTablePipelines pool(g, c, 2);
  std::stringstream junk("definitely not a checkpoint");
  EXPECT_DEATH(pool.load_checkpoint(junk), "pool checkpoint");

  // A 1-pipe checkpoint must not restore into a 2-pipe pool.
  SharedTablePipelines solo(g, c, 1);
  solo.run_cycles(200);
  std::stringstream one;
  solo.save_checkpoint(one);
  EXPECT_DEATH(pool.load_checkpoint(one),
               "checkpoint shape does not match this pool");
}

TEST(SharedPipelinesDeath, CheckpointErrorsNameTheFileAndPipe) {
  env::GridWorld g(grid(4, 4));
  PipelineConfig c;
  SharedTablePipelines pool(g, c, 2);
  pool.run_cycles(400);

  // Cut the checkpoint inside the SECOND pipe's snapshot: the
  // diagnostic must name both the offending file and pipe 1, not leave
  // the user to bisect a multi-snapshot stream by hand.
  std::stringstream full;
  pool.save_checkpoint(full);
  std::string text = full.str();
  const std::size_t second_magic =
      text.find("QTACCEL-SNAPSHOT", text.find("QTACCEL-SNAPSHOT") + 1);
  ASSERT_NE(second_magic, std::string::npos);
  text.resize(second_magic + 64);

  const std::string path =
      testing::TempDir() + "qta_pool_ckpt_truncated.txt";
  {
    std::ofstream os(path);
    os << text;
  }
  SharedTablePipelines target(g, c, 2);
  EXPECT_DEATH(target.load_checkpoint_file(path),
               "truncated.*qta_pool_ckpt_truncated.*pipe 1");

  EXPECT_DEATH(
      target.load_checkpoint_file("/nonexistent/qta_pool_nope.txt"),
      "cannot open pool checkpoint file for reading.*qta_pool_nope");
}

TEST(IndependentPipelines, FleetCheckpointResumesBitExactly) {
  auto make = [] {
    auto bands = env::partition_grid(grid(8, 16), 2);
    std::vector<std::unique_ptr<env::Environment>> envs;
    for (const auto& b : bands) {
      envs.push_back(std::make_unique<env::GridWorld>(b));
    }
    PipelineConfig c;
    c.seed = 13;
    c.backend = Backend::kFast;
    return std::make_unique<IndependentPipelines>(std::move(envs), c);
  };
  auto fleet = make();
  fleet->run_samples_each(8000, 2);
  std::stringstream ckpt;
  fleet->save_checkpoint(ckpt);
  fleet->run_samples_each(16000, 2);

  auto restored = make();
  restored->load_checkpoint(ckpt);
  restored->run_samples_each(16000, 2);

  for (unsigned i = 0; i < 2; ++i) {
    const auto& es = fleet->environment(i);
    EXPECT_EQ(restored->engine(i).stats().samples,
              fleet->engine(i).stats().samples);
    for (StateId s = 0; s < es.num_states(); ++s) {
      for (ActionId a = 0; a < es.num_actions(); ++a) {
        ASSERT_EQ(restored->engine(i).q_raw(s, a),
                  fleet->engine(i).q_raw(s, a))
            << "fleet divergence: engine " << i << " s=" << s << " a="
            << a;
      }
    }
  }
}

TEST(IndependentPipelines, FleetCheckpointFileRoundTrips) {
  auto make = [] {
    auto bands = env::partition_grid(grid(8, 16), 2);
    std::vector<std::unique_ptr<env::Environment>> envs;
    for (const auto& b : bands) {
      envs.push_back(std::make_unique<env::GridWorld>(b));
    }
    PipelineConfig c;
    c.seed = 21;
    c.backend = Backend::kFast;
    return std::make_unique<IndependentPipelines>(std::move(envs), c);
  };
  const std::string path = testing::TempDir() + "qta_fleet_ckpt.txt";
  auto fleet = make();
  fleet->run_samples_each(4000, 2);
  fleet->save_checkpoint_file(path);

  auto restored = make();
  restored->load_checkpoint_file(path);
  for (unsigned i = 0; i < 2; ++i) {
    EXPECT_EQ(restored->engine(i).stats().samples,
              fleet->engine(i).stats().samples);
  }
}

TEST(SharedPipelines, V3CheckpointRestoresIdenticallyToV2) {
  env::GridWorld g(grid(8, 8));
  PipelineConfig c;
  c.seed = 12;
  c.max_episode_length = 256;
  SharedTablePipelines pool(g, c, 2);
  pool.run_cycles(6000);

  // Same drained pool, both wire forms.
  std::stringstream v2, v3;
  pool.save_checkpoint(v2);
  pool.save_checkpoint(v3, runtime::SnapshotFormat::kV3Binary);
  EXPECT_NE(v3.str().find("QTACCEL-SNAPSHOT v3\n"), std::string::npos);
  EXPECT_NE(v2.str(), v3.str());

  // Re-serializing both restored pools as text is a full-state
  // comparison in one byte-equality.
  SharedTablePipelines from_v2(g, c, 2), from_v3(g, c, 2);
  from_v2.load_checkpoint(v2);
  from_v3.load_checkpoint(v3);
  std::stringstream text_v2, text_v3;
  from_v2.save_checkpoint(text_v2);
  from_v3.save_checkpoint(text_v3);
  EXPECT_EQ(text_v2.str(), text_v3.str());
  EXPECT_EQ(text_v2.str(), v2.str());
}

TEST(IndependentPipelines, V3FleetCheckpointAndMixedFormatStreamsRestore) {
  auto make = [] {
    auto bands = env::partition_grid(grid(8, 16), 2);
    std::vector<std::unique_ptr<env::Environment>> envs;
    for (const auto& b : bands) {
      envs.push_back(std::make_unique<env::GridWorld>(b));
    }
    PipelineConfig c;
    c.seed = 29;
    c.backend = Backend::kFast;
    return std::make_unique<IndependentPipelines>(std::move(envs), c);
  };
  auto fleet = make();
  fleet->run_samples_each(6000, 2);
  std::stringstream v2, v3;
  fleet->save_checkpoint(v2);
  fleet->save_checkpoint(v3, runtime::SnapshotFormat::kV3Binary);

  // Splice a MIXED stream — the v2 header + first engine section, then
  // the v3 second engine section. The loader sniffs each pipe's version
  // independently, so the formats may mix within one checkpoint.
  const std::string v2s = v2.str(), v3s = v3.str();
  const auto second_magic = [](const std::string& s) {
    return s.find("QTACCEL-SNAPSHOT", s.find("QTACCEL-SNAPSHOT") + 1);
  };
  ASSERT_NE(second_magic(v2s), std::string::npos);
  ASSERT_NE(second_magic(v3s), std::string::npos);
  std::stringstream mixed(v2s.substr(0, second_magic(v2s)) +
                          v3s.substr(second_magic(v3s)));

  auto from_v3 = make();
  from_v3->load_checkpoint(v3);
  auto from_mixed = make();
  from_mixed->load_checkpoint(mixed);

  std::stringstream text_v3, text_mixed;
  from_v3->save_checkpoint(text_v3);
  from_mixed->save_checkpoint(text_mixed);
  EXPECT_EQ(text_v3.str(), v2s);
  EXPECT_EQ(text_mixed.str(), v2s);
}

TEST(IndependentPipelinesDeath, CheckpointErrorsNameTheFileAndPipe) {
  auto make = [] {
    auto bands = env::partition_grid(grid(8, 16), 2);
    std::vector<std::unique_ptr<env::Environment>> envs;
    for (const auto& b : bands) {
      envs.push_back(std::make_unique<env::GridWorld>(b));
    }
    PipelineConfig c;
    c.backend = Backend::kFast;
    return std::make_unique<IndependentPipelines>(std::move(envs), c);
  };
  auto fleet = make();
  fleet->run_samples_each(1000, 2);
  std::stringstream full;
  fleet->save_checkpoint(full);
  std::string text = full.str();
  // Cut inside the SECOND engine's snapshot: the diagnostic must name
  // the file and pipe 1.
  const std::size_t second_magic =
      text.find("QTACCEL-SNAPSHOT", text.find("QTACCEL-SNAPSHOT") + 1);
  ASSERT_NE(second_magic, std::string::npos);
  text.resize(second_magic + 64);

  const std::string path =
      testing::TempDir() + "qta_fleet_ckpt_truncated.txt";
  {
    std::ofstream os(path);
    os << text;
  }
  auto target = make();
  EXPECT_DEATH(target->load_checkpoint_file(path),
               "truncated.*qta_fleet_ckpt_truncated.*pipe 1");
  EXPECT_DEATH(
      target->load_checkpoint_file("/nonexistent/qta_fleet_nope.txt"),
      "cannot open fleet checkpoint file for reading.*qta_fleet_nope");
}

TEST(IndependentPipelines, CyclePipelineIsNullableByBackend) {
  auto bands = env::partition_grid(grid(8, 16), 2);
  std::vector<std::unique_ptr<env::Environment>> envs;
  for (const auto& b : bands) {
    envs.push_back(std::make_unique<env::GridWorld>(b));
  }
  PipelineConfig c;
  c.backend = Backend::kFast;
  IndependentPipelines fleet(std::move(envs), c);
  EXPECT_EQ(fleet.cycle_pipeline(0), nullptr);
  EXPECT_EQ(fleet.engine(0).backend_kind(), Backend::kFast);
}

}  // namespace
}  // namespace qta::qtaccel

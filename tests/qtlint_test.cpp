// Rule-by-rule coverage for tools/qtlint. Each fixture is a known-bad
// snippet fed through lint_content() under a path that puts it in the
// rule's scope; the paired negative case moves the same snippet out of
// scope or adds a qtlint: allow annotation.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "qtlint/lint.h"

namespace qta::lint {
namespace {

std::size_t count_rule(const std::vector<Violation>& vs, RuleId rule) {
  return static_cast<std::size_t>(
      std::count_if(vs.begin(), vs.end(),
                    [rule](const Violation& v) { return v.rule == rule; }));
}

TEST(QtlintClassify, PathsMapToScopes) {
  EXPECT_TRUE(classify_path("src/hw/bram.cpp").datapath);
  EXPECT_TRUE(classify_path("src/fixed/fixed_point.h").datapath);
  EXPECT_TRUE(classify_path("src/qtaccel/pipeline.cpp").datapath);
  EXPECT_TRUE(classify_path("src/qtaccel/boltzmann_pipeline.cpp").datapath);
  EXPECT_TRUE(classify_path("src/qtaccel/fast_engine.cpp").datapath);
  EXPECT_TRUE(classify_path("src/qtaccel/fast_engine.h").datapath);
  EXPECT_TRUE(classify_path("src/qtaccel/lane_engine.cpp").datapath);
  EXPECT_TRUE(classify_path("src/qtaccel/lane_engine.h").datapath);
  EXPECT_TRUE(classify_path("src/common/thread_pool.cpp").datapath);
  EXPECT_TRUE(classify_path("src/common/thread_pool.h").datapath);
  EXPECT_FALSE(classify_path("src/qtaccel/config.cpp").datapath);
  EXPECT_FALSE(classify_path("src/qtaccel/golden_model.cpp").datapath);
  EXPECT_FALSE(classify_path("src/common/stats.cpp").datapath);
  EXPECT_TRUE(classify_path("src/rng/lfsr.cpp").rng);
  EXPECT_TRUE(classify_path("src/hw/dsp.h").header);
  EXPECT_FALSE(classify_path("tools/qtlint/lint.cpp").in_src);
}

TEST(QtlintClassify, RuntimeDriverAndQtaccelScopes) {
  EXPECT_TRUE(classify_path("src/runtime/engine.h").runtime);
  EXPECT_FALSE(classify_path("src/runtime/engine.h").datapath);
  // multi_pipeline moved out of the datapath module into the runtime
  // layer: it orchestrates engines, it is not pipeline hardware.
  EXPECT_TRUE(classify_path("src/runtime/multi_pipeline.cpp").runtime);
  EXPECT_FALSE(classify_path("src/runtime/multi_pipeline.cpp").datapath);
  EXPECT_TRUE(classify_path("src/driver/qtaccel_device.cpp").driver);
  EXPECT_TRUE(classify_path("src/qtaccel/pipeline.cpp").qtaccel);
  EXPECT_FALSE(classify_path("examples/quickstart.cpp").in_src);
}

TEST(QtlintDatapathPurity, FastEngineScopeFlagsFloatsOutsideAllowBlocks) {
  // The turbo engine replays the datapath against flat arrays; a stray
  // double there would silently diverge from the fixed-point pipeline.
  const auto bad = lint_content("src/qtaccel/fast_engine.cpp",
                                "long f() { double x = 1; return long(x); }\n");
  EXPECT_EQ(count_rule(bad, RuleId::kDatapathPurity), 1u);
  // The sanctioned host-init boundary uses push/pop-allow blocks, exactly
  // as the real file does around reward quantization.
  const auto ok = lint_content(
      "src/qtaccel/fast_engine.cpp",
      "// qtlint: push-allow(datapath-purity)\n"
      "long f() { double x = 1; return long(x); }\n"
      "// qtlint: pop-allow(datapath-purity)\n");
  EXPECT_EQ(count_rule(ok, RuleId::kDatapathPurity), 0u);
}

TEST(QtlintDatapathPurity, ThreadPoolScopeFlagsFloats) {
  const auto vs = lint_content(
      "src/common/thread_pool.cpp",
      "double share(double items, double workers) { return items / workers; }\n");
  EXPECT_GT(count_rule(vs, RuleId::kDatapathPurity), 0u);
}

TEST(QtlintDatapathPurity, FlagsFloatAndDoubleInDatapath) {
  const auto vs = lint_content("src/hw/unit.cpp",
                               "int f() { double x = 1; float y = 2; "
                               "return int(x + y); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 2u);
}

TEST(QtlintDatapathPurity, FlagsLibmCallsAndCmathInclude) {
  const auto vs = lint_content(
      "src/fixed/unit.cpp",
      "#include <cmath>\nlong f(long v) { return std::exp(v) + pow(v, 2); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 3u);
}

TEST(QtlintDatapathPurity, IgnoresHostSideCode) {
  const auto vs = lint_content("src/common/stats.cpp",
                               "double mean() { return std::sqrt(2.0); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 0u);
}

TEST(QtlintDatapathPurity, MemberNamesContainingBannedWordsAreLegal) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "long q_as_double(Lut& lut, long x) { return lut.eval_exp(x); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 0u);
}

TEST(QtlintDatapathPurity, CommentsAndStringsDoNotTrigger) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "// a double-pumped BRAM port\n"
      "/* float would be wrong here */\n"
      "const char* kMsg = \"double trouble: std::exp(x)\";\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 0u);
}

TEST(QtlintDeterminism, FlagsEntropySourcesOutsideRng) {
  const auto vs = lint_content(
      "src/algo/unit.cpp",
      "#include <random>\n"
      "int f() { std::random_device rd; srand(42); return rand(); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDeterminism), 4u);
}

TEST(QtlintDeterminism, FlagsWallClockSeeding) {
  const auto vs = lint_content(
      "src/env/unit.cpp", "long seed() { return time(nullptr); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDeterminism), 1u);
}

TEST(QtlintDeterminism, RngModuleIsExempt) {
  const auto vs = lint_content(
      "src/rng/unit.cpp",
      "int f() { std::random_device rd; return int(rd()); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDeterminism), 0u);
}

TEST(QtlintDeterminism, SteadyClockAliasIsLegal) {
  // src/common/stats.h names its chrono alias `clock`; only the libc
  // call form clock() is banned.
  const auto vs = lint_content(
      "src/common/unit.h",
      "#pragma once\nusing clock = std::chrono::steady_clock;\n"
      "auto t() { return clock::now(); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDeterminism), 0u);
}

TEST(QtlintPragmaOnce, FlagsHeaderWithoutPragma) {
  const auto vs = lint_content("src/hw/unit.h", "struct S {};\n");
  EXPECT_EQ(count_rule(vs, RuleId::kPragmaOnce), 1u);
}

TEST(QtlintPragmaOnce, AcceptsHeaderWithPragma) {
  const auto vs =
      lint_content("src/hw/unit.h", "// banner\n#pragma once\nstruct S {};\n");
  EXPECT_EQ(count_rule(vs, RuleId::kPragmaOnce), 0u);
}

TEST(QtlintPragmaOnce, DoesNotApplyToSourceFiles) {
  const auto vs = lint_content("src/hw/unit.cpp", "struct S {};\n");
  EXPECT_EQ(count_rule(vs, RuleId::kPragmaOnce), 0u);
}

TEST(QtlintUsingNamespace, FlagsHeaderButNotSource) {
  const std::string snippet = "#pragma once\nusing namespace std;\n";
  EXPECT_EQ(count_rule(lint_content("src/env/unit.h", snippet),
                       RuleId::kNoUsingNamespace),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/env/unit.cpp", snippet),
                       RuleId::kNoUsingNamespace),
            0u);
}

TEST(QtlintIostream, FlagsHotPathStreams) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "#include <iostream>\nvoid f() { std::cout << 1; std::cerr << 2; }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kNoIostream), 3u);
}

TEST(QtlintIostream, PipelineAndHostFilesMayStream) {
  const std::string snippet = "#include <iostream>\nvoid f();\n";
  EXPECT_EQ(count_rule(lint_content("src/qtaccel/pipeline.cpp", snippet),
                       RuleId::kNoIostream),
            0u);
  EXPECT_EQ(count_rule(lint_content("src/common/cli.cpp", snippet),
                       RuleId::kNoIostream),
            0u);
}

TEST(QtlintBareAssert, FlagsAssertButNotStaticAssert) {
  const auto vs = lint_content(
      "src/env/unit.cpp",
      "#include <cassert>\n"
      "static_assert(sizeof(int) == 4);\nvoid f(int x) { assert(x > 0); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kNoBareAssert), 2u);
}

TEST(QtlintAllow, LineAnnotationSuppressesThatLineOnly) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "double a;  // qtlint: allow(datapath-purity)\ndouble b;\n");
  ASSERT_EQ(count_rule(vs, RuleId::kDatapathPurity), 1u);
  EXPECT_EQ(vs[0].line, 2u);
}

TEST(QtlintAllow, LineAnnotationTakesMultipleRules) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "double a = time(nullptr);"
      "  // qtlint: allow(datapath-purity, determinism)\n");
  EXPECT_TRUE(vs.empty());
}

TEST(QtlintAllow, FileAnnotationSuppressesWholeFile) {
  const auto vs = lint_content(
      "src/fixed/unit.cpp",
      "// qtlint: allow-file(datapath-purity)\n"
      "double a;\ndouble b;\nfloat c;\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 0u);
}

TEST(QtlintAllow, PushPopBoundsTheSuppressedRegion) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "// qtlint: push-allow(datapath-purity)\n"
      "double inside;\n"
      "// qtlint: pop-allow(datapath-purity)\n"
      "double outside;\n");
  ASSERT_EQ(count_rule(vs, RuleId::kDatapathPurity), 1u);
  EXPECT_EQ(vs[0].line, 4u);
}

TEST(QtlintAllow, UnknownRuleNameIsItselfAViolation) {
  const auto vs = lint_content(
      "src/hw/unit.cpp", "int a;  // qtlint: allow(no-such-rule)\n");
  EXPECT_EQ(count_rule(vs, RuleId::kUnknownAllow), 1u);
}

TEST(QtlintAllow, AllowDoesNotLeakToOtherRules) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "double a = time(nullptr);  // qtlint: allow(datapath-purity)\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 0u);
  EXPECT_EQ(count_rule(vs, RuleId::kDeterminism), 1u);
}

TEST(QtlintTelemetryBoundary, FlagsHostMachineryIncludesInDatapath) {
  const std::string snippet =
      "#include \"telemetry/metrics.h\"\n"
      "#include \"telemetry/trace.h\"\nvoid f();\n";
  EXPECT_EQ(count_rule(lint_content("src/qtaccel/pipeline.cpp", snippet),
                       RuleId::kTelemetryBoundary),
            2u);
  EXPECT_EQ(count_rule(lint_content("src/hw/bram.cpp", snippet),
                       RuleId::kTelemetryBoundary),
            2u);
}

TEST(QtlintTelemetryBoundary, SinkHeaderIsTheSanctionedInclude) {
  const auto vs = lint_content(
      "src/qtaccel/fast_engine.h",
      "#pragma once\n#include \"telemetry/sink.h\"\n"
      "void set_telemetry(telemetry::TelemetrySink* sink);\n");
  EXPECT_EQ(count_rule(vs, RuleId::kTelemetryBoundary), 0u);
}

TEST(QtlintTelemetryBoundary, FlagsHostTypeIdentifiersInDatapath) {
  const auto vs = lint_content(
      "src/qtaccel/forwarding.h",
      "#pragma once\nstruct Wbq { telemetry::MetricsRegistry* reg; "
      "telemetry::TraceSession* trace; };\n");
  EXPECT_EQ(count_rule(vs, RuleId::kTelemetryBoundary), 2u);
}

TEST(QtlintTelemetryBoundary, FlagsFlightRecorderMachineryInDatapath) {
  // The qtscope flight recorder and its event vocabulary are host-side
  // observability machinery — datapath files may not name them, same as
  // MetricsRegistry/TraceSession.
  const auto idents = lint_content(
      "src/qtaccel/qmax_unit.h",
      "#pragma once\nstruct Probe { telemetry::FlightRecorder* fr; "
      "telemetry::ServeEvent last; };\n");
  EXPECT_EQ(count_rule(idents, RuleId::kTelemetryBoundary), 2u);
  const auto include = lint_content(
      "src/qtaccel/pipeline.cpp",
      "#include \"telemetry/flight_recorder.h\"\nvoid f();\n");
  EXPECT_EQ(count_rule(include, RuleId::kTelemetryBoundary), 1u);
  // serve/ is host-side: free to record events.
  const auto host = lint_content(
      "src/serve/server.cpp",
      "#include \"telemetry/flight_recorder.h\"\n"
      "telemetry::FlightRecorder* g_flight;\n");
  EXPECT_EQ(count_rule(host, RuleId::kTelemetryBoundary), 0u);
}

TEST(QtlintTelemetryBoundary, HostSideFilesMayUseTheMachinery) {
  const std::string snippet =
      "#include \"telemetry/metrics.h\"\n"
      "telemetry::MetricsRegistry* g_registry;\n";
  EXPECT_EQ(count_rule(lint_content("src/telemetry/metrics.cpp", snippet),
                       RuleId::kTelemetryBoundary),
            0u);
  EXPECT_EQ(count_rule(lint_content("examples/quickstart.cpp", snippet),
                       RuleId::kTelemetryBoundary),
            0u);
}

// The layering rule subsumed the old runtime-boundary and serve-boundary
// scanners; these fixtures pin that every violation the old rules caught
// still fires (now as `layering`), plus the DAG cases only the
// data-driven table covers.

TEST(QtlintLayering, DatapathAndSupportCodeMayNotIncludeRuntime) {
  const std::string snippet = "#include \"runtime/engine.h\"\nvoid f();\n";
  EXPECT_EQ(count_rule(lint_content("src/qtaccel/pipeline.cpp", snippet),
                       RuleId::kLayering),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/env/grid_world.cpp", snippet),
                       RuleId::kLayering),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/telemetry/metrics.cpp", snippet),
                       RuleId::kLayering),
            1u);
  // The runtime itself, the driver above it, and out-of-tree consumers
  // (examples, benches, tools) are the sanctioned includers.
  EXPECT_EQ(count_rule(lint_content("src/runtime/snapshot.cpp", snippet),
                       RuleId::kLayering),
            0u);
  EXPECT_EQ(
      count_rule(lint_content("src/driver/qtaccel_device.cpp", snippet),
                 RuleId::kLayering),
      0u);
  EXPECT_EQ(count_rule(lint_content("bench/bench_perf_smoke.cpp", snippet),
                       RuleId::kLayering),
            0u);
}

TEST(QtlintLayering, OnlyRuntimeAndQtaccelNameConcreteBackends) {
  const std::string snippet =
      "#include \"qtaccel/pipeline.h\"\n"
      "#include \"qtaccel/fast_engine.h\"\n"
      "#include \"qtaccel/lane_engine.h\"\nvoid f();\n";
  // Everything above the seam goes through the Engine facade instead.
  EXPECT_EQ(count_rule(lint_content("examples/quickstart.cpp", snippet),
                       RuleId::kLayering),
            3u);
  EXPECT_EQ(count_rule(lint_content("bench/bench_microbench.cpp", snippet),
                       RuleId::kLayering),
            3u);
  EXPECT_EQ(
      count_rule(lint_content("src/driver/qtaccel_device.cpp", snippet),
                 RuleId::kLayering),
      3u);
  // The adapters and the backends' own module keep direct access.
  EXPECT_EQ(
      count_rule(lint_content("src/runtime/backend_registry.cpp", snippet),
                 RuleId::kLayering),
      0u);
  EXPECT_EQ(count_rule(lint_content("src/qtaccel/machine_state.h",
                                    "#pragma once\n" + snippet),
                       RuleId::kLayering),
            0u);
  // Other qtaccel headers stay fair game for everyone.
  EXPECT_EQ(count_rule(lint_content("examples/quickstart.cpp",
                                    "#include \"qtaccel/config.h\"\n"),
                       RuleId::kLayering),
            0u);
}

TEST(QtlintLayering, OnlyServeIncludesServeWithinSrc) {
  const std::string snippet =
      "#include \"serve/protocol.h\"\nvoid f();\n";
  // Within src/, only the serving layer itself may depend on serve/.
  EXPECT_EQ(count_rule(lint_content("src/runtime/engine.cpp", snippet),
                       RuleId::kLayering),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/env/grid_world.cpp", snippet),
                       RuleId::kLayering),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/serve/server.cpp", snippet),
                       RuleId::kLayering),
            0u);
  // Tools, examples and benches sit above the seam and may.
  EXPECT_EQ(count_rule(lint_content("tools/qtserved.cpp", snippet),
                       RuleId::kLayering),
            0u);
  EXPECT_EQ(count_rule(lint_content("bench/bench_serve.cpp", snippet),
                       RuleId::kLayering),
            0u);
  EXPECT_EQ(count_rule(lint_content("examples/quickstart.cpp", snippet),
                       RuleId::kLayering),
            0u);
}

TEST(QtlintLayering, ShardSitsAboveServeAndNothingIncludesIt) {
  // shard/ may include serve/ (and transitively everything serve may),
  // but no src module below it may include shard/ — the router is the
  // top of the src DAG.
  EXPECT_EQ(count_rule(lint_content("src/shard/router.cpp",
                                    "#include \"serve/protocol.h\"\n"),
                       RuleId::kLayering),
            0u);
  EXPECT_EQ(count_rule(lint_content("src/shard/router.cpp",
                                    "#include \"runtime/engine.h\"\n"),
                       RuleId::kLayering),
            0u);
  const std::string snippet =
      "#include \"shard/router.h\"\nvoid f();\n";
  EXPECT_EQ(count_rule(lint_content("src/serve/server.cpp", snippet),
                       RuleId::kLayering),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/runtime/engine.cpp", snippet),
                       RuleId::kLayering),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/telemetry/metrics.cpp", snippet),
                       RuleId::kLayering),
            1u);
  // Tools and benches sit above the seam.
  EXPECT_EQ(count_rule(lint_content("tools/qtrouterd.cpp", snippet),
                       RuleId::kLayering),
            0u);
  EXPECT_EQ(count_rule(lint_content("bench/bench_shard.cpp", snippet),
                       RuleId::kLayering),
            0u);
  // And shard stays backend-generic like serve.
  EXPECT_EQ(count_rule(lint_content("src/shard/router.cpp",
                                    "#include \"qtaccel/fast_engine.h\"\n"),
                       RuleId::kLayering),
            1u);
}

TEST(QtlintLayering, ServeStaysBackendGeneric) {
  // The serving layer multiplexes Engines; naming a concrete backend
  // would break the snapshot bridge between backends.
  const std::string snippet =
      "#include \"qtaccel/pipeline.h\"\n"
      "#include \"qtaccel/fast_engine.h\"\nvoid f();\n";
  const auto vs = lint_content("src/serve/session_manager.cpp", snippet);
  EXPECT_EQ(count_rule(vs, RuleId::kLayering), 2u);
  // Each restricted-header include fires exactly one violation (the
  // restricted-header check wins over the generic DAG walk).
  EXPECT_EQ(vs.size(), 2u);
  // The sanctioned dependency direction: serve includes runtime/.
  EXPECT_EQ(count_rule(lint_content("src/serve/session_manager.cpp",
                                    "#include \"runtime/engine.h\"\n"),
                       RuleId::kLayering),
            0u);
  // And config.h (backend-agnostic types) stays fair game for serve.
  EXPECT_EQ(count_rule(lint_content("src/serve/protocol.h",
                                    "#pragma once\n"
                                    "#include \"qtaccel/config.h\"\n"),
                       RuleId::kLayering),
            0u);
}

TEST(QtlintLayering, DagRejectsUndeclaredEdgesAndAllowsDeclaredOnes) {
  // Declared edges from the kLayerSpecs table.
  EXPECT_EQ(count_rule(lint_content("src/env/grid_world.cpp",
                                    "#include \"fixed/fixed_point.h\"\n"),
                       RuleId::kLayering),
            0u);
  EXPECT_EQ(count_rule(lint_content("src/runtime/engine.cpp",
                                    "#include \"telemetry/metrics.h\"\n"),
                       RuleId::kLayering),
            0u);
  // Undeclared edges the old boundary scanners never saw.
  EXPECT_EQ(count_rule(lint_content("src/common/cli.cpp",
                                    "#include \"env/environment.h\"\n"),
                       RuleId::kLayering),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/fixed/fixed_point.cpp",
                                    "#include \"rng/lfsr.h\"\n"),
                       RuleId::kLayering),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/telemetry/trace.cpp",
                                    "#include \"env/environment.h\"\n"),
                       RuleId::kLayering),
            1u);
  // Self-includes within a module are always fine.
  EXPECT_EQ(count_rule(lint_content("src/env/grid_world.cpp",
                                    "#include \"env/environment.h\"\n"),
                       RuleId::kLayering),
            0u);
  // System headers and non-module targets are outside the DAG.
  EXPECT_EQ(count_rule(lint_content("src/common/cli.cpp",
                                    "#include <vector>\n"
                                    "#include \"gtest/gtest.h\"\n"),
                       RuleId::kLayering),
            0u);
  // An allow() annotation silences a deliberate edge.
  EXPECT_EQ(count_rule(
                lint_content("src/common/cli.cpp",
                             "#include \"env/environment.h\"  "
                             "// qtlint: allow(layering)\n"),
                RuleId::kLayering),
            0u);
}

TEST(QtlintLayering, RepoPassDetectsIncludeCycles) {
  const std::vector<SourceFile> files = {
      {"src/env/a.h", "#pragma once\n#include \"env/b.h\"\n"},
      {"src/env/b.h", "#pragma once\n#include \"env/c.h\"\n"},
      {"src/env/c.h", "#pragma once\n#include \"env/a.h\"\n"},
      {"src/env/leaf.h", "#pragma once\n#include \"env/a.h\"\n"},
  };
  const auto vs = lint_repo(files);
  ASSERT_EQ(count_rule(vs, RuleId::kLayering), 1u);
  const auto it =
      std::find_if(vs.begin(), vs.end(), [](const Violation& v) {
        return v.rule == RuleId::kLayering;
      });
  EXPECT_NE(it->message.find("include cycle"), std::string::npos);
  EXPECT_NE(it->message.find("src/env/a.h"), std::string::npos);
  EXPECT_NE(it->message.find("src/env/b.h"), std::string::npos);
  EXPECT_NE(it->message.find("src/env/c.h"), std::string::npos);
}

TEST(QtlintLayering, RepoPassResolvesSameDirectoryIncludes) {
  // tools/ sources include siblings by bare name; a mutual include is
  // still a cycle even though neither path starts with src/.
  const std::vector<SourceFile> files = {
      {"tools/demo/x.h", "#pragma once\n#include \"y.h\"\n"},
      {"tools/demo/y.h", "#pragma once\n#include \"x.h\"\n"},
  };
  EXPECT_EQ(count_rule(lint_repo(files), RuleId::kLayering), 1u);
}

TEST(QtlintLayering, RepoPassReportsEachCycleOnce) {
  // Two files that include each other produce ONE cycle report, not one
  // per entry point.
  const std::vector<SourceFile> files = {
      {"src/hw/p.h", "#pragma once\n#include \"hw/q.h\"\n"},
      {"src/hw/q.h", "#pragma once\n#include \"hw/p.h\"\n"},
      {"src/hw/user1.h", "#pragma once\n#include \"hw/p.h\"\n"},
      {"src/hw/user2.h", "#pragma once\n#include \"hw/q.h\"\n"},
  };
  EXPECT_EQ(count_rule(lint_repo(files), RuleId::kLayering), 1u);
}

TEST(QtlintLayering, AcyclicRepoIsCleanAndAllowBreaksCycleEdge) {
  const std::vector<SourceFile> clean = {
      {"src/hw/top.h", "#pragma once\n#include \"hw/base.h\"\n"},
      {"src/hw/base.h", "#pragma once\n"},
  };
  EXPECT_EQ(count_rule(lint_repo(clean), RuleId::kLayering), 0u);
  // An edge under allow(layering) is invisible to the cycle pass.
  const std::vector<SourceFile> allowed = {
      {"src/hw/p.h",
       "#pragma once\n"
       "#include \"hw/q.h\"  // qtlint: allow(layering)\n"},
      {"src/hw/q.h", "#pragma once\n#include \"hw/p.h\"\n"},
  };
  EXPECT_EQ(count_rule(lint_repo(allowed), RuleId::kLayering), 0u);
}

TEST(QtlintMutexAnnotation, FlagsBareStdMutexMembersInSrc) {
  const std::string snippet =
      "#pragma once\n"
      "class S {\n"
      "  std::mutex mu_;\n"
      "  std::condition_variable cv_;\n"
      "  std::shared_mutex smu_;\n"
      "};\n";
  EXPECT_EQ(count_rule(lint_content("src/serve/unit.h", snippet),
                       RuleId::kMutexAnnotation),
            3u);
  // Out-of-src code (tools, tests fixtures, benches) is not scoped.
  EXPECT_EQ(count_rule(lint_content("tools/demo/unit.h", snippet),
                       RuleId::kMutexAnnotation),
            0u);
}

TEST(QtlintMutexAnnotation, AnnotatedAndWrapperDeclarationsPass) {
  // A QTA_ annotation anywhere in the declaration satisfies the rule …
  EXPECT_EQ(count_rule(lint_content(
                           "src/serve/unit.h",
                           "#pragma once\n"
                           "class S { std::mutex mu_ QTA_GUARDED_BY(x); };\n"),
                       RuleId::kMutexAnnotation),
            0u);
  // … as does the annotated qta::Mutex wrapper (no std:: type at all).
  EXPECT_EQ(count_rule(lint_content("src/serve/unit.h",
                                    "#pragma once\n"
                                    "class S { qta::Mutex mu_; };\n"),
                       RuleId::kMutexAnnotation),
            0u);
  // Uses of std lock TYPES in template args / refs are not declarations.
  EXPECT_EQ(
      count_rule(lint_content(
                     "src/serve/unit.cpp",
                     "void f(std::mutex& mu) {\n"
                     "  std::lock_guard<std::mutex> lock(mu);\n"
                     "  std::unique_lock<std::mutex> u(mu);\n"
                     "}\n"),
                 RuleId::kMutexAnnotation),
      0u);
}

TEST(QtlintMutexAnnotation, AllowAnnotationScopesTheEscapeHatch) {
  // The wrappers themselves hold the raw std types; they carry a
  // line-scoped allow, exactly as src/common/mutex.h does.
  const auto vs = lint_content(
      "src/common/unit.h",
      "#pragma once\n"
      "class M {\n"
      "  std::mutex mu_;  // qtlint: allow(mutex-annotation)\n"
      "  std::mutex other_;\n"
      "};\n");
  ASSERT_EQ(count_rule(vs, RuleId::kMutexAnnotation), 1u);
  EXPECT_EQ(vs[0].line, 4u);
}

TEST(QtlintIncludeGraph, ListIncludesReturnsTargetsInLineOrder) {
  const auto edges = list_includes(
      "// #include \"commented/out.h\"\n"
      "#include <vector>\n"
      "#include \"env/environment.h\"\n"
      "const char* s = \"#include \\\"string/literal.h\\\"\";\n"
      "  #  include   \"hw/bram.h\"\n");
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].target, "vector");
  EXPECT_EQ(edges[0].line, 2u);
  EXPECT_EQ(edges[1].target, "env/environment.h");
  EXPECT_EQ(edges[1].line, 3u);
  EXPECT_EQ(edges[2].target, "hw/bram.h");
  EXPECT_EQ(edges[2].line, 5u);
}

TEST(QtlintJson, ReportShapeCarriesFileLineRuleMessageAndCounts) {
  const std::vector<SourceFile> files = {
      {"src/hw/unit.cpp", "double bad;\n"},
      {"src/env/ok.cpp", "int fine;\n"},
  };
  const auto vs = lint_repo(files);
  ASSERT_EQ(vs.size(), 1u);
  std::ostringstream os;
  write_violations_json(os, vs, files.size());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"violations\":["), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/hw/unit.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"datapath-purity\""), std::string::npos);
  EXPECT_NE(json.find("\"message\":"), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\":2"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(QtlintJson, EmptyReportStillWellFormed) {
  std::ostringstream os;
  write_violations_json(os, {}, 3);
  EXPECT_EQ(os.str(),
            "{\"violations\":[],\"files_scanned\":3,\"count\":0}\n");
}

TEST(QtlintReporting, ViolationsCarryFileLineAndSortedOrder) {
  const auto vs = lint_content("src/hw/unit.cpp",
                               "int ok;\ndouble bad1;\ndouble bad2;\n");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].file, "src/hw/unit.cpp");
  EXPECT_EQ(vs[0].line, 2u);
  EXPECT_EQ(vs[1].line, 3u);
}

TEST(QtlintRules, EveryRuleHasNameScopeRationale) {
  for (const RuleId id : all_rules()) {
    EXPECT_FALSE(rule_name(id).empty());
    EXPECT_FALSE(rule_scope(id).empty());
    EXPECT_FALSE(rule_rationale(id).empty());
  }
}

}  // namespace
}  // namespace qta::lint

// Rule-by-rule coverage for tools/qtlint. Each fixture is a known-bad
// snippet fed through lint_content() under a path that puts it in the
// rule's scope; the paired negative case moves the same snippet out of
// scope or adds a qtlint: allow annotation.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "qtlint/lint.h"

namespace qta::lint {
namespace {

std::size_t count_rule(const std::vector<Violation>& vs, RuleId rule) {
  return static_cast<std::size_t>(
      std::count_if(vs.begin(), vs.end(),
                    [rule](const Violation& v) { return v.rule == rule; }));
}

TEST(QtlintClassify, PathsMapToScopes) {
  EXPECT_TRUE(classify_path("src/hw/bram.cpp").datapath);
  EXPECT_TRUE(classify_path("src/fixed/fixed_point.h").datapath);
  EXPECT_TRUE(classify_path("src/qtaccel/pipeline.cpp").datapath);
  EXPECT_TRUE(classify_path("src/qtaccel/boltzmann_pipeline.cpp").datapath);
  EXPECT_TRUE(classify_path("src/qtaccel/fast_engine.cpp").datapath);
  EXPECT_TRUE(classify_path("src/qtaccel/fast_engine.h").datapath);
  EXPECT_TRUE(classify_path("src/common/thread_pool.cpp").datapath);
  EXPECT_TRUE(classify_path("src/common/thread_pool.h").datapath);
  EXPECT_FALSE(classify_path("src/qtaccel/config.cpp").datapath);
  EXPECT_FALSE(classify_path("src/qtaccel/golden_model.cpp").datapath);
  EXPECT_FALSE(classify_path("src/common/stats.cpp").datapath);
  EXPECT_TRUE(classify_path("src/rng/lfsr.cpp").rng);
  EXPECT_TRUE(classify_path("src/hw/dsp.h").header);
  EXPECT_FALSE(classify_path("tools/qtlint/lint.cpp").in_src);
}

TEST(QtlintClassify, RuntimeDriverAndQtaccelScopes) {
  EXPECT_TRUE(classify_path("src/runtime/engine.h").runtime);
  EXPECT_FALSE(classify_path("src/runtime/engine.h").datapath);
  // multi_pipeline moved out of the datapath module into the runtime
  // layer: it orchestrates engines, it is not pipeline hardware.
  EXPECT_TRUE(classify_path("src/runtime/multi_pipeline.cpp").runtime);
  EXPECT_FALSE(classify_path("src/runtime/multi_pipeline.cpp").datapath);
  EXPECT_TRUE(classify_path("src/driver/qtaccel_device.cpp").driver);
  EXPECT_TRUE(classify_path("src/qtaccel/pipeline.cpp").qtaccel);
  EXPECT_FALSE(classify_path("examples/quickstart.cpp").in_src);
}

TEST(QtlintDatapathPurity, FastEngineScopeFlagsFloatsOutsideAllowBlocks) {
  // The turbo engine replays the datapath against flat arrays; a stray
  // double there would silently diverge from the fixed-point pipeline.
  const auto bad = lint_content("src/qtaccel/fast_engine.cpp",
                                "long f() { double x = 1; return long(x); }\n");
  EXPECT_EQ(count_rule(bad, RuleId::kDatapathPurity), 1u);
  // The sanctioned host-init boundary uses push/pop-allow blocks, exactly
  // as the real file does around reward quantization.
  const auto ok = lint_content(
      "src/qtaccel/fast_engine.cpp",
      "// qtlint: push-allow(datapath-purity)\n"
      "long f() { double x = 1; return long(x); }\n"
      "// qtlint: pop-allow(datapath-purity)\n");
  EXPECT_EQ(count_rule(ok, RuleId::kDatapathPurity), 0u);
}

TEST(QtlintDatapathPurity, ThreadPoolScopeFlagsFloats) {
  const auto vs = lint_content(
      "src/common/thread_pool.cpp",
      "double share(double items, double workers) { return items / workers; }\n");
  EXPECT_GT(count_rule(vs, RuleId::kDatapathPurity), 0u);
}

TEST(QtlintDatapathPurity, FlagsFloatAndDoubleInDatapath) {
  const auto vs = lint_content("src/hw/unit.cpp",
                               "int f() { double x = 1; float y = 2; "
                               "return int(x + y); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 2u);
}

TEST(QtlintDatapathPurity, FlagsLibmCallsAndCmathInclude) {
  const auto vs = lint_content(
      "src/fixed/unit.cpp",
      "#include <cmath>\nlong f(long v) { return std::exp(v) + pow(v, 2); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 3u);
}

TEST(QtlintDatapathPurity, IgnoresHostSideCode) {
  const auto vs = lint_content("src/common/stats.cpp",
                               "double mean() { return std::sqrt(2.0); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 0u);
}

TEST(QtlintDatapathPurity, MemberNamesContainingBannedWordsAreLegal) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "long q_as_double(Lut& lut, long x) { return lut.eval_exp(x); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 0u);
}

TEST(QtlintDatapathPurity, CommentsAndStringsDoNotTrigger) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "// a double-pumped BRAM port\n"
      "/* float would be wrong here */\n"
      "const char* kMsg = \"double trouble: std::exp(x)\";\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 0u);
}

TEST(QtlintDeterminism, FlagsEntropySourcesOutsideRng) {
  const auto vs = lint_content(
      "src/algo/unit.cpp",
      "#include <random>\n"
      "int f() { std::random_device rd; srand(42); return rand(); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDeterminism), 4u);
}

TEST(QtlintDeterminism, FlagsWallClockSeeding) {
  const auto vs = lint_content(
      "src/env/unit.cpp", "long seed() { return time(nullptr); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDeterminism), 1u);
}

TEST(QtlintDeterminism, RngModuleIsExempt) {
  const auto vs = lint_content(
      "src/rng/unit.cpp",
      "int f() { std::random_device rd; return int(rd()); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDeterminism), 0u);
}

TEST(QtlintDeterminism, SteadyClockAliasIsLegal) {
  // src/common/stats.h names its chrono alias `clock`; only the libc
  // call form clock() is banned.
  const auto vs = lint_content(
      "src/common/unit.h",
      "#pragma once\nusing clock = std::chrono::steady_clock;\n"
      "auto t() { return clock::now(); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDeterminism), 0u);
}

TEST(QtlintPragmaOnce, FlagsHeaderWithoutPragma) {
  const auto vs = lint_content("src/hw/unit.h", "struct S {};\n");
  EXPECT_EQ(count_rule(vs, RuleId::kPragmaOnce), 1u);
}

TEST(QtlintPragmaOnce, AcceptsHeaderWithPragma) {
  const auto vs =
      lint_content("src/hw/unit.h", "// banner\n#pragma once\nstruct S {};\n");
  EXPECT_EQ(count_rule(vs, RuleId::kPragmaOnce), 0u);
}

TEST(QtlintPragmaOnce, DoesNotApplyToSourceFiles) {
  const auto vs = lint_content("src/hw/unit.cpp", "struct S {};\n");
  EXPECT_EQ(count_rule(vs, RuleId::kPragmaOnce), 0u);
}

TEST(QtlintUsingNamespace, FlagsHeaderButNotSource) {
  const std::string snippet = "#pragma once\nusing namespace std;\n";
  EXPECT_EQ(count_rule(lint_content("src/env/unit.h", snippet),
                       RuleId::kNoUsingNamespace),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/env/unit.cpp", snippet),
                       RuleId::kNoUsingNamespace),
            0u);
}

TEST(QtlintIostream, FlagsHotPathStreams) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "#include <iostream>\nvoid f() { std::cout << 1; std::cerr << 2; }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kNoIostream), 3u);
}

TEST(QtlintIostream, PipelineAndHostFilesMayStream) {
  const std::string snippet = "#include <iostream>\nvoid f();\n";
  EXPECT_EQ(count_rule(lint_content("src/qtaccel/pipeline.cpp", snippet),
                       RuleId::kNoIostream),
            0u);
  EXPECT_EQ(count_rule(lint_content("src/common/cli.cpp", snippet),
                       RuleId::kNoIostream),
            0u);
}

TEST(QtlintBareAssert, FlagsAssertButNotStaticAssert) {
  const auto vs = lint_content(
      "src/env/unit.cpp",
      "#include <cassert>\n"
      "static_assert(sizeof(int) == 4);\nvoid f(int x) { assert(x > 0); }\n");
  EXPECT_EQ(count_rule(vs, RuleId::kNoBareAssert), 2u);
}

TEST(QtlintAllow, LineAnnotationSuppressesThatLineOnly) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "double a;  // qtlint: allow(datapath-purity)\ndouble b;\n");
  ASSERT_EQ(count_rule(vs, RuleId::kDatapathPurity), 1u);
  EXPECT_EQ(vs[0].line, 2u);
}

TEST(QtlintAllow, LineAnnotationTakesMultipleRules) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "double a = time(nullptr);"
      "  // qtlint: allow(datapath-purity, determinism)\n");
  EXPECT_TRUE(vs.empty());
}

TEST(QtlintAllow, FileAnnotationSuppressesWholeFile) {
  const auto vs = lint_content(
      "src/fixed/unit.cpp",
      "// qtlint: allow-file(datapath-purity)\n"
      "double a;\ndouble b;\nfloat c;\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 0u);
}

TEST(QtlintAllow, PushPopBoundsTheSuppressedRegion) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "// qtlint: push-allow(datapath-purity)\n"
      "double inside;\n"
      "// qtlint: pop-allow(datapath-purity)\n"
      "double outside;\n");
  ASSERT_EQ(count_rule(vs, RuleId::kDatapathPurity), 1u);
  EXPECT_EQ(vs[0].line, 4u);
}

TEST(QtlintAllow, UnknownRuleNameIsItselfAViolation) {
  const auto vs = lint_content(
      "src/hw/unit.cpp", "int a;  // qtlint: allow(no-such-rule)\n");
  EXPECT_EQ(count_rule(vs, RuleId::kUnknownAllow), 1u);
}

TEST(QtlintAllow, AllowDoesNotLeakToOtherRules) {
  const auto vs = lint_content(
      "src/hw/unit.cpp",
      "double a = time(nullptr);  // qtlint: allow(datapath-purity)\n");
  EXPECT_EQ(count_rule(vs, RuleId::kDatapathPurity), 0u);
  EXPECT_EQ(count_rule(vs, RuleId::kDeterminism), 1u);
}

TEST(QtlintTelemetryBoundary, FlagsHostMachineryIncludesInDatapath) {
  const std::string snippet =
      "#include \"telemetry/metrics.h\"\n"
      "#include \"telemetry/trace.h\"\nvoid f();\n";
  EXPECT_EQ(count_rule(lint_content("src/qtaccel/pipeline.cpp", snippet),
                       RuleId::kTelemetryBoundary),
            2u);
  EXPECT_EQ(count_rule(lint_content("src/hw/bram.cpp", snippet),
                       RuleId::kTelemetryBoundary),
            2u);
}

TEST(QtlintTelemetryBoundary, SinkHeaderIsTheSanctionedInclude) {
  const auto vs = lint_content(
      "src/qtaccel/fast_engine.h",
      "#pragma once\n#include \"telemetry/sink.h\"\n"
      "void set_telemetry(telemetry::TelemetrySink* sink);\n");
  EXPECT_EQ(count_rule(vs, RuleId::kTelemetryBoundary), 0u);
}

TEST(QtlintTelemetryBoundary, FlagsHostTypeIdentifiersInDatapath) {
  const auto vs = lint_content(
      "src/qtaccel/forwarding.h",
      "#pragma once\nstruct Wbq { telemetry::MetricsRegistry* reg; "
      "telemetry::TraceSession* trace; };\n");
  EXPECT_EQ(count_rule(vs, RuleId::kTelemetryBoundary), 2u);
}

TEST(QtlintTelemetryBoundary, HostSideFilesMayUseTheMachinery) {
  const std::string snippet =
      "#include \"telemetry/metrics.h\"\n"
      "telemetry::MetricsRegistry* g_registry;\n";
  EXPECT_EQ(count_rule(lint_content("src/telemetry/metrics.cpp", snippet),
                       RuleId::kTelemetryBoundary),
            0u);
  EXPECT_EQ(count_rule(lint_content("examples/quickstart.cpp", snippet),
                       RuleId::kTelemetryBoundary),
            0u);
}

TEST(QtlintRuntimeBoundary, DatapathAndSupportCodeMayNotIncludeRuntime) {
  const std::string snippet = "#include \"runtime/engine.h\"\nvoid f();\n";
  EXPECT_EQ(count_rule(lint_content("src/qtaccel/pipeline.cpp", snippet),
                       RuleId::kRuntimeBoundary),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/env/grid_world.cpp", snippet),
                       RuleId::kRuntimeBoundary),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/telemetry/metrics.cpp", snippet),
                       RuleId::kRuntimeBoundary),
            1u);
  // The runtime itself, the driver above it, and out-of-tree consumers
  // (examples, benches, tools) are the sanctioned includers.
  EXPECT_EQ(count_rule(lint_content("src/runtime/snapshot.cpp", snippet),
                       RuleId::kRuntimeBoundary),
            0u);
  EXPECT_EQ(
      count_rule(lint_content("src/driver/qtaccel_device.cpp", snippet),
                 RuleId::kRuntimeBoundary),
      0u);
  EXPECT_EQ(count_rule(lint_content("bench/bench_perf_smoke.cpp", snippet),
                       RuleId::kRuntimeBoundary),
            0u);
}

TEST(QtlintRuntimeBoundary, OnlyRuntimeAndQtaccelNameConcreteBackends) {
  const std::string snippet =
      "#include \"qtaccel/pipeline.h\"\n"
      "#include \"qtaccel/fast_engine.h\"\nvoid f();\n";
  // Everything above the seam goes through the Engine facade instead.
  EXPECT_EQ(count_rule(lint_content("examples/quickstart.cpp", snippet),
                       RuleId::kRuntimeBoundary),
            2u);
  EXPECT_EQ(count_rule(lint_content("bench/bench_microbench.cpp", snippet),
                       RuleId::kRuntimeBoundary),
            2u);
  EXPECT_EQ(
      count_rule(lint_content("src/driver/qtaccel_device.cpp", snippet),
                 RuleId::kRuntimeBoundary),
      2u);
  // The adapters and the backends' own module keep direct access.
  EXPECT_EQ(
      count_rule(lint_content("src/runtime/backend_registry.cpp", snippet),
                 RuleId::kRuntimeBoundary),
      0u);
  EXPECT_EQ(count_rule(lint_content("src/qtaccel/machine_state.h",
                                    "#pragma once\n" + snippet),
                       RuleId::kRuntimeBoundary),
            0u);
  // Other qtaccel headers stay fair game for everyone.
  EXPECT_EQ(count_rule(lint_content("examples/quickstart.cpp",
                                    "#include \"qtaccel/config.h\"\n"),
                       RuleId::kRuntimeBoundary),
            0u);
}

TEST(QtlintServeBoundary, OnlyServeIncludesServeWithinSrc) {
  const std::string snippet =
      "#include \"serve/protocol.h\"\nvoid f();\n";
  // Within src/, only the serving layer itself may depend on serve/.
  EXPECT_EQ(count_rule(lint_content("src/runtime/engine.cpp", snippet),
                       RuleId::kServeBoundary),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/env/grid_world.cpp", snippet),
                       RuleId::kServeBoundary),
            1u);
  EXPECT_EQ(count_rule(lint_content("src/serve/server.cpp", snippet),
                       RuleId::kServeBoundary),
            0u);
  // Tools, examples and benches sit above the seam and may.
  EXPECT_EQ(count_rule(lint_content("tools/qtserved.cpp", snippet),
                       RuleId::kServeBoundary),
            0u);
  EXPECT_EQ(count_rule(lint_content("bench/bench_serve.cpp", snippet),
                       RuleId::kServeBoundary),
            0u);
  EXPECT_EQ(count_rule(lint_content("examples/quickstart.cpp", snippet),
                       RuleId::kServeBoundary),
            0u);
}

TEST(QtlintServeBoundary, ServeStaysBackendGeneric) {
  // The serving layer multiplexes Engines; naming a concrete backend
  // would break the snapshot bridge between backends.
  const std::string snippet =
      "#include \"qtaccel/pipeline.h\"\n"
      "#include \"qtaccel/fast_engine.h\"\nvoid f();\n";
  const auto vs = lint_content("src/serve/session_manager.cpp", snippet);
  EXPECT_EQ(count_rule(vs, RuleId::kServeBoundary), 2u);
  // serve-boundary, not runtime-boundary, owns this diagnostic.
  EXPECT_EQ(count_rule(vs, RuleId::kRuntimeBoundary), 0u);
  // The sanctioned dependency direction: serve includes runtime/.
  EXPECT_EQ(count_rule(lint_content("src/serve/session_manager.cpp",
                                    "#include \"runtime/engine.h\"\n"),
                       RuleId::kRuntimeBoundary),
            0u);
  // And config.h (backend-agnostic types) stays fair game for serve.
  EXPECT_EQ(count_rule(lint_content("src/serve/protocol.h",
                                    "#pragma once\n"
                                    "#include \"qtaccel/config.h\"\n"),
                       RuleId::kServeBoundary),
            0u);
}

TEST(QtlintReporting, ViolationsCarryFileLineAndSortedOrder) {
  const auto vs = lint_content("src/hw/unit.cpp",
                               "int ok;\ndouble bad1;\ndouble bad2;\n");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].file, "src/hw/unit.cpp");
  EXPECT_EQ(vs[0].line, 2u);
  EXPECT_EQ(vs[1].line, 3u);
}

TEST(QtlintRules, EveryRuleHasNameScopeRationale) {
  for (const RuleId id : all_rules()) {
    EXPECT_FALSE(rule_name(id).empty());
    EXPECT_FALSE(rule_scope(id).empty());
    EXPECT_FALSE(rule_rationale(id).empty());
  }
}

}  // namespace
}  // namespace qta::lint

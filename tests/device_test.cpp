#include <gtest/gtest.h>

#include <sstream>

#include "device/calibration.h"
#include "device/device.h"
#include "device/frequency_model.h"
#include "device/power_model.h"
#include "device/resource_report.h"

namespace qta::device {
namespace {

TEST(Device, Catalogue) {
  EXPECT_EQ(xcvu13p().name, "xcvu13p");
  EXPECT_EQ(xcvu13p().bram18_blocks, 5376u);
  EXPECT_EQ(xcvu13p().uram_blocks, 1280u);
  EXPECT_EQ(xc6vlx240t().dsp_slices, 768u);
  EXPECT_EQ(device_by_name("xc7vx690t").name, "xc7vx690t");
  EXPECT_DEATH(device_by_name("nope"), "unknown device");
}

TEST(Device, UramCapacityMatchesPaper) {
  // The paper cites ~360 Mb of UltraRAM on state-of-the-art devices.
  const double mb = static_cast<double>(xcvu13p().uram_bits()) / 1e6;
  EXPECT_NEAR(mb, 377.0, 25.0);  // 1280 * 288Kb = 360 MiB-ish
}

TEST(Packing, SingleTileMinimum) {
  EXPECT_EQ(bram18_tiles_for(hw::MemoryReq{"m", 10, 18, 2}), 1u);
}

TEST(Packing, DepthScaling) {
  EXPECT_EQ(bram18_tiles_for(hw::MemoryReq{"m", 1024, 18, 2}), 1u);
  EXPECT_EQ(bram18_tiles_for(hw::MemoryReq{"m", 1025, 18, 2}), 2u);
  EXPECT_EQ(bram18_tiles_for(hw::MemoryReq{"m", 2048, 18, 2}), 2u);
}

TEST(Packing, WidthScaling) {
  EXPECT_EQ(bram18_tiles_for(hw::MemoryReq{"m", 1024, 19, 2}), 2u);
  EXPECT_EQ(bram18_tiles_for(hw::MemoryReq{"m", 1024, 36, 2}), 2u);
  EXPECT_EQ(bram18_tiles_for(hw::MemoryReq{"m", 1024, 37, 2}), 3u);
}

TEST(Packing, LedgerSum) {
  hw::ResourceLedger ledger;
  ledger.add_memory({"a", 1024, 18, 2});
  ledger.add_memory({"b", 2048, 18, 1});
  EXPECT_EQ(bram18_tiles_for(ledger), 3u);
}

// Figure 4 calibration: the Q + reward (+ Qmax) tables for the paper's
// test cases at |A| = 8 with 18-bit entries should land near the reported
// BRAM utilization percentages on the xcvu13p. The paper's percentages
// track memory *bits* (block-granularity rounding would inflate the tiny
// cases), so bit-level utilization is the model's reported metric.
TEST(Calibration, Figure4BramUtilization) {
  const Device dev = xcvu13p();
  struct Point {
    std::uint64_t states;
    double paper_pct;
  };
  // Paper Figure 4 values (|A| = 8).
  const Point points[] = {{64, 0.02},     {256, 0.09},  {1024, 0.32},
                          {4096, 1.3},    {16384, 4.8}, {65536, 19.42},
                          {262144, 78.12}};
  for (const auto& p : points) {
    const std::uint64_t depth = p.states * 8;
    hw::ResourceLedger ledger;
    ledger.add_memory({"q", depth, 18, 2});
    ledger.add_memory({"r", depth, 18, 1});
    ledger.add_memory({"qmax", p.states, 21, 2});
    const double pct = 100.0 *
                       static_cast<double>(ledger.memory_bits()) /
                       static_cast<double>(dev.bram_bits());
    // Within 12% relative (or 0.02pp absolute for the tiny cases).
    EXPECT_NEAR(pct, p.paper_pct, std::max(0.12 * p.paper_pct, 0.02))
        << "|S| = " << p.states;
  }
}

TEST(Packing, UramPacksNarrowEntries) {
  // Four 18-bit entries per 72-bit word: 16384 entries = 4096 words = 1
  // tile.
  EXPECT_EQ(uram_tiles_for(hw::MemoryReq{"m", 16384, 18, 2}), 1u);
  EXPECT_EQ(uram_tiles_for(hw::MemoryReq{"m", 16385, 18, 2}), 2u);
  // Full-width entries: one per word.
  EXPECT_EQ(uram_tiles_for(hw::MemoryReq{"m", 4096, 72, 2}), 1u);
  // Wider than a lane spans lanes.
  EXPECT_EQ(uram_tiles_for(hw::MemoryReq{"m", 4096, 144, 2}), 2u);
}

TEST(Packing, MemoriesFitWithAndWithoutUram) {
  const Device dev = xcvu13p();
  hw::ResourceLedger huge;
  // 8M x 18b twice: ~302 Mb — too big for BRAM, fits URAM + BRAM.
  huge.add_memory({"q", 8u << 20, 18, 2});
  huge.add_memory({"r", 8u << 20, 18, 1});
  EXPECT_FALSE(memories_fit(dev, huge, /*use_uram=*/false));
  EXPECT_TRUE(memories_fit(dev, huge, /*use_uram=*/true));
  // A Virtex-7 has no URAM: the flag must not help.
  EXPECT_FALSE(memories_fit(xc7vx690t(), huge, true));
}

TEST(FrequencyModel, BaselineClockAtLowUtilization) {
  const Device dev = xcvu13p();
  EXPECT_NEAR(estimated_clock_mhz(dev, 1), 189.0, 1.5);
}

TEST(FrequencyModel, MonotoneNonIncreasing) {
  const Device dev = xcvu13p();
  double last = 1e9;
  for (std::uint64_t tiles : {1ull, 10ull, 100ull, 500ull, 1000ull,
                              2000ull, 4000ull, 5376ull}) {
    const double f = estimated_clock_mhz(dev, tiles);
    EXPECT_LE(f, last);
    last = f;
  }
}

// Table II endpoints: |S| = 262144, |A| = 4 -> ~156 MHz; |A| = 8 -> ~153.
TEST(Calibration, TableIIClockEndpoints) {
  const Device dev = xcvu13p();
  auto tiles = [](std::uint64_t states, unsigned actions) {
    hw::ResourceLedger ledger;
    ledger.add_memory({"q", states * actions, 18, 2});
    ledger.add_memory({"r", states * actions, 18, 1});
    ledger.add_memory({"qmax", states, 21, 2});
    return bram18_tiles_for(ledger);
  };
  EXPECT_NEAR(estimated_clock_mhz(dev, tiles(262144, 4)), 156.0, 8.0);
  EXPECT_NEAR(estimated_clock_mhz(dev, tiles(262144, 8)), 153.0, 8.0);
  EXPECT_NEAR(estimated_clock_mhz(dev, tiles(64, 4)), 189.0, 2.0);
}

TEST(FrequencyModel, OverflowAborts) {
  const Device dev = xc6vlx240t();
  EXPECT_DEATH(estimated_clock_mhz(dev, dev.bram18_blocks + 1),
               "does not fit");
}

TEST(FrequencyModel, Throughput) {
  EXPECT_DOUBLE_EQ(throughput_sps(189.0, 1.0), 189e6);
  EXPECT_DOUBLE_EQ(throughput_sps(100.0, 0.25), 25e6);
}

TEST(PowerModel, GrowsWithBram) {
  const Device dev = xcvu13p();
  hw::ResourceLedger small, large;
  small.add_memory({"q", 1024, 18, 2});
  large.add_memory({"q", 1024 * 1024, 18, 2});
  small.add_dsp(4, "d");
  large.add_dsp(4, "d");
  EXPECT_LT(estimated_power(dev, small).total_mw(),
            estimated_power(dev, large).total_mw());
}

TEST(PowerModel, BreakdownSums) {
  const Device dev = xcvu13p();
  hw::ResourceLedger ledger;
  ledger.add_memory({"q", 4096, 18, 2});
  ledger.add_dsp(4, "d");
  ledger.add_flip_flops(500, "r");
  ledger.add_luts(300, "l");
  const PowerBreakdown p = estimated_power(dev, ledger);
  EXPECT_NEAR(p.total_mw(),
              p.static_mw + p.bram_mw + p.dsp_mw + p.ff_mw + p.lut_mw,
              1e-12);
  EXPECT_GT(p.dsp_mw, 0.0);
  EXPECT_GT(p.bram_mw, 0.0);
}

TEST(ResourceReport, ComputesUtilization) {
  const Device dev = xcvu13p();
  hw::ResourceLedger ledger;
  ledger.add_memory({"q", 1024, 18, 2});
  ledger.add_dsp(4, "d");
  ledger.add_flip_flops(346, "r");
  const ResourceReport r = make_report(dev, ledger);
  EXPECT_TRUE(r.fits);
  EXPECT_EQ(r.bram18_tiles, 1u);
  EXPECT_EQ(r.dsp, 4u);
  EXPECT_NEAR(r.dsp_util_pct, 100.0 * 4 / 12288, 1e-9);
  EXPECT_NEAR(r.ff_util_pct, 100.0 * 346 / 3456000.0, 1e-9);
  EXPECT_GT(r.clock_mhz, 180.0);
}

TEST(ResourceReport, DetectsOverflow) {
  const Device dev = xc6vlx240t();
  hw::ResourceLedger ledger;
  ledger.add_dsp(1000, "too many");
  const ResourceReport r = make_report(dev, ledger);
  EXPECT_FALSE(r.fits);
  EXPECT_EQ(r.clock_mhz, 0.0);
}

TEST(ResourceReport, Prints) {
  const Device dev = xcvu13p();
  hw::ResourceLedger ledger;
  ledger.add_dsp(4, "d");
  std::ostringstream os;
  make_report(dev, ledger).print(os);
  EXPECT_NE(os.str().find("xcvu13p"), std::string::npos);
  EXPECT_NE(os.str().find("DSP"), std::string::npos);
}

}  // namespace
}  // namespace qta::device

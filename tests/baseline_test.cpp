#include <gtest/gtest.h>

#include "baseline/dict_q_learning.h"
#include "baseline/flat_q_learning.h"
#include "baseline/fsm_accelerator.h"
#include "device/device.h"
#include "env/grid_world.h"
#include "env/value_iteration.h"

namespace qta::baseline {
namespace {

env::GridWorldConfig grid(unsigned w, unsigned h) {
  env::GridWorldConfig c;
  c.width = w;
  c.height = h;
  c.num_actions = 4;
  return c;
}

TEST(DictQLearning, LearnsGoalPolicy) {
  env::GridWorld g(grid(8, 8));
  DictQLearning learner(g, 0.2, 0.9, 1);
  const CpuRunResult r = learner.run(300000);
  EXPECT_EQ(r.samples, 300000u);
  EXPECT_GT(r.episodes, 0u);
  EXPECT_GT(r.samples_per_sec, 0.0);
  // Extract the greedy policy from the dict and check it reaches the goal.
  std::vector<ActionId> policy(g.num_states(), 0);
  for (StateId s = 0; s < g.num_states(); ++s) {
    double best = -1e300;
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      if (learner.q(s, a) > best) {
        best = learner.q(s, a);
        policy[s] = a;
      }
    }
  }
  EXPECT_GE(env::rollout_steps(g, policy, g.state_of(0, 0), 200), 0);
}

TEST(DictQLearning, UnvisitedEntriesReadZero) {
  env::GridWorld g(grid(4, 4));
  DictQLearning learner(g, 0.1, 0.9, 1);
  EXPECT_DOUBLE_EQ(learner.q(0, 0), 0.0);
}

TEST(FlatQLearning, MatchesValueIterationOnSmallGrid) {
  env::GridWorld g(grid(4, 4));
  FlatQLearning learner(g, 0.15, 0.9, 2);
  learner.run(400000);
  const auto optimal = env::value_iteration(g, 0.9);
  EXPECT_LT(env::greedy_path_q_error(g, optimal, learner.table(),
                                     g.state_of(0, 0)),
            1.0);
}

TEST(FlatQLearning, FasterThanDictLayout) {
  // The whole point of the layout ablation: contiguous arrays beat nested
  // hash maps. Use enough samples to dominate timer noise.
  env::GridWorld g(grid(64, 64));
  DictQLearning dict(g, 0.2, 0.9, 3);
  FlatQLearning flat(g, 0.2, 0.9, 3);
  const CpuRunResult rd = dict.run(400000);
  const CpuRunResult rf = flat.run(400000);
  EXPECT_GT(rf.samples_per_sec, rd.samples_per_sec);
}

TEST(FsmModel, MultipliersScaleWithPairs) {
  EXPECT_EQ(FsmAcceleratorModel::multipliers(12, 4), 96u);
  EXPECT_EQ(FsmAcceleratorModel::multipliers(56, 8), 896u);
  EXPECT_EQ(FsmAcceleratorModel::multipliers(132, 4), 1056u);
}

TEST(FsmModel, Anchor132x4SaturatesVirtex6) {
  // The paper: "For 132 state, 4 actions the design in [11] fully
  // utilized the DSP and logic on the FPGA device" (Virtex-6, 768 DSP).
  const device::Device v6 = device::xc6vlx240t();
  EXPECT_GT(FsmAcceleratorModel::multipliers(132, 4), v6.dsp_slices);
  EXPECT_FALSE(FsmAcceleratorModel::fits(v6, 132, 4));
  EXPECT_TRUE(FsmAcceleratorModel::fits(v6, 64, 4));
}

TEST(FsmModel, MaxStatesIsTight) {
  const device::Device v6 = device::xc6vlx240t();
  const StateId ms = FsmAcceleratorModel::max_states(v6, 4);
  EXPECT_TRUE(FsmAcceleratorModel::fits(v6, ms, 4));
  EXPECT_FALSE(FsmAcceleratorModel::fits(v6, ms + 1, 4));
  // The paper says [11] supports ~132 states on this class of device;
  // QTAccel supports "more than 1000X" that.
  EXPECT_NEAR(static_cast<double>(ms), 132.0, 70.0);
}

TEST(FsmModel, WastedWorkFraction) {
  EXPECT_NEAR(FsmAcceleratorModel::wasted_multiplier_fraction(12, 4),
              47.0 / 48.0, 1e-12);
}

TEST(FsmModel, ThroughputAnchor) {
  // QTAccel at ~180 MS/s is "more than 15X higher" than [11].
  EXPECT_GT(180e6 / FsmAcceleratorModel::throughput_sps(), 15.0);
}

TEST(FsmModel, ResourcesLedger) {
  const auto ledger = FsmAcceleratorModel::resources(56, 4);
  EXPECT_EQ(ledger.dsp(), 448u);
  EXPECT_GT(ledger.luts(), 0u);
  EXPECT_GT(ledger.flip_flops(), 0u);
  EXPECT_TRUE(ledger.memories().empty());  // Q lives in flip-flops
}

}  // namespace
}  // namespace qta::baseline

#include <gtest/gtest.h>

#include "env/stateful_bandit.h"
#include "env/value_iteration.h"
#include "qtaccel/pipeline.h"

namespace qta::env {
namespace {

// Four arms (power of two for the accelerator) with mixed periods — the
// restless "fading channels" instance. Single-arm means: 4.5, 2.0, 1.0,
// 5/3; a phase-aware scheduler harvests peaks across arms and beats all
// of them.
std::vector<std::vector<double>> channel_arms() {
  return {
      {0.0, 9.0},        // period 2, mean 4.5
      {0.0, 0.0, 6.0},   // period 3, mean 2.0
      {1.0, 1.0},        // flat fallback, mean 1.0
      {0.0, 5.0, 0.0},   // period 3, mean 5/3
  };
}

TEST(StatefulBandit, MixedRadixStateRoundTrip) {
  StatefulBandit b(channel_arms(), BanditDynamics::kRestless);
  EXPECT_EQ(b.num_states(), 2u * 3u * 2u * 3u);  // 36
  EXPECT_EQ(b.num_actions(), 4u);
  const StateId s = b.state_of({1, 2, 0, 1});
  EXPECT_EQ(b.phase_of(s, 0), 1u);
  EXPECT_EQ(b.phase_of(s, 1), 2u);
  EXPECT_EQ(b.phase_of(s, 2), 0u);
  EXPECT_EQ(b.phase_of(s, 3), 1u);
  EXPECT_EQ(b.phases(0), 2u);
  EXPECT_EQ(b.phases(1), 3u);
}

TEST(StatefulBandit, RestedAdvancesOnlyPulledArm) {
  StatefulBandit b(channel_arms(), BanditDynamics::kRested);
  const StateId s = b.state_of({0, 1, 1, 2});
  const StateId s2 = b.transition(s, 1);
  EXPECT_EQ(b.phase_of(s2, 0), 0u);
  EXPECT_EQ(b.phase_of(s2, 1), 2u);
  EXPECT_EQ(b.phase_of(s2, 2), 1u);
  EXPECT_EQ(b.phase_of(s2, 3), 2u);
  // Wrap-around of a period-3 arm.
  const StateId s3 = b.transition(s2, 1);
  EXPECT_EQ(b.phase_of(s3, 1), 0u);
}

TEST(StatefulBandit, RestlessAdvancesEveryArm) {
  StatefulBandit b(channel_arms(), BanditDynamics::kRestless);
  const StateId s = b.state_of({1, 2, 1, 0});
  for (ActionId a = 0; a < b.num_actions(); ++a) {
    const StateId n = b.transition(s, a);
    EXPECT_EQ(b.phase_of(n, 0), 0u);  // 1 -> 0 (period 2)
    EXPECT_EQ(b.phase_of(n, 1), 0u);  // 2 -> 0 (period 3)
    EXPECT_EQ(b.phase_of(n, 2), 0u);
    EXPECT_EQ(b.phase_of(n, 3), 1u);
  }
}

TEST(StatefulBandit, RewardDependsOnPulledArmPhase) {
  StatefulBandit b(channel_arms(), BanditDynamics::kRestless);
  EXPECT_DOUBLE_EQ(b.reward(b.state_of({1, 0, 0, 0}), 0), 9.0);
  EXPECT_DOUBLE_EQ(b.reward(b.state_of({0, 0, 0, 0}), 0), 0.0);
  EXPECT_DOUBLE_EQ(b.reward(b.state_of({0, 2, 0, 0}), 1), 6.0);
  EXPECT_DOUBLE_EQ(b.reward(b.state_of({0, 0, 1, 0}), 2), 1.0);
}

TEST(StatefulBandit, NeverTerminal) {
  StatefulBandit b(channel_arms(), BanditDynamics::kRestless);
  for (StateId s = 0; s < b.num_states(); ++s) {
    EXPECT_FALSE(b.is_terminal(s));
  }
}

TEST(StatefulBandit, BestSingleArmMean) {
  StatefulBandit b(channel_arms(), BanditDynamics::kRestless);
  EXPECT_DOUBLE_EQ(b.best_single_arm_mean(), 4.5);
}

TEST(StatefulBandit, RestedCannotBeatBestSingleArm) {
  // Structural property of deterministic rested cycles: any policy's
  // long-run mean is a convex mix of cycle means.
  StatefulBandit b(channel_arms(), BanditDynamics::kRested);
  const auto vi = value_iteration(b, 0.95);
  const double mean = b.greedy_rollout_mean(vi.policy, 0, 6000);
  EXPECT_LE(mean, b.best_single_arm_mean() + 1e-9);
}

TEST(StatefulBandit, RestlessSchedulerBeatsEverySingleArm) {
  StatefulBandit b(channel_arms(), BanditDynamics::kRestless);
  const auto vi = value_iteration(b, 0.95);
  const double mean = b.greedy_rollout_mean(vi.policy, 0, 6000);
  EXPECT_GT(mean, b.best_single_arm_mean() + 0.5);
}

TEST(StatefulBandit, QtaccelPipelineLearnsTheSchedule) {
  // Section VII-B's point: the UNMODIFIED accelerator handles stateful
  // bandits through the ordinary state concatenation.
  StatefulBandit b(channel_arms(), BanditDynamics::kRestless);
  qtaccel::PipelineConfig c;
  c.alpha = 0.2;
  c.gamma = 0.95;
  c.seed = 5;
  c.max_episode_length = 4096;
  qtaccel::Pipeline p(b, c);
  p.run_samples(400000);

  std::vector<ActionId> policy(b.num_states(), 0);
  for (StateId s = 0; s < b.num_states(); ++s) {
    double best = -1e300;
    for (ActionId a = 0; a < b.num_actions(); ++a) {
      if (p.q_value(s, a) > best) {
        best = p.q_value(s, a);
        policy[s] = a;
      }
    }
  }
  const double mean = b.greedy_rollout_mean(policy, 0, 6000);
  EXPECT_GT(mean, b.best_single_arm_mean() + 0.5)
      << "the learned schedule should beat any fixed arm";
  EXPECT_GT(p.stats().samples_per_cycle(), 0.99);
}

TEST(StatefulBandit, ValidatesInput) {
  const std::vector<std::vector<double>> one_arm{{1.0}};
  EXPECT_DEATH(StatefulBandit(one_arm, BanditDynamics::kRested),
               "two arms");
  const std::vector<std::vector<double>> empty_arm{{1.0, 2.0}, {}};
  EXPECT_DEATH(StatefulBandit(empty_arm, BanditDynamics::kRested),
               "at least one phase");
}

}  // namespace
}  // namespace qta::env

// Session eviction under churn (the serving tentpole's stress proof):
// 64 logical sessions multiplexed onto 8 hot slots and 4 workers, driven
// with a randomized interleaving of Step / Evict / Query requests. Every
// session must end bit-identical — snapshot text (tables, stats, RNG)
// AND telemetry counters — to a standalone engine that executed the same
// Step partitioning with no serving layer, no eviction, and no thread
// pool. Run on all three backends; on the lanes backend the bursts also
// exercise pump()'s lane-group coalescing against the eviction churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "env/grid_world.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"
#include "serve/protocol.h"
#include "serve/transport.h"
#include "telemetry/metrics.h"
#include "telemetry/pipeline_telemetry.h"

namespace qta::serve {
namespace {

constexpr std::size_t kSessions = 64;
constexpr unsigned kMaxHot = 8;
constexpr unsigned kWorkers = 4;
constexpr int kRounds = 24;
constexpr std::size_t kBurst = 16;  // posts per round (cross-session batch)

qtaccel::Algorithm algorithm_for(std::size_t i) {
  switch (i % 4) {
    case 0: return qtaccel::Algorithm::kQLearning;
    case 1: return qtaccel::Algorithm::kSarsa;
    case 2: return qtaccel::Algorithm::kExpectedSarsa;
    default: return qtaccel::Algorithm::kDoubleQ;
  }
}

SessionSpec spec_for(std::size_t i, qtaccel::Backend backend) {
  SessionSpec spec;
  spec.width = 8;
  spec.height = 8;
  spec.actions = 4;
  spec.algorithm = algorithm_for(i);
  spec.backend = backend;
  spec.seed = 1000 + i;
  spec.max_episode_length = 128;
  spec.telemetry = (i % 4 == 0);  // every 4th session carries a sink
  return spec;
}

std::vector<std::string> session_metric_lines(const std::string& prom,
                                              SessionId id) {
  const std::string needle = "pipe=\"" + std::to_string(id) + "\"";
  std::vector<std::string> lines;
  std::istringstream is(prom);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("qta_", 0) == 0 &&
        line.find(needle) != std::string::npos) {
      lines.push_back(line);
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

void churn(qtaccel::Backend backend) {
  ServerOptions options;
  options.max_hot = kMaxHot;
  options.workers = kWorkers;
  options.max_queue = kSessions;  // churn probes exactness, not overload
  LoopbackTransport transport(options);

  std::vector<SessionId> ids(kSessions);
  std::vector<SessionSpec> specs(kSessions);
  // The standalone replays must partition run_samples identically, so
  // record every session's Step chunks in service order.
  std::vector<std::vector<std::uint64_t>> chunks(kSessions);

  for (std::size_t i = 0; i < kSessions; ++i) {
    specs[i] = spec_for(i, backend);
    Request create;
    create.type = RequestType::kCreateSession;
    create.spec = specs[i];
    const Response resp = transport.call(create);
    ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    ids[i] = resp.session;
  }

  // Seed every session with one Step so each has state worth churning.
  for (std::size_t i = 0; i < kSessions; ++i) {
    Request step;
    step.type = RequestType::kStep;
    step.session = ids[i];
    step.steps = 64;
    ASSERT_EQ(transport.call(step).status, Status::kOk);
    chunks[i].push_back(64);
  }

  // Randomized interleaving. Each round posts a 16-request burst across
  // distinct random sessions BEFORE waiting, so pump() batches across
  // sessions onto the 4 workers while the LRU churns 64 sessions
  // through 8 slots.
  std::mt19937 rng(backend == qtaccel::Backend::kFast ? 71u : 72u);
  std::uniform_int_distribution<std::size_t> pick_session(0,
                                                          kSessions - 1);
  std::uniform_int_distribution<int> pick_op(0, 9);
  const std::uint64_t step_sizes[] = {32, 64, 128, 256};
  std::uniform_int_distribution<std::size_t> pick_steps(0, 3);

  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::size_t> chosen;
    while (chosen.size() < kBurst) {
      const std::size_t s = pick_session(rng);
      if (std::find(chosen.begin(), chosen.end(), s) == chosen.end()) {
        chosen.push_back(s);
      }
    }
    std::vector<Ticket> tickets;
    for (const std::size_t s : chosen) {
      Request req;
      req.session = ids[s];
      const int op = pick_op(rng);
      if (op < 6) {  // 60% Step
        req.type = RequestType::kStep;
        req.steps = step_sizes[pick_steps(rng)];
        chunks[s].push_back(req.steps);
      } else if (op < 8) {  // 20% forced evict (cold save + restore)
        req.type = RequestType::kEvict;
      } else {  // 20% Query (acquires hot, mutates nothing)
        req.type = RequestType::kQuery;
        req.state = 5;
      }
      tickets.push_back(transport.post(req));
    }
    for (const Ticket t : tickets) {
      ASSERT_EQ(transport.wait(t).status, Status::kOk);
    }
  }

  // The churn actually churned: capacity evictions and restores fired.
  auto& sessions = transport.server().sessions();  // snapshot_text mutates
  EXPECT_GT(sessions.lru_evictions(), kSessions) << "not enough churn";
  EXPECT_GT(sessions.restores(), kSessions);
  ASSERT_EQ(sessions.size(), kSessions);

  // Every session must be bit-identical to its standalone double.
  const std::string served_prom =
      transport.server().metrics().prometheus_text();
  for (std::size_t i = 0; i < kSessions; ++i) {
    env::GridWorldConfig gc;
    gc.width = specs[i].width;
    gc.height = specs[i].height;
    gc.num_actions = specs[i].actions;
    env::GridWorld world(gc);

    telemetry::MetricsRegistry standalone_metrics;
    std::unique_ptr<telemetry::PipelineTelemetry> sink;
    runtime::Engine standalone(world, make_config(specs[i]));
    if (specs[i].telemetry) {
      sink = std::make_unique<telemetry::PipelineTelemetry>(
          qtaccel::make_run_labels(make_config(specs[i]),
                                   static_cast<unsigned>(ids[i])),
          &standalone_metrics, nullptr,
          static_cast<std::uint32_t>(ids[i]));
      standalone.set_telemetry(sink.get());
    }
    for (const std::uint64_t chunk : chunks[i]) {
      standalone.run_samples(standalone.stats().samples + chunk);
    }

    const std::string tag = "session " + std::to_string(ids[i]) + " (" +
                            qtaccel::algorithm_name(specs[i].algorithm) +
                            ", " +
                            qtaccel::backend_name(specs[i].backend) + ")";
    std::ostringstream reference;
    runtime::save_snapshot(standalone, reference);
    ASSERT_EQ(sessions.snapshot_text(ids[i]), reference.str()) << tag;

    if (specs[i].telemetry) {
      const auto served = session_metric_lines(served_prom, ids[i]);
      const auto local =
          session_metric_lines(standalone_metrics.prometheus_text(),
                               ids[i]);
      ASSERT_FALSE(local.empty()) << tag;
      EXPECT_EQ(served, local) << tag;
    }
  }
}

// Delta-chain churn: two sessions ping-pong on ONE hot slot, so every
// Step evicts the other session and every acquire restores a cold
// chain. Short 32-sample epochs keep the dirty-row set small, so parks
// after the first are v3 deltas; the chain compacts back to a full
// image at max_delta_chain. snapshot_text() must still materialize v2
// text bit-identical to an unserved engine that ran the same chunks —
// through base+delta replay, compaction, and async park overlap.
void delta_chain_churn(qtaccel::Backend backend, bool v2_full_parks) {
  ServerOptions options;
  options.max_hot = 1;
  options.workers = 2;
  options.max_queue = 16;
  if (v2_full_parks) options.park_format = ParkFormat::kV2Text;
  LoopbackTransport transport(options);

  constexpr std::size_t kPair = 2;
  constexpr int kPingPongRounds = 20;
  constexpr std::uint64_t kStepChunk = 32;
  std::vector<SessionId> ids(kPair);
  std::vector<SessionSpec> specs(kPair);
  for (std::size_t i = 0; i < kPair; ++i) {
    specs[i] = spec_for(i, backend);
    Request create;
    create.type = RequestType::kCreateSession;
    create.spec = specs[i];
    const Response resp = transport.call(create);
    ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    ids[i] = resp.session;
  }
  for (int round = 0; round < kPingPongRounds; ++round) {
    for (std::size_t i = 0; i < kPair; ++i) {
      Request step;
      step.type = RequestType::kStep;
      step.session = ids[i];
      step.steps = kStepChunk;
      ASSERT_EQ(transport.call(step).status, Status::kOk);
    }
  }

  auto& sessions = transport.server().sessions();
  EXPECT_GT(sessions.restores(), static_cast<std::uint64_t>(
                                     kPingPongRounds));  // real churn

  auto& metrics = transport.server().metrics();
  const std::uint64_t v3_full =
      metrics
          .counter("qtserve_park_bytes_total",
                   {{"format", "v3"}, {"kind", "full"}})
          .value();
  const std::uint64_t v3_delta =
      metrics
          .counter("qtserve_park_bytes_total",
                   {{"format", "v3"}, {"kind", "delta"}})
          .value();
  const std::uint64_t v2_full =
      metrics
          .counter("qtserve_park_bytes_total",
                   {{"format", "v2"}, {"kind", "full"}})
          .value();
  if (v2_full_parks) {
    EXPECT_GT(v2_full, 0u);
    EXPECT_EQ(v3_full, 0u);
    EXPECT_EQ(v3_delta, 0u);  // deltas require a v3 chain
  } else {
    EXPECT_GT(v3_full, 0u);   // initial bases + compaction rebases
    EXPECT_GT(v3_delta, 0u);  // steady-state parks are deltas
    EXPECT_EQ(v2_full, 0u);
    // The whole point: the average delta park is materially smaller
    // than the average full park.
    EXPECT_LT(v3_delta / (kPingPongRounds - 4), v3_full / 4);
  }
  const std::uint64_t restore_total =
      metrics
          .counter("qtserve_restore_bytes_total",
                   {{"format", v2_full_parks ? "v2" : "v3"},
                    {"kind", "full"}})
          .value();
  EXPECT_GT(restore_total, 0u);

  for (std::size_t i = 0; i < kPair; ++i) {
    env::GridWorldConfig gc;
    gc.width = specs[i].width;
    gc.height = specs[i].height;
    gc.num_actions = specs[i].actions;
    env::GridWorld world(gc);
    runtime::Engine standalone(world, make_config(specs[i]));
    for (int round = 0; round < kPingPongRounds; ++round) {
      standalone.run_samples(standalone.stats().samples + kStepChunk);
    }
    std::ostringstream reference;
    runtime::save_snapshot(standalone, reference);
    ASSERT_EQ(sessions.snapshot_text(ids[i]), reference.str())
        << "session " << ids[i] << " ("
        << qtaccel::backend_name(backend) << ")";
  }
}

TEST(ServeChurnDelta, ChainsAndCompactsOnFastBackend) {
  delta_chain_churn(qtaccel::Backend::kFast, /*v2_full_parks=*/false);
}

TEST(ServeChurnDelta, ChainsAndCompactsOnCycleBackend) {
  delta_chain_churn(qtaccel::Backend::kCycleAccurate,
                    /*v2_full_parks=*/false);
}

TEST(ServeChurnDelta, ChainsAndCompactsOnLanesBackend) {
  delta_chain_churn(qtaccel::Backend::kLanes, /*v2_full_parks=*/false);
}

TEST(ServeChurnDelta, V2TextParkFormatStaysBitExact) {
  delta_chain_churn(qtaccel::Backend::kFast, /*v2_full_parks=*/true);
}

TEST(ServeChurn, SixtyFourSessionsBitExactOnFastBackend) {
  churn(qtaccel::Backend::kFast);
}

TEST(ServeChurn, SixtyFourSessionsBitExactOnCycleBackend) {
  churn(qtaccel::Backend::kCycleAccurate);
}

// Lane backend under churn: bursts coalesce same-algorithm sessions
// into lane groups while the LRU evicts and restores around them, so
// state migrates engine -> group -> engine -> cold snapshot and back.
// Runs under TSan in CI (the ServeChurn filter) to race-hunt the
// group-vs-eviction interleaving.
TEST(ServeChurn, SixtyFourSessionsBitExactOnLanesBackend) {
  churn(qtaccel::Backend::kLanes);
}

}  // namespace
}  // namespace qta::serve

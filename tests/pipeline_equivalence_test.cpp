// THE central correctness property of the reproduction: the pipelined
// accelerator, with its forwarding network, retires a trace that is
// bit-identical to sequential execution of the same update rule — the
// paper's claim that the pipeline "fully handles the dependencies between
// consecutive updates ... processing one sample every clock cycle".
//
// The sweep deliberately includes adversarial environments:
//   * a 2-state ring MDP where EVERY consecutive update is a read-after-
//     write hazard at distance 1;
//   * a 4-state ring (hazards at distance |pipeline|-1);
//   * a single-nonterminal-state self-loop world (every update hits the
//     same Q row forever);
//   * grid worlds with and without obstacles (episode restarts, bubbles).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "env/grid_world.h"
#include "env/random_mdp.h"
#include "runtime/engine.h"
#include "qtaccel/golden_model.h"
#include "qtaccel/pipeline.h"

namespace qta::qtaccel {
namespace {

enum class EnvKind {
  kRing2,
  kRing4,
  kSelfLoop,
  kGrid4x4,
  kGrid8x8Obstacles,
  kGrid4x4EightActions,
  kGrid4x4Slippery,
};

const char* env_name(EnvKind k) {
  switch (k) {
    case EnvKind::kRing2: return "ring2";
    case EnvKind::kRing4: return "ring4";
    case EnvKind::kSelfLoop: return "selfloop";
    case EnvKind::kGrid4x4: return "grid4x4";
    case EnvKind::kGrid8x8Obstacles: return "grid8x8obst";
    case EnvKind::kGrid4x4EightActions: return "grid4x4a8";
    case EnvKind::kGrid4x4Slippery: return "grid4x4slip";
  }
  return "?";
}

std::unique_ptr<env::Environment> make_env(EnvKind kind) {
  switch (kind) {
    case EnvKind::kRing2: {
      env::RandomMdpConfig c;
      c.num_states = 2;
      c.num_actions = 4;
      c.ring = true;
      c.reward_lo = -2.0;
      c.reward_hi = 2.0;
      return std::make_unique<env::RandomMdp>(c);
    }
    case EnvKind::kRing4: {
      env::RandomMdpConfig c;
      c.num_states = 4;
      c.num_actions = 4;
      c.ring = true;
      return std::make_unique<env::RandomMdp>(c);
    }
    case EnvKind::kSelfLoop: {
      // Every transition stays in place: an episode hammers one Q row
      // until the watchdog fires — maximal same-row pressure.
      env::RandomMdpConfig c;
      c.num_states = 2;
      c.num_actions = 2;
      c.seed = 7;
      c.self_loop = true;
      return std::make_unique<env::RandomMdp>(c);
    }
    case EnvKind::kGrid4x4: {
      env::GridWorldConfig c;
      c.width = 4;
      c.height = 4;
      c.num_actions = 4;
      return std::make_unique<env::GridWorld>(c);
    }
    case EnvKind::kGrid8x8Obstacles: {
      env::GridWorldConfig c;
      c.width = 8;
      c.height = 8;
      c.num_actions = 4;
      c.obstacle_density = 0.2;
      c.obstacle_seed = 11;
      return std::make_unique<env::GridWorld>(c);
    }
    case EnvKind::kGrid4x4EightActions: {
      env::GridWorldConfig c;
      c.width = 4;
      c.height = 4;
      c.num_actions = 8;
      return std::make_unique<env::GridWorld>(c);
    }
    case EnvKind::kGrid4x4Slippery: {
      // Stochastic transitions: the noise LFSR joins the draw pattern.
      env::GridWorldConfig c;
      c.width = 4;
      c.height = 4;
      c.num_actions = 4;
      c.slip_probability = 0.3;
      return std::make_unique<env::GridWorld>(c);
    }
  }
  return nullptr;
}

struct Case {
  Algorithm algorithm;
  QmaxMode qmax;
  EnvKind env;
  double alpha;
  double gamma;
  double epsilon;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::ostringstream os;
  const char* algo_name = "QL";
  switch (c.algorithm) {
    case Algorithm::kQLearning: algo_name = "QL"; break;
    case Algorithm::kSarsa: algo_name = "SARSA"; break;
    case Algorithm::kExpectedSarsa: algo_name = "ESARSA"; break;
    case Algorithm::kDoubleQ: algo_name = "DQ"; break;
  }
  os << algo_name << '_'
     << (c.qmax == QmaxMode::kMonotoneTable ? "mono" : "exact") << '_'
     << env_name(c.env) << "_a" << static_cast<int>(c.alpha * 100) << "_g"
     << static_cast<int>(c.gamma * 100) << "_e"
     << static_cast<int>(c.epsilon * 100) << "_s" << c.seed;
  return os.str();
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  const EnvKind envs[] = {
      EnvKind::kRing2,         EnvKind::kRing4,
      EnvKind::kSelfLoop,      EnvKind::kGrid4x4,
      EnvKind::kGrid8x8Obstacles, EnvKind::kGrid4x4EightActions,
      EnvKind::kGrid4x4Slippery,
  };
  for (auto algorithm : {Algorithm::kQLearning, Algorithm::kSarsa,
                         Algorithm::kExpectedSarsa, Algorithm::kDoubleQ}) {
    for (auto qmax : {QmaxMode::kMonotoneTable, QmaxMode::kExactScan}) {
      for (EnvKind e : envs) {
        for (std::uint64_t seed : {1ull, 99ull}) {
          cases.push_back({algorithm, qmax, e, 0.25, 0.9, 0.1, seed});
        }
      }
      // Parameter extremes on one environment.
      cases.push_back({algorithm, qmax, EnvKind::kRing2, 1.0, 0.0, 0.5, 3});
      cases.push_back(
          {algorithm, qmax, EnvKind::kGrid4x4, 0.01, 0.99, 0.9, 4});
    }
  }
  return cases;
}

class EquivalenceTest : public testing::TestWithParam<Case> {};

TEST_P(EquivalenceTest, PipelinedTraceMatchesSequentialExecution) {
  const Case& c = GetParam();
  auto environment = make_env(c.env);

  PipelineConfig config;
  config.algorithm = c.algorithm;
  config.qmax = c.qmax;
  config.alpha = c.alpha;
  config.gamma = c.gamma;
  config.epsilon = c.epsilon;
  config.seed = c.seed;
  config.max_episode_length = 64;  // exercise the watchdog path too

  constexpr std::uint64_t kIterations = 3000;

  GoldenModel golden(*environment, config);
  std::vector<SampleTrace> golden_trace;
  golden.set_trace(&golden_trace);
  golden.run(kIterations);

  Pipeline pipeline(*environment, config);
  std::vector<SampleTrace> pipe_trace;
  pipeline.set_trace(&pipe_trace);
  pipeline.run_iterations(kIterations);

  ASSERT_EQ(golden_trace.size(), pipe_trace.size());
  for (std::size_t i = 0; i < golden_trace.size(); ++i) {
    ASSERT_EQ(golden_trace[i], pipe_trace[i]) << "first divergence at " << i;
  }

  // Final Q tables and Qmax entries must match exactly.
  for (StateId s = 0; s < environment->num_states(); ++s) {
    for (ActionId a = 0; a < environment->num_actions(); ++a) {
      ASSERT_EQ(golden.q_raw(s, a), pipeline.q_raw(s, a))
          << "Q mismatch at s=" << s << " a=" << a;
      if (c.algorithm == Algorithm::kDoubleQ) {
        ASSERT_EQ(golden.q2_raw(s, a), pipeline.q2_raw(s, a))
            << "Q2 mismatch at s=" << s << " a=" << a;
      }
    }
    if (c.qmax == QmaxMode::kMonotoneTable &&
        c.algorithm != Algorithm::kExpectedSarsa &&
        c.algorithm != Algorithm::kDoubleQ) {
      const auto e = pipeline.qmax_entry(s);
      ASSERT_EQ(golden.qmax_value(s), e.value) << "Qmax value, s=" << s;
      if (golden.qmax_value(s) != 0) {
        ASSERT_EQ(golden.qmax_action(s), e.action) << "Qmax action, s=" << s;
      }
    }
  }

  // Same retire counters.
  EXPECT_EQ(golden.counters().samples, pipeline.stats().samples);
  EXPECT_EQ(golden.counters().episodes, pipeline.stats().episodes);
  EXPECT_EQ(golden.counters().bubbles, pipeline.stats().bubbles);

  // The port budget held every cycle (kAbort policy would have fired) and
  // the pipeline sustained one sample per cycle modulo fill/drain.
  EXPECT_EQ(pipeline.q_table().stats().port_conflicts, 0u);
  EXPECT_GE(pipeline.stats().samples_per_cycle(),
            static_cast<double>(pipeline.stats().samples) /
                static_cast<double>(kIterations + 4));
}

INSTANTIATE_TEST_SUITE_P(Sweep, EquivalenceTest,
                         testing::ValuesIn(make_cases()), case_name);

// Forwarding must actually be exercised: on the 2-state ring every
// consecutive update collides, so the queue should serve many hits.
TEST(EquivalenceForwarding, RingMdpExercisesAllForwardingPaths) {
  auto environment = make_env(EnvKind::kRing2);
  PipelineConfig config;
  config.algorithm = Algorithm::kQLearning;
  config.seed = 5;
  Pipeline pipeline(*environment, config);
  pipeline.run_iterations(5000);
  EXPECT_GT(pipeline.stats().fwd_q_sa, 0u);
  EXPECT_GT(pipeline.stats().fwd_qmax, 0u);
}

// The fast backend must hold the same equivalence against the golden
// model on bubble-dense inputs: a terminal-heavy RandomMdp (40% of start
// draws are zero-length episodes) and a slippery grid (transition noise,
// so the engine cannot pre-bake transitions). Bubbles are where the fast
// backend's episode control and stats windows are easiest to get wrong.
TEST(EquivalenceFastBackend, MatchesGoldenOnBubbleDenseAndNoisyEnvs) {
  std::vector<std::unique_ptr<env::Environment>> environments;
  {
    env::RandomMdpConfig c;
    c.num_states = 16;
    c.num_actions = 4;
    c.terminal_fraction = 0.4;
    c.seed = 13;
    environments.push_back(std::make_unique<env::RandomMdp>(c));
  }
  {
    env::GridWorldConfig c;
    c.width = 4;
    c.height = 4;
    c.num_actions = 4;
    c.slip_probability = 0.4;
    environments.push_back(std::make_unique<env::GridWorld>(c));
  }
  for (const auto& environment : environments) {
    for (auto algorithm : {Algorithm::kQLearning, Algorithm::kSarsa}) {
      PipelineConfig config;
      config.algorithm = algorithm;
      config.seed = 17;
      config.max_episode_length = 32;
      config.backend = Backend::kFast;

      GoldenModel golden(*environment, config);
      std::vector<SampleTrace> golden_trace;
      golden.set_trace(&golden_trace);
      golden.run(6000);

      runtime::Engine fast(*environment, config);
      std::vector<SampleTrace> fast_trace;
      fast.set_trace(&fast_trace);
      fast.run_iterations(6000);

      ASSERT_EQ(golden_trace.size(), fast_trace.size());
      for (std::size_t i = 0; i < golden_trace.size(); ++i) {
        ASSERT_EQ(golden_trace[i], fast_trace[i])
            << "divergence at " << i;
      }
      ASSERT_GT(fast.stats().bubbles, 0u) << "case must be bubble-dense";
      for (StateId s = 0; s < environment->num_states(); ++s) {
        for (ActionId a = 0; a < environment->num_actions(); ++a) {
          ASSERT_EQ(golden.q_raw(s, a), fast.q_raw(s, a))
              << "Q mismatch at s=" << s << " a=" << a;
        }
      }
      EXPECT_EQ(golden.counters().samples, fast.stats().samples);
      EXPECT_EQ(golden.counters().episodes, fast.stats().episodes);
      EXPECT_EQ(golden.counters().bubbles, fast.stats().bubbles);
    }
  }
}

TEST(EquivalenceForwarding, SarsaExploreSharedReadIsForwarded) {
  auto environment = make_env(EnvKind::kSelfLoop);
  PipelineConfig config;
  config.algorithm = Algorithm::kSarsa;
  config.epsilon = 0.9;  // explore often -> shared reads dominate
  config.seed = 6;
  Pipeline pipeline(*environment, config);
  pipeline.run_iterations(5000);
  EXPECT_GT(pipeline.stats().fwd_q_next, 0u);
}

}  // namespace
}  // namespace qta::qtaccel

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>

#include "env/bandit.h"
#include "env/grid_world.h"
#include "env/partition.h"
#include "env/random_mdp.h"
#include "env/value_iteration.h"

namespace qta::env {
namespace {

GridWorldConfig small_grid() {
  GridWorldConfig c;
  c.width = 4;
  c.height = 4;
  c.num_actions = 4;
  return c;
}

TEST(GridWorld, PaperStateAddressing) {
  // 16x16 grid: 8-bit state, high 4 bits = x, low 4 bits = y (Section
  // VI-B's example).
  GridWorldConfig c;
  c.width = 16;
  c.height = 16;
  GridWorld g(c);
  EXPECT_EQ(g.state_of(3, 5), (3u << 4) | 5u);
  EXPECT_EQ(g.x_of((3u << 4) | 5u), 3u);
  EXPECT_EQ(g.y_of((3u << 4) | 5u), 5u);
  EXPECT_EQ(g.num_states(), 256u);
}

TEST(GridWorld, FourActionEncodings) {
  // 00 left, 01 up, 10 right, 11 down.
  GridWorld g(small_grid());
  const StateId s = g.state_of(1, 1);
  EXPECT_EQ(g.transition(s, 0b00), g.state_of(0, 1));
  EXPECT_EQ(g.transition(s, 0b01), g.state_of(1, 0));
  EXPECT_EQ(g.transition(s, 0b10), g.state_of(2, 1));
  EXPECT_EQ(g.transition(s, 0b11), g.state_of(1, 2));
}

TEST(GridWorld, EightActionEncodings) {
  // 000 left, 001 top-left, 010 up, 011 top-right, then clockwise.
  GridWorldConfig c = small_grid();
  c.num_actions = 8;
  GridWorld g(c);
  const StateId s = g.state_of(1, 1);
  EXPECT_EQ(g.transition(s, 0b000), g.state_of(0, 1));  // left
  EXPECT_EQ(g.transition(s, 0b001), g.state_of(0, 0));  // top-left
  EXPECT_EQ(g.transition(s, 0b010), g.state_of(1, 0));  // up
  EXPECT_EQ(g.transition(s, 0b011), g.state_of(2, 0));  // top-right
  EXPECT_EQ(g.transition(s, 0b100), g.state_of(2, 1));  // right
  EXPECT_EQ(g.transition(s, 0b101), g.state_of(2, 2));  // bottom-right
  EXPECT_EQ(g.transition(s, 0b110), g.state_of(1, 2));  // down
  EXPECT_EQ(g.transition(s, 0b111), g.state_of(0, 2));  // bottom-left
}

TEST(GridWorld, BoundaryBumpsStayAndPenalize) {
  GridWorld g(small_grid());
  const StateId corner = g.state_of(0, 0);
  EXPECT_EQ(g.transition(corner, 0b00), corner);  // left off-grid
  EXPECT_EQ(g.transition(corner, 0b01), corner);  // up off-grid
  EXPECT_DOUBLE_EQ(g.reward(corner, 0b00), -255.0);
}

TEST(GridWorld, GoalRewardAndTerminal) {
  GridWorld g(small_grid());  // goal defaults to (3,3)
  EXPECT_EQ(g.goal_state(), g.state_of(3, 3));
  EXPECT_TRUE(g.is_terminal(g.goal_state()));
  EXPECT_FALSE(g.is_terminal(g.state_of(0, 0)));
  // Stepping into the goal yields +255.
  EXPECT_DOUBLE_EQ(g.reward(g.state_of(2, 3), 0b10), 255.0);
  EXPECT_DOUBLE_EQ(g.reward(g.state_of(3, 2), 0b11), 255.0);
}

TEST(GridWorld, ObstaclesBlockAndPenalize) {
  GridWorldConfig c = small_grid();
  c.obstacle_density = 0.3;
  c.obstacle_seed = 5;
  GridWorld g(c);
  unsigned obstacles = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_obstacle(s)) ++obstacles;
  }
  EXPECT_GT(obstacles, 0u);
  EXPECT_FALSE(g.is_obstacle(g.goal_state()));
  // Moving into any obstacle is a stay + penalty: from a free cell the
  // agent can never land on an obstacle. (Obstacle cells themselves exist
  // as states — a random start may drop the agent on one and it walks
  // off — but regular movement never enters one.)
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_obstacle(s)) continue;
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      const StateId n = g.transition(s, a);
      EXPECT_FALSE(g.is_obstacle(n)) << "landed on an obstacle";
    }
  }
}

TEST(GridWorld, CustomGoalAndRewards) {
  GridWorldConfig c = small_grid();
  c.goal_x = 0;
  c.goal_y = 2;
  c.goal_reward = 100.0;
  c.collision_penalty = 50.0;
  c.step_reward = -1.0;
  GridWorld g(c);
  EXPECT_EQ(g.goal_state(), g.state_of(0, 2));
  EXPECT_DOUBLE_EQ(g.reward(g.state_of(1, 2), 0b00), 100.0);
  EXPECT_DOUBLE_EQ(g.reward(g.state_of(0, 0), 0b00), -50.0);
  EXPECT_DOUBLE_EQ(g.reward(g.state_of(2, 0), 0b00), -1.0);
}

TEST(GridWorld, SlipperyTransitionsUseNoise) {
  GridWorldConfig c = small_grid();
  c.slip_probability = 0.25;  // threshold 64 of 256
  GridWorld g(c);
  EXPECT_EQ(g.transition_noise_bits(), 9u);
  const StateId s = g.state_of(1, 1);
  // noise low byte >= 64: no slip, intended move executes.
  EXPECT_EQ(g.transition(s, 0b10, 0xFF), g.state_of(2, 1));
  // noise low byte < 64, bit 8 = 1: clockwise slip (right -> down).
  EXPECT_EQ(g.transition(s, 0b10, 0x100), g.state_of(1, 2));
  // noise low byte < 64, bit 8 = 0: counter-clockwise (right -> up).
  EXPECT_EQ(g.transition(s, 0b10, 0x000), g.state_of(1, 0));
}

TEST(GridWorld, SlipFrequencyMatchesProbability) {
  GridWorldConfig c = small_grid();
  c.slip_probability = 0.25;
  GridWorld g(c);
  const StateId s = g.state_of(1, 1);
  int slips = 0;
  const int n = 1 << 9;  // enumerate the full noise space
  for (int noise = 0; noise < n; ++noise) {
    if (g.transition(s, 0b10, static_cast<std::uint64_t>(noise)) !=
        g.state_of(2, 1)) {
      ++slips;
    }
  }
  EXPECT_EQ(slips, 2 * 64);  // 64 low-byte values x 2 direction bits
}

TEST(GridWorld, DeterministicWorldIgnoresNoise) {
  GridWorld g(small_grid());
  EXPECT_EQ(g.transition_noise_bits(), 0u);
  const StateId s = g.state_of(1, 1);
  EXPECT_EQ(g.transition(s, 0b10, 12345), g.transition(s, 0b10));
}

TEST(GridWorld, EightActionSlipRotatesByTwo) {
  GridWorldConfig c = small_grid();
  c.num_actions = 8;
  c.slip_probability = 0.5;
  GridWorld g(c);
  const StateId s = g.state_of(1, 1);
  // Intended: right (100). CW quarter turn = +2 -> down (110).
  EXPECT_EQ(g.transition(s, 0b100, 0x100), g.state_of(1, 2));
  // CCW quarter turn = -2 -> up (010).
  EXPECT_EQ(g.transition(s, 0b100, 0x000), g.state_of(1, 0));
}

TEST(ValueIteration, SlipperyGridIntentPaidRewards) {
  // Architectural property worth knowing: the accelerator's reward is a
  // stored R(s, a) table, paid on INTENT. Under stochastic transitions an
  // agent standing next to the goal re-earns the goal reward on every
  // slipped attempt, so values can exceed the deterministic world's.
  // Value iteration models these exact semantics (reward on (s, a),
  // expectation over noise), which is what the accelerator learns.
  GridWorldConfig c = small_grid();
  GridWorld dry(c);
  c.slip_probability = 0.3;
  GridWorld icy(c);
  const auto vd = value_iteration(dry, 0.9);
  const auto vi_icy = value_iteration(icy, 0.9);
  const StateId adj = dry.state_of(2, 3);  // left of the goal
  // Deterministic: one intended entry, one payment.
  EXPECT_NEAR(vd.v[adj], 255.0, 1e-6);
  // Icy: 255 now plus a 30% chance to stay in the game and earn again.
  EXPECT_GT(vi_icy.v[adj], vd.v[adj]);
  // Exact fixpoint for the adjacent cell under these semantics:
  // v = 255 + gamma * p_slip_back... bounded above by 255/(1-0.9*0.3).
  EXPECT_LT(vi_icy.v[adj], 255.0 / (1.0 - 0.9 * 0.3) + 1e-6);
}

TEST(GridWorld, NonPow2DimensionsAbort) {
  GridWorldConfig c = small_grid();
  c.width = 5;
  EXPECT_DEATH(GridWorld{c}, "powers of two");
}

TEST(GridWorld, RendersAscii) {
  GridWorld g(small_grid());
  std::ostringstream os;
  g.render(os);
  EXPECT_NE(os.str().find('G'), std::string::npos);
  // Policy rendering.
  std::vector<ActionId> policy(g.num_states(), 2);  // all 'right'
  std::ostringstream os2;
  g.render(os2, &policy);
  EXPECT_NE(os2.str().find('>'), std::string::npos);
}

TEST(GridWorld, TableSize) {
  GridWorldConfig c;
  c.width = 512;
  c.height = 512;
  c.num_actions = 8;
  GridWorld g(c);
  EXPECT_EQ(g.num_states(), 262144u);
  EXPECT_EQ(g.table_size(), 2097152u);  // "more than 2 million" pairs
}

TEST(RandomMdp, Deterministic) {
  RandomMdpConfig c;
  c.seed = 9;
  RandomMdp a(c), b(c);
  for (StateId s = 0; s < a.num_states(); ++s) {
    for (ActionId act = 0; act < a.num_actions(); ++act) {
      EXPECT_EQ(a.transition(s, act), b.transition(s, act));
      EXPECT_DOUBLE_EQ(a.reward(s, act), b.reward(s, act));
    }
  }
}

TEST(RandomMdp, RingStructure) {
  RandomMdpConfig c;
  c.num_states = 4;
  c.ring = true;
  RandomMdp m(c);
  for (StateId s = 0; s < 4; ++s) {
    for (ActionId a = 0; a < m.num_actions(); ++a) {
      EXPECT_EQ(m.transition(s, a), (s + 1) % 4);
    }
  }
}

TEST(RandomMdp, SelfLoopStructure) {
  RandomMdpConfig c;
  c.self_loop = true;
  RandomMdp m(c);
  for (StateId s = 0; s < m.num_states(); ++s) {
    for (ActionId a = 0; a < m.num_actions(); ++a) {
      EXPECT_EQ(m.transition(s, a), s);
    }
  }
}

TEST(RandomMdp, RewardsInRange) {
  RandomMdpConfig c;
  c.reward_lo = -3.0;
  c.reward_hi = 7.0;
  RandomMdp m(c);
  for (StateId s = 0; s < m.num_states(); ++s) {
    for (ActionId a = 0; a < m.num_actions(); ++a) {
      EXPECT_GE(m.reward(s, a), -3.0);
      EXPECT_LE(m.reward(s, a), 7.0);
    }
  }
}

TEST(RandomMdp, TerminalFractionKeepsStateZeroLive) {
  RandomMdpConfig c;
  c.terminal_fraction = 0.5;
  c.num_states = 32;
  RandomMdp m(c);
  EXPECT_FALSE(m.is_terminal(0));
  unsigned terminals = 0;
  for (StateId s = 0; s < 32; ++s) terminals += m.is_terminal(s) ? 1u : 0u;
  EXPECT_GT(terminals, 0u);
}

TEST(Bandit, RegretAccounting) {
  MultiArmedBandit b({{0.1, 0.0}, {0.9, 0.0}}, 1);
  EXPECT_EQ(b.best_arm(), 1u);
  EXPECT_DOUBLE_EQ(b.best_mean(), 0.9);
  b.pull(0);
  b.pull(1);
  EXPECT_DOUBLE_EQ(b.cumulative_regret(), 0.8);
  EXPECT_EQ(b.total_pulls(), 2u);
}

TEST(Bandit, ZeroNoiseRewardsEqualMeans) {
  MultiArmedBandit b({{0.5, 0.0}, {-0.25, 0.0}}, 2);
  EXPECT_DOUBLE_EQ(b.pull(0), 0.5);
  EXPECT_DOUBLE_EQ(b.pull(1), -0.25);
}

TEST(Bandit, EvenlySpaced) {
  auto b = MultiArmedBandit::evenly_spaced(5, 0.1, 3);
  EXPECT_EQ(b.num_arms(), 5u);
  EXPECT_EQ(b.best_arm(), 4u);
  EXPECT_DOUBLE_EQ(b.arm(0).mean, 0.0);
  EXPECT_DOUBLE_EQ(b.arm(4).mean, 1.0);
}

TEST(Bandit, NoisyRewardsAverageToMean) {
  MultiArmedBandit b({{2.0, 0.5}, {0.0, 0.5}}, 7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += b.pull(0);
  EXPECT_NEAR(sum / 20000.0, 2.0, 0.02);
}

TEST(Partition, SplitsIntoBands) {
  GridWorldConfig c;
  c.width = 8;
  c.height = 16;
  const auto bands = partition_grid(c, 4);
  ASSERT_EQ(bands.size(), 4u);
  for (const auto& b : bands) {
    EXPECT_EQ(b.width, 8u);
    EXPECT_EQ(b.height, 4u);
    GridWorld g(b);  // must construct cleanly
    EXPECT_EQ(g.num_states(), 32u);
  }
}

TEST(Partition, GlobalGoalLandsInItsBand) {
  GridWorldConfig c;
  c.width = 8;
  c.height = 16;
  c.goal_x = 2;
  c.goal_y = 5;  // band 1 (rows 4..7)
  const auto bands = partition_grid(c, 4);
  EXPECT_EQ(bands[1].goal_x.value(), 2u);
  EXPECT_EQ(bands[1].goal_y.value(), 1u);  // 5 - 4
  // Other bands use their far corner.
  EXPECT_EQ(bands[0].goal_x.value(), 7u);
  EXPECT_EQ(bands[0].goal_y.value(), 3u);
}

TEST(Partition, RejectsBadCounts) {
  GridWorldConfig c;
  c.width = 8;
  c.height = 16;
  EXPECT_DEATH(partition_grid(c, 3), "power of two");
  EXPECT_DEATH(partition_grid(c, 16), "two rows");
}

TEST(ValueIteration, SolvesTwoStateChain) {
  // States {0, 1}: from 0, action 0 self-loops (r = 0), action 1 moves to
  // the terminal state 1 (r = 1). gamma = 0.5.
  struct Chain final : Environment {
    StateId num_states() const override { return 2; }
    ActionId num_actions() const override { return 2; }
    StateId transition(StateId s, ActionId a) const override {
      return (s == 0 && a == 1) ? 1 : s;
    }
    double reward(StateId s, ActionId a) const override {
      return (s == 0 && a == 1) ? 1.0 : 0.0;
    }
    bool is_terminal(StateId s) const override { return s == 1; }
  } chain;
  const auto r = value_iteration(chain, 0.5);
  EXPECT_NEAR(r.q_at(chain, 0, 1), 1.0, 1e-9);
  // Self-loop: q = 0 + 0.5 * v(0); v(0) = 1 -> q = 0.5.
  EXPECT_NEAR(r.q_at(chain, 0, 0), 0.5, 1e-9);
  EXPECT_EQ(r.policy[0], 1u);
}

TEST(ValueIteration, GridOptimalPolicyReachesGoal) {
  GridWorldConfig c;
  c.width = 8;
  c.height = 8;
  GridWorld g(c);
  const auto r = value_iteration(g, 0.9);
  // From the far corner the optimal path is 7+7 = 14 steps (4 actions).
  EXPECT_EQ(rollout_steps(g, r.policy, g.state_of(0, 0), 100), 14);
  // Every free state should reach the goal.
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_obstacle(s)) continue;
    EXPECT_GE(rollout_steps(g, r.policy, s, 200), 0) << s;
  }
}

TEST(ValueIteration, EightActionsShorterPath) {
  GridWorldConfig c;
  c.width = 8;
  c.height = 8;
  c.num_actions = 8;
  GridWorld g(c);
  const auto r = value_iteration(g, 0.9);
  // Diagonal moves: 7 steps from corner to corner.
  EXPECT_EQ(rollout_steps(g, r.policy, g.state_of(0, 0), 100), 7);
}

TEST(ValueIteration, ConvergesAndReportsResidual) {
  GridWorldConfig c;
  c.width = 4;
  c.height = 4;
  GridWorld g(c);
  const auto r = value_iteration(g, 0.9, 1e-10);
  EXPECT_LT(r.residual, 1e-10);
  EXPECT_GT(r.iterations, 1u);
}

TEST(PolicyHelpers, GreedyPolicyFromQTable) {
  GridWorld g(small_grid());
  const auto vi = value_iteration(g, 0.9);
  const auto policy = greedy_policy_from(g, vi.q);
  // Must coincide with value iteration's own argmax.
  for (StateId s = 0; s < g.num_states(); ++s) {
    EXPECT_EQ(policy[s], vi.policy[s]) << s;
  }
}

TEST(PolicyHelpers, SuccessRateBounds) {
  GridWorld g(small_grid());
  const auto vi = value_iteration(g, 0.9);
  EXPECT_DOUBLE_EQ(policy_success_rate(g, vi.policy), 1.0);
  // An all-"up" policy pins every state to its column top: only the
  // goal's own column... actually none reach the goal.
  std::vector<ActionId> up(g.num_states(), 1);
  EXPECT_DOUBLE_EQ(policy_success_rate(g, up), 0.0);
}

TEST(PolicyHelpers, BlockedStatesExcluded) {
  GridWorldConfig c = small_grid();
  c.obstacle_density = 0.3;
  c.obstacle_seed = 5;
  GridWorld g(c);
  const auto vi = value_iteration(g, 0.9);
  const std::function<bool(StateId)> blocked = [&](StateId s) {
    // Exclude obstacles and walled-off pockets DP itself cannot solve.
    return g.is_obstacle(s) || rollout_steps(g, vi.policy, s, 2000) < 0;
  };
  EXPECT_DOUBLE_EQ(policy_success_rate(g, vi.policy, 2000, &blocked), 1.0);
}

TEST(ValueIteration, GreedyPathErrorSelfConsistent) {
  GridWorldConfig c;
  c.width = 4;
  c.height = 4;
  GridWorld g(c);
  const auto r = value_iteration(g, 0.9);
  EXPECT_NEAR(greedy_path_q_error(g, r, r.q, g.state_of(0, 0)), 0.0, 1e-12);
}

}  // namespace
}  // namespace qta::env

// Serving-layer contract tests (docs/serving.md):
//   - QTSERVE-WIRE codec round trips (v2 trace context + Introspect
//     included), still decodes v1 bodies, and rejects foreign/corrupted/
//     truncated payloads with error strings instead of aborts (the bytes
//     come off a network).
//   - Loopback end-to-end lifecycle: create / step / query / snapshot /
//     evict / close, plus the error and overload reply paths.
//   - The tentpole invariant: evict/restore through the SessionManager
//     is bit-exact for every algorithm x backend — snapshot text AND
//     per-session telemetry counters match a standalone engine that was
//     never evicted.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "env/grid_world.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"
#include "serve/protocol.h"
#include "serve/request_queue.h"
#include "serve/session_manager.h"
#include "serve/transport.h"
#include "telemetry/metrics.h"
#include "telemetry/pipeline_telemetry.h"

namespace qta::serve {
namespace {

SessionSpec small_spec(std::uint64_t seed = 7) {
  SessionSpec spec;
  spec.width = 8;
  spec.height = 8;
  spec.actions = 4;
  spec.seed = seed;
  spec.max_episode_length = 128;
  return spec;
}

// --- protocol ---

TEST(ServeProtocol, RequestRoundTripsEveryType) {
  Request req;
  req.type = RequestType::kCreateSession;
  req.spec = small_spec(99);
  req.spec.algorithm = qtaccel::Algorithm::kDoubleQ;
  req.spec.backend = qtaccel::Backend::kCycleAccurate;
  req.spec.alpha = 0.125;
  req.spec.telemetry = true;
  auto back = decode_request(encode_request(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, RequestType::kCreateSession);
  EXPECT_EQ(back->spec, req.spec);

  for (const RequestType t :
       {RequestType::kStep, RequestType::kQuery, RequestType::kSnapshot,
        RequestType::kEvict, RequestType::kClose, RequestType::kStats,
        RequestType::kPing, RequestType::kShutdown}) {
    Request r;
    r.type = t;
    r.session = 0x1122334455667788ull;
    r.steps = 4096;
    r.state = 17;
    auto d = decode_request(encode_request(r));
    ASSERT_TRUE(d.has_value()) << request_type_name(t);
    EXPECT_EQ(d->type, t);
    EXPECT_EQ(d->session, r.session);
    if (t == RequestType::kStep) {
      EXPECT_EQ(d->steps, 4096u);
    }
    if (t == RequestType::kQuery) {
      EXPECT_EQ(d->state, 17u);
    }
  }
}

TEST(ServeProtocol, ResponseRoundTripsEveryField) {
  Response resp;
  resp.status = Status::kError;
  resp.type = RequestType::kQuery;
  resp.error = "no such session";
  resp.session = 42;
  resp.samples = 1000;
  resp.episodes = 31;
  resp.cycles = 1234;
  resp.action = 3;
  resp.q_row = {0.5, -1.25, 0.0, 7.75};
  resp.snapshot = "QTACCEL-SNAPSHOT v2\n...";
  resp.stats_json = "{\"a\":1}";
  resp.stats_prometheus = "qtserve_requests_total 9\n";
  auto back = decode_response(encode_response(resp));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, Status::kError);
  EXPECT_EQ(back->type, RequestType::kQuery);
  EXPECT_EQ(back->error, resp.error);
  EXPECT_EQ(back->session, 42u);
  EXPECT_EQ(back->samples, 1000u);
  EXPECT_EQ(back->episodes, 31u);
  EXPECT_EQ(back->cycles, 1234u);
  EXPECT_EQ(back->action, 3u);
  EXPECT_EQ(back->q_row, resp.q_row);
  EXPECT_EQ(back->snapshot, resp.snapshot);
  EXPECT_EQ(back->stats_json, resp.stats_json);
  EXPECT_EQ(back->stats_prometheus, resp.stats_prometheus);
}

TEST(ServeProtocol, TraceContextAndIntrospectRoundTripInV2) {
  Request req;
  req.type = RequestType::kStep;
  req.session = 12;
  req.steps = 300;
  req.trace_id = 0xdeadbeefcafef00dull;
  req.parent_span = 0x1234;
  auto back = decode_request(encode_request(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, req.trace_id);
  EXPECT_EQ(back->parent_span, 0x1234u);

  for (const IntrospectProbe probe :
       {IntrospectProbe::kMetrics, IntrospectProbe::kFlightRecorder,
        IntrospectProbe::kSession}) {
    Request probe_req;
    probe_req.type = RequestType::kIntrospect;
    probe_req.probe = probe;
    probe_req.session = 5;
    auto d = decode_request(encode_request(probe_req));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->type, RequestType::kIntrospect);
    EXPECT_EQ(d->probe, probe);
    EXPECT_EQ(d->session, 5u);
  }

  Response resp;
  resp.status = Status::kOk;
  resp.type = RequestType::kIntrospect;
  resp.span_id = 42;
  resp.introspect_json = "{\"capacity\":256}";
  auto r = decode_response(encode_response(resp));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->span_id, 42u);
  EXPECT_EQ(r->introspect_json, resp.introspect_json);
}

TEST(ServeProtocol, V1BodiesStillDecodeWithZeroTraceContext) {
  Request req;
  req.type = RequestType::kStep;
  req.session = 9;
  req.steps = 128;
  req.trace_id = 777;  // v1 cannot carry it; must decode as zero
  req.parent_span = 888;
  const std::string v1 = encode_request(req, /*version=*/1);
  EXPECT_LT(v1.size(), encode_request(req).size());
  auto back = decode_request(v1);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, RequestType::kStep);
  EXPECT_EQ(back->session, 9u);
  EXPECT_EQ(back->steps, 128u);
  EXPECT_EQ(back->trace_id, 0u);
  EXPECT_EQ(back->parent_span, 0u);

  // v1 spec-carrying requests keep working too.
  Request create;
  create.type = RequestType::kCreateSession;
  create.spec = small_spec(31);
  auto c = decode_request(encode_request(create, /*version=*/1));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->spec, create.spec);

  Response resp;
  resp.status = Status::kOk;
  resp.type = RequestType::kStep;
  resp.samples = 640;
  resp.span_id = 3;                  // dropped by the v1 encoding
  resp.introspect_json = "dropped";  // likewise
  auto r = decode_response(encode_response(resp, /*version=*/1));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->samples, 640u);
  EXPECT_EQ(r->span_id, 0u);
  EXPECT_TRUE(r->introspect_json.empty());
}

TEST(ServeProtocol, V1PeersCannotNameV2OnlyTypesOrBadProbes) {
  // Introspect does not exist in v1: a v1 body naming it is malformed.
  Request req;
  req.type = RequestType::kIntrospect;
  std::string error;
  EXPECT_FALSE(decode_request(encode_request(req, /*version=*/1), &error)
                   .has_value());
  EXPECT_FALSE(error.empty());

  // A v2 Introspect with an out-of-range probe byte is rejected, not
  // guessed at. The probe is the final byte of a spec-less request.
  std::string payload = encode_request(req);
  payload.back() = static_cast<char>(0x39);
  error.clear();
  EXPECT_FALSE(decode_request(payload, &error).has_value());
  EXPECT_NE(error.find("probe"), std::string::npos);

  // Truncating anywhere inside the v2 trace context is a parse error,
  // never an abort.
  const std::string good = encode_request(req);
  for (std::size_t len = 7; len < good.size(); ++len) {
    EXPECT_FALSE(decode_request(good.substr(0, len)).has_value())
        << "truncated to " << len;
  }
}

TEST(ServeProtocol, MigrateRequestsRoundTripInV3) {
  // kMigrateOut is a plain session-scoped request.
  Request out;
  out.type = RequestType::kMigrateOut;
  out.session = 314;
  out.trace_id = 0xabcddcba;
  auto o = decode_request(encode_request(out));
  ASSERT_TRUE(o.has_value());
  EXPECT_EQ(o->type, RequestType::kMigrateOut);
  EXPECT_EQ(o->session, 314u);
  EXPECT_EQ(o->trace_id, 0xabcddcbau);

  // kMigrateIn carries the opaque image blob in the v3 trailer.
  MigrationImage image;
  image.spec = small_spec(21);
  image.base = "QTACCEL-SNAPSHOT v3\nbinary bytes \x01\x02";
  image.base_is_v3 = true;
  image.deltas = {"QTACCEL-SNAPSHOT v3-delta\nd0",
                  "QTACCEL-SNAPSHOT v3-delta\nd1"};
  Request in;
  in.type = RequestType::kMigrateIn;
  in.session = 315;
  in.payload = encode_migration_image(image);
  auto i = decode_request(encode_request(in));
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->type, RequestType::kMigrateIn);
  EXPECT_EQ(i->session, 315u);
  EXPECT_EQ(i->payload, in.payload);
  auto decoded = decode_migration_image(i->payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, image);

  // A kMigrateIn body with the payload field cut off is malformed.
  const std::string good = encode_request(in);
  std::string error;
  EXPECT_FALSE(decode_request(good.substr(0, good.size() - 4), &error));
  EXPECT_FALSE(error.empty());

  // The Shards probe is v3-only but rides the existing Introspect
  // machinery.
  Request probe;
  probe.type = RequestType::kIntrospect;
  probe.probe = IntrospectProbe::kShards;
  auto p = decode_request(encode_request(probe));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->probe, IntrospectProbe::kShards);
}

TEST(ServeProtocol, OldPeersCannotNameV3TypesOrShardsProbe) {
  // Migration types do not exist before v3: old bodies naming them are
  // malformed, exactly like Introspect under v1.
  for (const RequestType t :
       {RequestType::kMigrateOut, RequestType::kMigrateIn}) {
    for (const std::uint16_t version : {std::uint16_t{1}, std::uint16_t{2}}) {
      Request req;
      req.type = t;
      req.session = 3;
      std::string error;
      EXPECT_FALSE(
          decode_request(encode_request(req, version), &error).has_value())
          << request_type_name(t) << " v" << version;
      EXPECT_FALSE(error.empty());
    }
  }
  Request probe;
  probe.type = RequestType::kIntrospect;
  probe.probe = IntrospectProbe::kShards;
  std::string error;
  EXPECT_FALSE(decode_request(encode_request(probe, /*version=*/2), &error)
                   .has_value());
  EXPECT_NE(error.find("probe"), std::string::npos);
}

TEST(ServeProtocol, MigrationImageRoundTripsAndRejectsCorruption) {
  MigrationImage image;
  image.spec = small_spec(77);
  image.spec.algorithm = qtaccel::Algorithm::kDoubleQ;
  image.base = "QTACCEL-SNAPSHOT v2\nfull image text";
  image.deltas = {"QTACCEL-SNAPSHOT v3-delta\nrow7"};
  const std::string blob = encode_migration_image(image);
  auto back = decode_migration_image(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, image);

  // A fresh (empty-base) image round trips too — it is the router-side
  // CreateSession encoding.
  MigrationImage fresh;
  fresh.spec = small_spec(78);
  auto f = decode_migration_image(encode_migration_image(fresh));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, fresh);

  // Corruption comes off a network: always nullopt + why, never abort.
  std::string error;
  EXPECT_FALSE(decode_migration_image("", &error).has_value());
  EXPECT_FALSE(error.empty());
  std::string bad_magic = blob;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x55);
  EXPECT_FALSE(decode_migration_image(bad_magic, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);
  std::string bad_version = blob;
  bad_version[4] = static_cast<char>(0x7F);
  EXPECT_FALSE(decode_migration_image(bad_version, &error));
  EXPECT_NE(error.find("version"), std::string::npos);
  for (std::size_t len = 1; len < blob.size(); len += 7) {
    EXPECT_FALSE(decode_migration_image(blob.substr(0, len)).has_value())
        << "truncated to " << len;
  }
}

TEST(ServeProtocol, RejectsForeignCorruptedAndTruncatedPayloads) {
  Request req;
  req.type = RequestType::kStep;
  req.session = 5;
  req.steps = 100;
  const std::string good = encode_request(req);
  std::string error;

  // Network bytes must never abort: every rejection is a nullopt + why.
  EXPECT_FALSE(decode_request("", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(decode_request("hello, I am not a frame", &error));

  std::string bad_magic = good;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x55);
  EXPECT_FALSE(decode_request(bad_magic, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);

  std::string bad_version = good;
  bad_version[4] = static_cast<char>(0x7F);
  EXPECT_FALSE(decode_request(bad_version, &error));
  EXPECT_NE(error.find("version"), std::string::npos);

  std::string bad_kind = good;
  bad_kind[6] = static_cast<char>(0xFF);
  EXPECT_FALSE(decode_request(bad_kind, &error));

  EXPECT_FALSE(decode_request(good.substr(0, good.size() - 1), &error));

  // Same guarantees on the response codec.
  Response resp;
  resp.q_row = {1.0, 2.0};
  const std::string rgood = encode_response(resp);
  EXPECT_FALSE(decode_response(rgood.substr(0, rgood.size() - 1), &error));
  EXPECT_FALSE(decode_response("junk", &error));
}

TEST(ServeProtocol, FrameUnframeHandlesPartialAndBackToBackFrames) {
  const std::string a = frame("first payload");
  const std::string b = frame("second");

  // Dribble the first frame in byte by byte: no payload until complete.
  std::string buffer;
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    buffer.push_back(a[i]);
    EXPECT_FALSE(unframe(buffer).has_value());
  }
  buffer.push_back(a.back());
  buffer += b;  // and a complete second frame right behind it
  auto first = unframe(buffer);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "first payload");
  auto second = unframe(buffer);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, "second");
  EXPECT_TRUE(buffer.empty());
  EXPECT_FALSE(unframe(buffer).has_value());
}

TEST(ServeProtocol, UnframeFlagsOversizedFrames) {
  // A length prefix beyond kMaxFrameBytes is a protocol error the
  // transport uses to drop the peer, not an allocation request.
  std::string buffer;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  for (int i = 0; i < 4; ++i) {
    buffer.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  }
  bool oversized = false;
  EXPECT_FALSE(unframe(buffer, &oversized).has_value());
  EXPECT_TRUE(oversized);
}

TEST(ServeProtocol, ValidateSpecCatchesUnservableGeometry) {
  EXPECT_EQ(validate_spec(small_spec()), "");
  SessionSpec s = small_spec();
  s.width = 6;  // not a power of two
  EXPECT_NE(validate_spec(s), "");
  s = small_spec();
  s.actions = 5;
  EXPECT_NE(validate_spec(s), "");
  s = small_spec();
  s.alpha = 2.0;
  EXPECT_NE(validate_spec(s), "");
  s = small_spec();
  s.epsilon = -0.5;
  EXPECT_NE(validate_spec(s), "");
}

// --- request queue ---

TEST(ServeRequestQueue, PerSessionFifoAndCrossSessionRoundRobin) {
  RequestQueue q(/*max_depth=*/8);
  auto push = [&](SessionId session, Ticket ticket) {
    QueuedRequest qr;
    qr.ticket = ticket;
    qr.request.session = session;
    return q.push(qr);
  };
  // Session 1: tickets 10, 11; session 2: ticket 20; session 3: 30.
  EXPECT_TRUE(push(1, 10));
  EXPECT_TRUE(push(1, 11));
  EXPECT_TRUE(push(2, 20));
  EXPECT_TRUE(push(3, 30));
  EXPECT_EQ(q.depth(), 4u);

  // One per session per batch, in arrival order of the sessions.
  auto batch = q.pop_batch(/*max_sessions=*/2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].ticket, 10u);
  EXPECT_EQ(batch[1].ticket, 20u);
  // Session 1 still has work; it rotates behind session 3.
  batch = q.pop_batch(2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].ticket, 30u);
  EXPECT_EQ(batch[1].ticket, 11u);
  EXPECT_TRUE(q.empty());
}

TEST(ServeRequestQueue, RefusesBeyondMaxDepth) {
  RequestQueue q(/*max_depth=*/2);
  QueuedRequest qr;
  qr.request.session = 1;
  EXPECT_TRUE(q.push(qr));
  EXPECT_TRUE(q.push(qr));
  EXPECT_FALSE(q.push(qr));  // admission control, not buffering
  q.pop_batch(1);
  EXPECT_TRUE(q.push(qr));
}

// --- loopback end-to-end ---

TEST(ServeLoopback, SessionLifecycleStepQuerySnapshotEvictClose) {
  ServerOptions options;
  options.max_hot = 2;
  options.workers = 2;
  LoopbackTransport transport(options);

  Request create;
  create.type = RequestType::kCreateSession;
  create.spec = small_spec();
  const Response created = transport.call(create);
  ASSERT_EQ(created.status, Status::kOk);
  const SessionId id = created.session;

  Request step;
  step.type = RequestType::kStep;
  step.session = id;
  step.steps = 500;
  const Response stepped = transport.call(step);
  ASSERT_EQ(stepped.status, Status::kOk);
  EXPECT_GE(stepped.samples, 500u);  // absolute total, drain may overshoot

  // Query must agree with a bit-exact local replay.
  env::GridWorldConfig gc;
  gc.width = create.spec.width;
  gc.height = create.spec.height;
  gc.num_actions = create.spec.actions;
  env::GridWorld world(gc);
  runtime::Engine replay(world, make_config(create.spec));
  replay.run_samples(replay.stats().samples + 500);

  Request query;
  query.type = RequestType::kQuery;
  query.session = id;
  query.state = 9;
  const Response queried = transport.call(query);
  ASSERT_EQ(queried.status, Status::kOk);
  ASSERT_EQ(queried.q_row.size(), create.spec.actions);
  for (ActionId a = 0; a < create.spec.actions; ++a) {
    EXPECT_EQ(queried.q_row[a], replay.q_value(9, a));
  }
  EXPECT_EQ(queried.action, replay.greedy_policy()[9]);

  // Snapshot over the wire == local snapshot.
  std::ostringstream local;
  runtime::save_snapshot(replay, local);
  Request snap;
  snap.type = RequestType::kSnapshot;
  snap.session = id;
  const Response snapped = transport.call(snap);
  ASSERT_EQ(snapped.status, Status::kOk);
  EXPECT_EQ(snapped.snapshot, local.str());

  // Evict forces the session cold; the next Step restores it and the
  // session never notices.
  Request evict;
  evict.type = RequestType::kEvict;
  evict.session = id;
  EXPECT_EQ(transport.call(evict).status, Status::kOk);
  EXPECT_FALSE(transport.server().sessions().is_hot(id));
  step.steps = 250;
  const Response resumed = transport.call(step);
  ASSERT_EQ(resumed.status, Status::kOk);
  replay.run_samples(replay.stats().samples + 250);
  EXPECT_EQ(resumed.samples, replay.stats().samples);

  Request close;
  close.type = RequestType::kClose;
  close.session = id;
  EXPECT_EQ(transport.call(close).status, Status::kOk);
  EXPECT_FALSE(transport.server().sessions().exists(id));
  const Response after_close = transport.call(step);
  EXPECT_EQ(after_close.status, Status::kError);
  EXPECT_FALSE(after_close.error.empty());
}

TEST(ServeLoopback, ErrorRepliesForBadSpecUnknownSessionAndBadState) {
  LoopbackTransport transport(ServerOptions{});

  Request create;
  create.type = RequestType::kCreateSession;
  create.spec = small_spec();
  create.spec.width = 6;  // not a power of two
  const Response rejected = transport.call(create);
  EXPECT_EQ(rejected.status, Status::kError);
  EXPECT_FALSE(rejected.error.empty());

  Request step;
  step.type = RequestType::kStep;
  step.session = 12345;
  step.steps = 1;
  EXPECT_EQ(transport.call(step).status, Status::kError);

  create.spec = small_spec();
  const SessionId id = transport.call(create).session;
  Request query;
  query.type = RequestType::kQuery;
  query.session = id;
  query.state = 64;  // 8x8 grid: states are [0, 64)
  const Response bad_state = transport.call(query);
  EXPECT_EQ(bad_state.status, Status::kError);
  EXPECT_NE(bad_state.error.find("state"), std::string::npos);
}

TEST(ServeLoopback, OverloadRepliesWhenAdmissionQueueIsFull) {
  ServerOptions options;
  options.max_hot = 2;
  options.workers = 1;
  options.max_queue = 3;
  LoopbackTransport transport(options);

  std::vector<SessionId> ids;
  for (int i = 0; i < 6; ++i) {
    Request create;
    create.type = RequestType::kCreateSession;
    create.spec = small_spec(static_cast<std::uint64_t>(i + 1));
    ids.push_back(transport.call(create).session);
  }
  // Post 6 Steps with no pump in between: exactly max_queue admitted.
  std::vector<Ticket> tickets;
  for (const SessionId id : ids) {
    Request step;
    step.type = RequestType::kStep;
    step.session = id;
    step.steps = 50;
    tickets.push_back(transport.post(step));
  }
  std::size_t ok = 0, overloaded = 0;
  for (const Ticket t : tickets) {
    const Response resp = transport.wait(t);
    if (resp.status == Status::kOk) ++ok;
    if (resp.status == Status::kOverloaded) {
      ++overloaded;
      EXPECT_FALSE(resp.error.empty());
    }
  }
  EXPECT_EQ(ok, options.max_queue);
  EXPECT_EQ(overloaded, ids.size() - options.max_queue);

  // The refusals are visible in the metric catalog.
  const std::string prom = transport.server().metrics().prometheus_text();
  EXPECT_NE(prom.find("qtserve_overload_total"), std::string::npos);
}

TEST(ServeLoopback, StatsPingAndShutdown) {
  LoopbackTransport transport(ServerOptions{});
  Request ping;
  ping.type = RequestType::kPing;
  EXPECT_EQ(transport.call(ping).status, Status::kOk);

  Request stats;
  stats.type = RequestType::kStats;
  const Response s = transport.call(stats);
  ASSERT_EQ(s.status, Status::kOk);
  EXPECT_NE(s.stats_prometheus.find("qtserve_requests_total"),
            std::string::npos);
  EXPECT_NE(s.stats_json.find("qtserve_requests_total"),
            std::string::npos);

  EXPECT_FALSE(transport.server().shutdown_requested());
  Request shutdown;
  shutdown.type = RequestType::kShutdown;
  EXPECT_EQ(transport.call(shutdown).status, Status::kOk);
  EXPECT_TRUE(transport.server().shutdown_requested());
}

// --- evict/restore bit-exactness, every algorithm x backend ---

std::vector<std::string> session_metric_lines(const std::string& prom,
                                              SessionId id) {
  // Pipeline-telemetry lines for this session: qta_* metrics carrying
  // pipe="<id>" (the qtserve_* serving metrics have no pipe label).
  const std::string needle = "pipe=\"" + std::to_string(id) + "\"";
  std::vector<std::string> lines;
  std::istringstream is(prom);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("qta_", 0) == 0 &&
        line.find(needle) != std::string::npos) {
      lines.push_back(line);
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(ServeBitExact, EvictRestoreMatchesStandaloneForEveryAlgorithmAndBackend) {
  for (const qtaccel::Algorithm algorithm :
       {qtaccel::Algorithm::kQLearning, qtaccel::Algorithm::kSarsa,
        qtaccel::Algorithm::kExpectedSarsa,
        qtaccel::Algorithm::kDoubleQ}) {
    for (const qtaccel::Backend backend :
         {qtaccel::Backend::kCycleAccurate, qtaccel::Backend::kFast,
          qtaccel::Backend::kLanes}) {
      // max_hot=1 with two sessions: every alternation forces an
      // eviction, so session A lives through 3 evict/restore cycles.
      ServerOptions options;
      options.max_hot = 1;
      options.workers = 1;
      LoopbackTransport transport(options);

      SessionSpec spec = small_spec(31);
      spec.algorithm = algorithm;
      spec.backend = backend;
      spec.telemetry = true;

      SessionId ids[2];
      for (int i = 0; i < 2; ++i) {
        Request create;
        create.type = RequestType::kCreateSession;
        create.spec = spec;
        create.spec.seed = spec.seed + static_cast<std::uint64_t>(i);
        const Response resp = transport.call(create);
        ASSERT_EQ(resp.status, Status::kOk);
        ids[i] = resp.session;
      }
      constexpr std::uint64_t kChunk = 300;
      constexpr int kRounds = 4;
      for (int round = 0; round < kRounds; ++round) {
        for (const SessionId id : ids) {
          Request step;
          step.type = RequestType::kStep;
          step.session = id;
          step.steps = kChunk;
          ASSERT_EQ(transport.call(step).status, Status::kOk);
        }
      }

      // Standalone reference for session A: same engine partitioning,
      // same telemetry labels, never evicted.
      env::GridWorldConfig gc;
      gc.width = spec.width;
      gc.height = spec.height;
      gc.num_actions = spec.actions;
      env::GridWorld world(gc);
      SessionSpec spec_a = spec;
      spec_a.seed = spec.seed;
      telemetry::MetricsRegistry standalone_metrics;
      telemetry::PipelineTelemetry sink(
          qtaccel::make_run_labels(make_config(spec_a),
                                   static_cast<unsigned>(ids[0])),
          &standalone_metrics, nullptr,
          static_cast<std::uint32_t>(ids[0]));
      runtime::Engine standalone(world, make_config(spec_a));
      standalone.set_telemetry(&sink);
      for (int round = 0; round < kRounds; ++round) {
        standalone.run_samples(standalone.stats().samples + kChunk);
      }

      const std::string tag =
          std::string(qtaccel::algorithm_name(algorithm)) + "/" +
          qtaccel::backend_name(backend);
      ASSERT_GT(transport.server().sessions().lru_evictions(), 0u) << tag;

      // Tables + stats + RNG: the snapshot text is the whole machine.
      std::ostringstream reference;
      runtime::save_snapshot(standalone, reference);
      EXPECT_EQ(transport.server().sessions().snapshot_text(ids[0]),
                reference.str())
          << tag;

      // Telemetry counters survive eviction too: the session's sink is
      // carried across residencies, never flushed mid-life.
      const auto served = session_metric_lines(
          transport.server().metrics().prometheus_text(), ids[0]);
      const auto local = session_metric_lines(
          standalone_metrics.prometheus_text(), ids[0]);
      ASSERT_FALSE(local.empty()) << tag;
      EXPECT_EQ(served, local) << tag;
    }
  }
}

// Lane coalescing in pump(): kLanes sessions whose Step requests land in
// the same batch are run as ONE lane group (two groups here — the
// algorithms differ, so q_learning and sarsa sessions cannot share
// one). Every session must still end bit-identical — snapshot text and
// telemetry — to a standalone engine stepped with the same partitioning
// and no serving layer.
TEST(ServeBitExact, CoalescedLaneBatchesMatchStandalone) {
  constexpr std::size_t kLaneSessions = 6;
  constexpr int kRounds = 5;
  ServerOptions options;
  options.max_hot = kLaneSessions;
  options.workers = 2;
  LoopbackTransport transport(options);

  std::vector<SessionId> ids(kLaneSessions);
  std::vector<SessionSpec> specs(kLaneSessions);
  std::vector<std::vector<std::uint64_t>> chunks(kLaneSessions);
  for (std::size_t i = 0; i < kLaneSessions; ++i) {
    specs[i] = small_spec(200 + i);
    specs[i].backend = qtaccel::Backend::kLanes;
    specs[i].algorithm = (i < kLaneSessions / 2)
                             ? qtaccel::Algorithm::kQLearning
                             : qtaccel::Algorithm::kSarsa;
    specs[i].telemetry = (i % 2 == 0);
    Request create;
    create.type = RequestType::kCreateSession;
    create.spec = specs[i];
    const Response resp = transport.call(create);
    ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    ids[i] = resp.session;
  }

  // Post every session's Step BEFORE waiting so pump() sees them as one
  // batch and coalesces compatible sessions into lane groups.
  const std::uint64_t step_sizes[] = {64, 96, 128, 256};
  for (int round = 0; round < kRounds; ++round) {
    std::vector<Ticket> tickets;
    for (std::size_t i = 0; i < kLaneSessions; ++i) {
      Request step;
      step.type = RequestType::kStep;
      step.session = ids[i];
      step.steps = step_sizes[(static_cast<std::size_t>(round) + i) % 4];
      chunks[i].push_back(step.steps);
      tickets.push_back(transport.post(step));
    }
    for (const Ticket t : tickets) {
      const Response resp = transport.wait(t);
      ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    }
  }

  const std::string served_prom =
      transport.server().metrics().prometheus_text();
  for (std::size_t i = 0; i < kLaneSessions; ++i) {
    env::GridWorldConfig gc;
    gc.width = specs[i].width;
    gc.height = specs[i].height;
    gc.num_actions = specs[i].actions;
    env::GridWorld world(gc);

    telemetry::MetricsRegistry standalone_metrics;
    std::unique_ptr<telemetry::PipelineTelemetry> sink;
    runtime::Engine standalone(world, make_config(specs[i]));
    if (specs[i].telemetry) {
      sink = std::make_unique<telemetry::PipelineTelemetry>(
          qtaccel::make_run_labels(make_config(specs[i]),
                                   static_cast<unsigned>(ids[i])),
          &standalone_metrics, nullptr,
          static_cast<std::uint32_t>(ids[i]));
      standalone.set_telemetry(sink.get());
    }
    for (const std::uint64_t chunk : chunks[i]) {
      standalone.run_samples(standalone.stats().samples + chunk);
    }

    const std::string tag = "lane session " + std::to_string(ids[i]);
    std::ostringstream reference;
    runtime::save_snapshot(standalone, reference);
    EXPECT_EQ(transport.server().sessions().snapshot_text(ids[i]),
              reference.str())
        << tag;
    if (specs[i].telemetry) {
      const auto served = session_metric_lines(served_prom, ids[i]);
      const auto local = session_metric_lines(
          standalone_metrics.prometheus_text(), ids[i]);
      ASSERT_FALSE(local.empty()) << tag;
      EXPECT_EQ(served, local) << tag;
    }
  }
}

}  // namespace
}  // namespace qta::serve

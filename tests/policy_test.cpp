#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "policy/exp3.h"
#include "policy/policies.h"
#include "policy/probability_table.h"

namespace qta::policy {
namespace {

TEST(Greedy, PicksMaxLowestIndexOnTies) {
  const std::array<double, 4> row{1.0, 3.0, 3.0, 2.0};
  EXPECT_EQ(greedy_action(row), 1u);
  const std::array<double, 3> flat{0.0, 0.0, 0.0};
  EXPECT_EQ(greedy_action(flat), 0u);
}

TEST(Random, UniformOverActions) {
  XoshiroSource rng(1);
  const std::array<double, 4> row{0, 0, 0, 0};
  std::array<int, 4> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[random_action(row, rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(EpsilonGreedy, ZeroEpsilonIsGreedy) {
  XoshiroSource rng(2);
  const std::array<double, 4> row{0.0, 5.0, 1.0, 2.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(epsilon_greedy_action(row, 0.0, rng), 1u);
  }
}

TEST(EpsilonGreedy, OneEpsilonIsUniform) {
  XoshiroSource rng(3);
  const std::array<double, 4> row{0.0, 5.0, 1.0, 2.0};
  std::array<int, 4> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[epsilon_greedy_action(row, 1.0, rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(EpsilonGreedy, HardwareSemanticsDistribution) {
  // With the paper's "index any action on explore" semantics, P(greedy) =
  // (1 - eps) + eps/|A| and P(other) = eps/|A| each.
  XoshiroSource rng(4);
  const std::array<double, 4> row{0.0, 5.0, 1.0, 2.0};
  const double eps = 0.4;
  std::array<int, 4> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[epsilon_greedy_action(row, eps, rng)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.6 + 0.1, 0.01);
  for (std::size_t a : {0u, 2u, 3u}) {
    EXPECT_NEAR(static_cast<double>(counts[a]) / n, 0.1, 0.01);
  }
}

TEST(Boltzmann, PrefersHighValues) {
  XoshiroSource rng(5);
  const std::array<double, 3> row{0.0, 1.0, 2.0};
  std::array<int, 3> counts{};
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[boltzmann_action(row, 1.0, rng)];
  // exp(0) : exp(1) : exp(2) = 1 : 2.718 : 7.389 -> p2 ~ 0.665.
  const double z = 1.0 + std::exp(1.0) + std::exp(2.0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, std::exp(2.0) / z, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, std::exp(1.0) / z, 0.02);
}

TEST(Boltzmann, HighTemperatureApproachesUniform) {
  XoshiroSource rng(6);
  const std::array<double, 3> row{0.0, 1.0, 2.0};
  std::array<int, 3> counts{};
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    ++counts[boltzmann_action(row, 1000.0, rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 3.0, 0.02);
  }
}

TEST(Boltzmann, LutVariantMatchesExact) {
  const fixed::ExpLut lut(-16.0, 0.0, 14, fixed::Format{32, 16});
  XoshiroSource rng_a(7);
  XoshiroSource rng_b(7);
  const std::array<double, 4> row{0.5, 1.5, -1.0, 2.0};
  int agree = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const ActionId a = boltzmann_action(row, 0.7, rng_a);
    const ActionId b = boltzmann_action(row, 0.7, rng_b, &lut);
    agree += (a == b) ? 1 : 0;
  }
  EXPECT_GT(agree, n * 98 / 100);  // tiny LUT error may flip rare draws
}

TEST(PolicyObjects, Dispatch) {
  XoshiroSource rng(8);
  const std::array<double, 4> row{0.0, 5.0, 1.0, 2.0};
  GreedyPolicy greedy;
  EXPECT_EQ(greedy.select(row, rng), 1u);
  RandomPolicy random;
  EXPECT_LT(random.select(row, rng), 4u);
  EpsilonGreedyPolicy eps(0.0);
  EXPECT_EQ(eps.select(row, rng), 1u);
  BoltzmannPolicy boltz(1.0);
  EXPECT_LT(boltz.select(row, rng), 4u);
}

TEST(LfsrSource, DrawsFromLfsr) {
  LfsrSource src(rng::Lfsr(16, 5));
  rng::Lfsr ref(16, 5);
  EXPECT_EQ(src.draw_bits(8), ref.draw_bits(8));
}

TEST(ProbabilityTable, UniformByDefault) {
  ProbabilityTable t(4, 4);
  for (ActionId a = 0; a < 4; ++a) {
    EXPECT_DOUBLE_EQ(t.probability(0, a), 0.25);
  }
  EXPECT_DOUBLE_EQ(t.row_sum(2), 4.0);
}

TEST(ProbabilityTable, WeightUpdates) {
  ProbabilityTable t(2, 4);
  t.set_weight(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(t.probability(0, 1), 0.5);
  t.scale_weight(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(t.weight(0, 1), 6.0);
  EXPECT_DEATH(t.set_weight(0, 0, -1.0), "non-negative");
}

TEST(ProbabilityTable, SelectionMatchesDistribution) {
  ProbabilityTable t(1, 4);
  t.set_weight(0, 0, 1.0);
  t.set_weight(0, 1, 2.0);
  t.set_weight(0, 2, 3.0);
  t.set_weight(0, 3, 4.0);
  XoshiroSource rng(9);
  std::array<int, 4> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[t.select(0, rng).action];
  for (ActionId a = 0; a < 4; ++a) {
    EXPECT_NEAR(static_cast<double>(counts[a]) / n, (a + 1) / 10.0, 0.01);
  }
}

TEST(ProbabilityTable, BinarySearchCycleCost) {
  // 1 cycle to draw + ceil(log2 |A|) comparator steps (Section VII-B:
  // "a binary search can provide the selected action in log n cycles").
  ProbabilityTable t4(1, 4), t8(1, 8), t5(1, 5);
  XoshiroSource rng(10);
  EXPECT_EQ(t4.select(0, rng).cycles, 3u);
  EXPECT_EQ(t8.select(0, rng).cycles, 4u);
  EXPECT_EQ(t5.select(0, rng).cycles, 4u);
  EXPECT_LE(t8.select(0, rng).comparisons, 3u);
}

TEST(ProbabilityTable, StorageBits) {
  ProbabilityTable t(256, 8);
  EXPECT_EQ(t.storage_bits(), 256u * 8u * 18u);
}

TEST(Exp3, ProbabilitiesFormDistribution) {
  Exp3 exp3(4, 0.2);
  double sum = 0.0;
  for (unsigned m = 0; m < 4; ++m) sum += exp3.probability(m);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Uniform at start.
  EXPECT_NEAR(exp3.probability(0), 0.25, 1e-12);
}

TEST(Exp3, GammaFloorsExploration) {
  Exp3 exp3(4, 0.2);
  for (int i = 0; i < 200; ++i) exp3.update(0, 1.0);
  // Arm 0 dominates but every arm keeps at least gamma / M.
  EXPECT_GT(exp3.probability(0), 0.8);
  for (unsigned m = 1; m < 4; ++m) {
    EXPECT_GE(exp3.probability(m), 0.2 / 4 - 1e-12);
  }
}

TEST(Exp3, LearnsBestArm) {
  Exp3 exp3(3, 0.15);
  XoshiroSource rng(11);
  rng::Xoshiro256 reward_rng(12);
  // Arm 2 pays 0.9, others 0.1.
  for (int t = 0; t < 3000; ++t) {
    const unsigned m = exp3.select(rng);
    const double p = m == 2 ? 0.9 : 0.1;
    exp3.update(m, reward_rng.bernoulli(p) ? 1.0 : 0.0);
  }
  EXPECT_GT(exp3.probability(2), exp3.probability(0));
  EXPECT_GT(exp3.probability(2), exp3.probability(1));
}

TEST(Exp3, RejectsOutOfRangeRewards) {
  Exp3 exp3(2, 0.1);
  EXPECT_DEATH(exp3.update(0, 1.5), "scaled into");
}

TEST(Exp3, WeightsStayFinite) {
  Exp3 exp3(2, 0.5);
  for (int i = 0; i < 20000; ++i) exp3.update(0, 1.0);
  EXPECT_TRUE(std::isfinite(exp3.weight(0)));
  EXPECT_GT(exp3.weight(0), 0.0);
}

}  // namespace
}  // namespace qta::policy

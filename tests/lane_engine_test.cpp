// Differential verification of the lane-batched backend: a LaneEngine
// lane must retire a bit-identical SampleTrace, Q/Qmax tables, RNG
// registers, AND PipelineStats against a solo FastEngine with the same
// config — for every (algorithm, qmax mode, hazard mode) shape, for
// mixed-shape lane groups, across mid-run save/load, and through the
// take_state/put_state donation protocol the runtime's lane coalescer
// uses. The runtime-level coalescing itself (Engine fleets and
// LaneGroupRunner round trips) is covered at the bottom.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "env/grid_world.h"
#include "env/random_mdp.h"
#include "qtaccel/fast_engine.h"
#include "qtaccel/lane_engine.h"
#include "qtaccel/machine_state.h"
#include "runtime/engine.h"
#include "runtime/lane_coalescer.h"
#include "runtime/multi_pipeline.h"

namespace qta::qtaccel {
namespace {

env::GridWorldConfig grid_cfg(unsigned w, unsigned h, unsigned acts) {
  env::GridWorldConfig g;
  g.width = w;
  g.height = h;
  g.num_actions = acts;
  g.obstacle_density = 0.15;
  g.obstacle_seed = 77;
  return g;
}

bool stats_eq(const PipelineStats& a, const PipelineStats& b) {
  return a.iterations == b.iterations && a.samples == b.samples &&
         a.bubbles == b.bubbles && a.episodes == b.episodes &&
         a.cycles == b.cycles && a.stall_cycles == b.stall_cycles &&
         a.issued == b.issued && a.fwd_q_sa == b.fwd_q_sa &&
         a.fwd_q_next == b.fwd_q_next && a.fwd_qmax == b.fwd_qmax &&
         a.adder_saturations == b.adder_saturations;
}

// The whole machine: tables, Qmax, RNG registers, walk state, write-back
// ring, counters. Anything diverging here would poison snapshots.
void expect_state_eq(const MachineState& a, const MachineState& b,
                     const std::string& tag) {
  EXPECT_EQ(a.q, b.q) << tag;
  EXPECT_EQ(a.q2, b.q2) << tag;
  EXPECT_EQ(a.qmax_value, b.qmax_value) << tag;
  EXPECT_EQ(a.qmax_action, b.qmax_action) << tag;
  EXPECT_EQ(a.rng, b.rng) << tag;
  EXPECT_EQ(a.episode_start, b.episode_start) << tag;
  EXPECT_EQ(a.state, b.state) << tag;
  EXPECT_EQ(a.pending_action, b.pending_action) << tag;
  EXPECT_EQ(a.episode_steps, b.episode_steps) << tag;
  EXPECT_EQ(a.wb_addrs, b.wb_addrs) << tag;
  EXPECT_EQ(a.dsp_saturations, b.dsp_saturations) << tag;
  EXPECT_TRUE(stats_eq(a.stats, b.stats)) << tag;
}

struct ConfigShape {
  Algorithm algo;
  QmaxMode qmax;
  HazardMode hazard;
  const char* name;
};

constexpr ConfigShape kShapes[] = {
    {Algorithm::kQLearning, QmaxMode::kMonotoneTable, HazardMode::kForward,
     "q_mono_fwd"},
    {Algorithm::kQLearning, QmaxMode::kExactScan, HazardMode::kStall,
     "q_exact_stall"},
    {Algorithm::kSarsa, QmaxMode::kMonotoneTable, HazardMode::kForward,
     "sarsa_mono_fwd"},
    {Algorithm::kSarsa, QmaxMode::kExactScan, HazardMode::kForward,
     "sarsa_exact_fwd"},
    {Algorithm::kExpectedSarsa, QmaxMode::kExactScan, HazardMode::kForward,
     "esarsa_fwd"},
    {Algorithm::kExpectedSarsa, QmaxMode::kExactScan, HazardMode::kStall,
     "esarsa_stall"},
    {Algorithm::kDoubleQ, QmaxMode::kExactScan, HazardMode::kForward,
     "dq_fwd"},
    {Algorithm::kDoubleQ, QmaxMode::kExactScan, HazardMode::kStall,
     "dq_stall"},
};

// Mixed run shapes (samples target, iteration count, samples again) so
// per-call drain/refill accounting is exercised, not just one long run.
void check_lane_vs_fast(const env::Environment& env, PipelineConfig cfg,
                        const std::string& tag) {
  FastEngine fast(env, cfg);
  LaneEngine lane(env, cfg);
  std::vector<SampleTrace> fast_trace, lane_trace;
  fast.set_trace(&fast_trace);
  lane.set_trace(0, &lane_trace);

  fast.run_samples(5000);
  lane.run_samples(0, 5000);
  fast.run_iterations(777);
  lane.run_iterations(0, 777);
  fast.run_samples(fast.stats().samples + 3000);
  lane.run_samples(0, lane.stats(0).samples + 3000);

  ASSERT_EQ(fast_trace.size(), lane_trace.size()) << tag;
  for (std::size_t i = 0; i < fast_trace.size(); ++i) {
    ASSERT_TRUE(fast_trace[i] == lane_trace[i])
        << tag << ": trace diverges at sample " << i;
  }
  EXPECT_TRUE(stats_eq(fast.stats(), lane.stats(0))) << tag;
  expect_state_eq(fast.save_state(), lane.save_state(0), tag);
}

TEST(LaneEngineDifferential, MatchesFastEngineForEveryConfigShape) {
  env::GridWorld small(grid_cfg(32, 32, 4));
  env::GridWorld med(grid_cfg(64, 64, 8));
  for (const ConfigShape& shape : kShapes) {
    PipelineConfig cfg;
    cfg.algorithm = shape.algo;
    cfg.qmax = shape.qmax;
    cfg.hazard = shape.hazard;
    cfg.backend = Backend::kLanes;
    cfg.seed = 42;
    check_lane_vs_fast(small, cfg, shape.name);

    PipelineConfig cfg2 = cfg;
    cfg2.seed = 99;
    cfg2.alpha = 0.5;
    check_lane_vs_fast(med, cfg2, std::string(shape.name) + "_med");
  }
}

// Hazard-heavy environments: the ring MDP makes every consecutive update
// a distance-1 dependency; the self-loop MDP hammers one Q row.
TEST(LaneEngineDifferential, MatchesFastEngineUnderForwardingPressure) {
  env::RandomMdpConfig ring;
  ring.num_states = 2;
  ring.num_actions = 4;
  ring.ring = true;
  env::RandomMdp ring_env(ring);

  env::RandomMdpConfig loop;
  loop.num_states = 2;
  loop.num_actions = 2;
  loop.seed = 7;
  loop.self_loop = true;
  env::RandomMdp loop_env(loop);

  for (const ConfigShape& shape : kShapes) {
    PipelineConfig cfg;
    cfg.algorithm = shape.algo;
    cfg.qmax = shape.qmax;
    cfg.hazard = shape.hazard;
    cfg.backend = Backend::kLanes;
    cfg.seed = 5;
    cfg.max_episode_length = 64;
    check_lane_vs_fast(ring_env, cfg,
                       std::string(shape.name) + "_ring");
    check_lane_vs_fast(loop_env, cfg,
                       std::string(shape.name) + "_selfloop");
  }
}

// One group, six lanes, two environments, per-lane seeds/rates, uneven
// targets: every lane must land exactly where its solo double does.
TEST(LaneEngineDifferential, MixedLaneGroupMatchesSoloFastEngines) {
  env::GridWorld small(grid_cfg(32, 32, 4));
  env::GridWorld med(grid_cfg(64, 64, 8));

  std::vector<LaneEngine::LaneSpec> specs;
  for (int i = 0; i < 6; ++i) {
    PipelineConfig cfg;
    cfg.algorithm = Algorithm::kQLearning;
    cfg.backend = Backend::kLanes;
    cfg.seed = 1000 + static_cast<std::uint64_t>(i) * 17;
    cfg.alpha = 0.05 + 0.1 * i;
    LaneEngine::LaneSpec spec;
    spec.env = (i % 2 == 0) ? static_cast<const env::Environment*>(&small)
                            : &med;
    spec.config = cfg;
    specs.push_back(spec);
  }
  LaneEngine group(specs);
  const std::vector<std::uint64_t> targets = {4000, 5500, 1000,
                                              7000, 4000, 2500};
  group.run_samples_all(targets);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    FastEngine ref(*specs[i].env, specs[i].config);
    ref.run_samples(targets[i]);
    expect_state_eq(ref.save_state(), group.save_state(i),
                    "lane " + std::to_string(i));
  }
}

// Lanes at their target must not tick while the group drives laggards.
TEST(LaneEngineDifferential, StaggeredTargetsFreezeFinishedLanes) {
  env::GridWorld small(grid_cfg(32, 32, 4));
  std::vector<LaneEngine::LaneSpec> specs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    specs[i].env = &small;
    specs[i].config.algorithm = Algorithm::kSarsa;
    specs[i].config.backend = Backend::kLanes;
    specs[i].config.seed = 11 + i;
  }
  LaneEngine group(specs);
  group.run_samples_all({2000, 100, 900});
  const MachineState lane0_mid = group.save_state(0);
  // Lane 0 is already at target: only lanes 1 and 2 may advance.
  group.run_samples_all({2000, 1800, 1600});
  expect_state_eq(group.save_state(0), lane0_mid, "frozen lane 0");
  // References replay the group's two-chunk partitioning: analytic
  // cycle accounting carries one drain/refill per run_*() call.
  const std::uint64_t first_chunk[] = {2000, 100, 900};
  const std::uint64_t second_chunk[] = {2000, 1800, 1600};
  for (std::size_t i = 0; i < 3; ++i) {
    FastEngine ref(small, specs[i].config);
    ref.run_samples(first_chunk[i]);
    ref.run_samples(second_chunk[i]);
    expect_state_eq(ref.save_state(), group.save_state(i),
                    "staggered lane " + std::to_string(i));
  }
}

// save_state mid-run, reload into a FRESH single-lane engine, continue
// both: the fork and the original must stay bit-identical.
TEST(LaneEngineState, MidRunSaveLoadRoundTripsPerLane) {
  env::GridWorld small(grid_cfg(32, 32, 4));
  std::vector<LaneEngine::LaneSpec> specs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    specs[i].env = &small;
    specs[i].config.algorithm = Algorithm::kDoubleQ;
    specs[i].config.backend = Backend::kLanes;
    specs[i].config.seed = 500 + i;
  }
  LaneEngine group(specs);
  group.run_samples_all({1500, 2500, 3500});

  for (std::size_t i = 0; i < 3; ++i) {
    LaneEngine fork(small, specs[i].config);
    fork.load_state(0, group.save_state(i));
    const std::uint64_t target = group.stats(i).samples + 2000;
    fork.run_samples(0, target);
    group.run_samples(i, target);
    expect_state_eq(group.save_state(i), fork.save_state(0),
                    "fork lane " + std::to_string(i));
  }
}

// The donation protocol behind runtime lane coalescing: take_state out
// of single-lane engines, put_state into a deferred-table group, run,
// donate back, continue solo — against an uninterrupted solo run.
TEST(LaneEngineState, TakeAndPutStateDonationIsBitInvisible) {
  env::GridWorld small(grid_cfg(32, 32, 4));
  PipelineConfig base;
  base.algorithm = Algorithm::kExpectedSarsa;
  base.backend = Backend::kLanes;

  std::vector<std::unique_ptr<LaneEngine>> singles;
  std::vector<PipelineConfig> cfgs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    PipelineConfig cfg = base;
    cfg.seed = 300 + i * 7;
    cfgs.push_back(cfg);
    singles.push_back(std::make_unique<LaneEngine>(small, cfg));
    singles.back()->run_samples(0, 1000 + 250 * i);
  }

  {
    std::vector<LaneEngine::LaneSpec> specs;
    std::vector<MachineState> states;
    for (std::size_t i = 0; i < singles.size(); ++i) {
      LaneEngine::LaneSpec spec;
      spec.env = &small;
      spec.config = cfgs[i];
      spec.image = singles[i]->env_image(0);
      spec.defer_tables = true;
      specs.push_back(spec);
      states.push_back(singles[i]->take_state(0));
    }
    LaneEngine group(specs);
    for (std::size_t i = 0; i < states.size(); ++i) {
      group.put_state(i, std::move(states[i]));
    }
    std::vector<std::uint64_t> targets;
    for (std::size_t i = 0; i < singles.size(); ++i) {
      targets.push_back(group.stats(i).samples + 3000);
    }
    group.run_samples_all(targets);
    for (std::size_t i = 0; i < singles.size(); ++i) {
      singles[i]->put_state(0, group.take_state(i));
    }
  }

  for (std::size_t i = 0; i < singles.size(); ++i) {
    singles[i]->run_samples(0, singles[i]->stats(0).samples + 500);
    FastEngine solo(small, cfgs[i]);
    solo.run_samples(1000 + 250 * i);
    solo.run_samples(solo.stats().samples + 3000);
    solo.run_samples(solo.stats().samples + 500);
    expect_state_eq(solo.save_state(), singles[i]->save_state(0),
                    "donated lane " + std::to_string(i));
  }
}

// Runtime layer: a kLanes Engine fleet coalesced by run_samples_each
// must be bit-identical to the same fleet on the fast backend.
TEST(LaneCoalescer, FleetRunsBitExactVsFastBackend) {
  auto make_envs = [] {
    std::vector<std::unique_ptr<env::Environment>> envs;
    for (int i = 0; i < 6; ++i) {
      envs.push_back(std::make_unique<env::GridWorld>(
          grid_cfg(i % 2 == 0 ? 16 : 32, 16, 4)));
    }
    return envs;
  };
  PipelineConfig lanes_cfg;
  lanes_cfg.algorithm = Algorithm::kQLearning;
  lanes_cfg.backend = Backend::kLanes;
  lanes_cfg.seed = 77;
  PipelineConfig fast_cfg = lanes_cfg;
  fast_cfg.backend = Backend::kFast;

  runtime::IndependentPipelines lanes_fleet(make_envs(), lanes_cfg);
  runtime::IndependentPipelines fast_fleet(make_envs(), fast_cfg);
  // Two calls: the second's targets are absolute, so lanes that
  // overshot on drain must not re-run the overshoot.
  for (const std::uint64_t target : {4000u, 9000u}) {
    lanes_fleet.run_samples_each(target, 1);
    fast_fleet.run_samples_each(target, 1);
  }

  ASSERT_EQ(lanes_fleet.num_pipelines(), fast_fleet.num_pipelines());
  for (unsigned p = 0; p < lanes_fleet.num_pipelines(); ++p) {
    const auto& le = lanes_fleet.engine(p);
    const auto& fe = fast_fleet.engine(p);
    EXPECT_TRUE(stats_eq(le.stats(), fe.stats())) << "pipeline " << p;
    const auto& env = lanes_fleet.environment(p);
    for (StateId s = 0; s < env.num_states(); ++s) {
      for (ActionId a = 0; a < env.num_actions(); ++a) {
        ASSERT_EQ(le.q_raw(s, a), fe.q_raw(s, a))
            << "pipeline " << p << " Q(" << s << "," << a << ")";
      }
    }
  }
}

// LaneGroupRunner scoped twice over the same engines: state migrates
// out and back each time, and the detour must be bit-invisible vs solo
// fast-backend engines partitioned the same way.
TEST(LaneCoalescer, GroupRunnerRoundTripIsBitInvisible) {
  env::GridWorld small(grid_cfg(16, 16, 4));
  env::GridWorld med(grid_cfg(64, 32, 8));

  std::vector<std::unique_ptr<runtime::Engine>> engines;
  std::vector<std::unique_ptr<runtime::Engine>> solos;
  std::vector<runtime::Engine*> members;
  for (int i = 0; i < 4; ++i) {
    PipelineConfig cfg;
    cfg.algorithm = Algorithm::kSarsa;
    cfg.backend = Backend::kLanes;
    cfg.seed = 40 + static_cast<std::uint64_t>(i);
    cfg.alpha = 0.1 + 0.05 * i;
    const env::Environment& env =
        (i < 2) ? static_cast<const env::Environment&>(small) : med;
    engines.push_back(std::make_unique<runtime::Engine>(env, cfg));
    members.push_back(engines.back().get());
    PipelineConfig solo_cfg = cfg;
    solo_cfg.backend = Backend::kFast;
    solos.push_back(std::make_unique<runtime::Engine>(env, solo_cfg));
  }

  ASSERT_TRUE(runtime::is_lane_backend(*members[0]));
  ASSERT_TRUE(runtime::can_coalesce(*members[0], *members[3]));

  const std::vector<std::uint64_t> steps = {1000, 2000, 1500, 3000};
  {
    runtime::LaneGroupRunner runner(members);
    runner.run_steps(steps);
  }
  for (std::size_t i = 0; i < solos.size(); ++i) {
    solos[i]->run_samples(solos[i]->stats().samples + steps[i]);
  }
  // Second detour through a fresh group: run_steps is relative to the
  // retired totals, matching the serve Step contract.
  {
    runtime::LaneGroupRunner runner(members);
    runner.run_steps(steps);
  }
  for (std::size_t i = 0; i < solos.size(); ++i) {
    solos[i]->run_samples(solos[i]->stats().samples + steps[i]);
  }

  for (std::size_t i = 0; i < engines.size(); ++i) {
    EXPECT_TRUE(stats_eq(engines[i]->stats(), solos[i]->stats()))
        << "engine " << i;
    const env::Environment& env = engines[i]->environment();
    for (StateId s = 0; s < env.num_states(); ++s) {
      for (ActionId a = 0; a < env.num_actions(); ++a) {
        ASSERT_EQ(engines[i]->q_raw(s, a), solos[i]->q_raw(s, a))
            << "engine " << i << " Q(" << s << "," << a << ")";
      }
    }
  }
}

}  // namespace
}  // namespace qta::qtaccel

// Cross-stack integration: the fixed-point accelerator, the
// double-precision software references, and exact dynamic programming
// must all agree on WHAT is learned across a sweep of obstacle worlds.
// (The equivalence suite pins the accelerator to its golden model; this
// suite pins the whole stack to ground truth.)
#include <gtest/gtest.h>

#include <sstream>

#include "algo/q_learning.h"
#include "algo/trainer.h"
#include "env/grid_world.h"
#include "env/value_iteration.h"
#include "qtaccel/pipeline.h"

namespace qta {
namespace {

struct WorldCase {
  unsigned side;
  double obstacles;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<WorldCase>& info) {
  std::ostringstream os;
  os << info.param.side << "x" << info.param.side << "_obst"
     << static_cast<int>(info.param.obstacles * 100) << "_s"
     << info.param.seed;
  return os.str();
}

class CrossStack : public testing::TestWithParam<WorldCase> {};

std::vector<ActionId> greedy_of(const env::GridWorld& g,
                                const std::vector<double>& q) {
  std::vector<ActionId> policy(g.num_states(), 0);
  for (StateId s = 0; s < g.num_states(); ++s) {
    double best = -1e300;
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      const double v = q[static_cast<std::size_t>(s) * g.num_actions() + a];
      if (v > best) {
        best = v;
        policy[s] = a;
      }
    }
  }
  return policy;
}

double agreement_with_optimal(const env::GridWorld& g,
                              const std::vector<ActionId>& policy,
                              const env::ValueIterationResult& vi) {
  int match = 0, total = 0;
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_terminal(s) || g.is_obstacle(s)) continue;
    const int got = env::rollout_steps(g, policy, s, 2000);
    const int best = env::rollout_steps(g, vi.policy, s, 2000);
    if (best < 0) continue;  // walled-off pocket: unreachable even for DP
    ++total;
    match += (got == best) ? 1 : 0;
  }
  return total == 0 ? 1.0 : static_cast<double>(match) / total;
}

TEST_P(CrossStack, AcceleratorAndSoftwareReachTheOptimum) {
  const WorldCase& wc = GetParam();
  env::GridWorldConfig gc;
  gc.width = gc.height = wc.side;
  gc.num_actions = 4;
  gc.obstacle_density = wc.obstacles;
  gc.obstacle_seed = wc.seed;
  env::GridWorld world(gc);
  const auto vi = env::value_iteration(world, 0.9);

  const std::uint64_t samples = 1500ull * world.num_states();

  // Fixed-point accelerator.
  qtaccel::PipelineConfig pc;
  pc.alpha = 0.2;
  pc.gamma = 0.9;
  pc.seed = wc.seed + 1;
  pc.max_episode_length = 4 * world.num_states();
  qtaccel::Pipeline accel(world, pc);
  accel.run_samples(samples);

  // Double-precision software reference.
  algo::QLearningOptions qo;
  qo.alpha = 0.2;
  qo.gamma = 0.9;
  algo::QLearning soft(world, qo);
  algo::TrainOptions to;
  to.total_samples = samples;
  to.seed = wc.seed + 2;
  to.max_steps_per_episode = 4 * world.num_states();
  algo::train(soft, to);

  const double acc_agree =
      agreement_with_optimal(world, greedy_of(world, accel.q_as_double()),
                             vi);
  const double soft_agree =
      agreement_with_optimal(world, soft.greedy_policy(), vi);
  EXPECT_GT(acc_agree, 0.95) << "accelerator policy quality";
  EXPECT_GT(soft_agree, 0.95) << "software policy quality";
  // Fixed point must not lag the double reference by more than a whisker.
  EXPECT_GT(acc_agree, soft_agree - 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, CrossStack,
    testing::Values(WorldCase{8, 0.0, 1}, WorldCase{8, 0.2, 2},
                    WorldCase{16, 0.0, 3}, WorldCase{16, 0.15, 4},
                    WorldCase{16, 0.25, 5}),
    case_name);

}  // namespace
}  // namespace qta

#include <gtest/gtest.h>

#include "fixed/fixed_point.h"
#include "hw/bram.h"
#include "hw/dsp.h"
#include "hw/resource_ledger.h"
#include "hw/sim_kernel.h"

namespace qta::hw {
namespace {

TEST(Reg, TwoPhaseUpdate) {
  Reg<int> r(0);
  r.set_next(5);
  EXPECT_EQ(r.get(), 0);  // not visible until the edge
  r.clock_edge();
  EXPECT_EQ(r.get(), 5);
}

TEST(Reg, Force) {
  Reg<int> r(0);
  r.force(7);
  EXPECT_EQ(r.get(), 7);
  r.clock_edge();
  EXPECT_EQ(r.get(), 7);
}

TEST(SimKernel, AdvancesTime) {
  SimKernel k;
  Reg<int> r(0);
  k.attach(&r);
  EXPECT_EQ(k.now(), 0u);
  r.set_next(1);
  k.begin_cycle();
  k.clock_edge();
  EXPECT_EQ(k.now(), 1u);
  EXPECT_EQ(r.get(), 1);
}

TEST(Bram, ReadFirstSemantics) {
  Bram b("t", 16, 18);
  b.preset(3, 42);
  b.begin_cycle();
  b.write(1, 3, 99);          // queued
  EXPECT_EQ(b.read(0, 3), 42);  // same cycle: old data
  b.clock_edge();
  b.begin_cycle();
  EXPECT_EQ(b.read(0, 3), 99);  // next cycle: new data
}

TEST(Bram, PortReuseAborts) {
  Bram b("t", 16, 18);
  b.begin_cycle();
  b.read(0, 0);
  EXPECT_DEATH(b.read(0, 1), "port used twice");
}

TEST(Bram, PortReuseCountedWhenPolicyIsCount) {
  Bram b("t", 16, 18, 2, PortConflictPolicy::kCount);
  b.begin_cycle();
  b.read(0, 0);
  b.read(0, 1);
  EXPECT_EQ(b.stats().port_conflicts, 1u);
}

TEST(Bram, PortsClearEachCycle) {
  Bram b("t", 16, 18);
  for (int c = 0; c < 5; ++c) {
    b.begin_cycle();
    b.read(0, 0);
    b.write(1, 1, c);
    b.clock_edge();
  }
  EXPECT_EQ(b.stats().port_conflicts, 0u);
  EXPECT_EQ(b.peek(1), 4);
}

TEST(Bram, OutOfRangeAborts) {
  Bram b("t", 16, 18);
  b.begin_cycle();
  EXPECT_DEATH(b.read(0, 16), "address out of range");
  EXPECT_DEATH(b.write(1, 99, 0), "address out of range");
}

TEST(Bram, WriteCollisionArbitration) {
  // Two ports writing the same address in one cycle: the higher port wins
  // and the event is counted (Section VII-A shared-table semantics).
  Bram b("t", 16, 18, 4);
  b.begin_cycle();
  b.write(1, 5, 111);
  b.write(3, 5, 222);
  b.clock_edge();
  EXPECT_EQ(b.peek(5), 222);
  EXPECT_EQ(b.stats().write_collisions, 1u);
}

TEST(Bram, DistinctAddressWritesAreNotCollisions) {
  Bram b("t", 16, 18, 4);
  b.begin_cycle();
  b.write(1, 5, 1);
  b.write(3, 6, 2);
  b.clock_edge();
  EXPECT_EQ(b.stats().write_collisions, 0u);
  EXPECT_EQ(b.peek(5), 1);
  EXPECT_EQ(b.peek(6), 2);
}

TEST(Bram, FillAndPeek) {
  Bram b("t", 8, 18);
  b.fill(-3);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(b.peek(i), -3);
}

TEST(Bram, StatsCountAccesses) {
  Bram b("t", 8, 18);
  b.begin_cycle();
  b.read(0, 0);
  b.write(1, 1, 5);
  b.clock_edge();
  EXPECT_EQ(b.stats().reads, 1u);
  EXPECT_EQ(b.stats().writes, 1u);
}

TEST(Bram, RegisterResources) {
  Bram b("qt", 2048, 18);
  ResourceLedger ledger;
  b.register_resources(ledger);
  ASSERT_EQ(ledger.memories().size(), 1u);
  EXPECT_EQ(ledger.memories()[0].name, "qt");
  EXPECT_EQ(ledger.memories()[0].bits(), 2048u * 18u);
}

TEST(Dsp, MultipliesAndCounts) {
  DspMultiplier dsp("m", fixed::Format{18, 8}, fixed::Format{18, 16},
                    fixed::Format{18, 8});
  const fixed::raw_t a = fixed::from_double(2.0, {18, 8});
  const fixed::raw_t b = fixed::from_double(0.25, {18, 16});
  EXPECT_EQ(dsp.multiply(a, b), fixed::from_double(0.5, {18, 8}));
  EXPECT_EQ(dsp.invocations(), 1u);
  EXPECT_EQ(dsp.saturations(), 0u);
}

TEST(Dsp, CountsSaturations) {
  DspMultiplier dsp("m", fixed::Format{18, 2}, fixed::Format{18, 2},
                    fixed::Format{18, 8});
  const fixed::raw_t big = fixed::from_double(10000.0, {18, 2});
  dsp.multiply(big, big);
  EXPECT_EQ(dsp.saturations(), 1u);
}

TEST(Dsp, RegistersOneSlice) {
  DspMultiplier dsp("m", fixed::Format{18, 8}, fixed::Format{18, 16},
                    fixed::Format{18, 8});
  ResourceLedger ledger;
  dsp.register_resources(ledger);
  EXPECT_EQ(ledger.dsp(), 1u);
}

TEST(ResourceLedger, Accumulates) {
  ResourceLedger ledger;
  ledger.add_memory({"a", 100, 18, 2});
  ledger.add_memory({"b", 50, 36, 1});
  ledger.add_dsp(4, "datapath");
  ledger.add_flip_flops(100, "regs");
  ledger.add_luts(200, "ctrl");
  EXPECT_EQ(ledger.memory_bits(), 100u * 18 + 50u * 36);
  EXPECT_EQ(ledger.dsp(), 4u);
  EXPECT_EQ(ledger.flip_flops(), 100u);
  EXPECT_EQ(ledger.luts(), 200u);
  EXPECT_EQ(ledger.notes().size(), 5u);
}

TEST(ResourceLedger, Merge) {
  ResourceLedger a, b;
  a.add_dsp(4, "x");
  b.add_dsp(4, "y");
  b.add_memory({"m", 10, 18, 2});
  a.merge(b);
  EXPECT_EQ(a.dsp(), 8u);
  EXPECT_EQ(a.memories().size(), 1u);
}

}  // namespace
}  // namespace qta::hw

// Differential verification of the fast functional backend: FastEngine
// must retire a bit-identical SampleTrace, final Q/Qmax tables, AND a
// bit-identical PipelineStats against both the cycle-accurate Pipeline
// and the sequential GoldenModel, for every algorithm, qmax mode, and
// hazard mode — the stats are reconstructed analytically, so every
// counter (cycles, stalls, per-path forwarding hits, saturations) is a
// falsifiable claim about the derivation, not just the arithmetic.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "env/grid_world.h"
#include "env/random_mdp.h"
#include "qtaccel/fast_engine.h"
#include "qtaccel/golden_model.h"
#include "qtaccel/pipeline.h"
#include "runtime/engine.h"

namespace qta::qtaccel {
namespace {

enum class FastEnvKind {
  kRing2,      // every consecutive update is a distance-1 hazard
  kSelfLoop,   // one Q row hammered until the watchdog fires
  kGrid8x8,    // episodic restarts, bubbles on terminal draws
  kGrid4x4Slippery,  // stochastic transitions (noise LFSR, no prebake)
  kGrid4x4EightActions,
};

const char* env_name(FastEnvKind k) {
  switch (k) {
    case FastEnvKind::kRing2: return "ring2";
    case FastEnvKind::kSelfLoop: return "selfloop";
    case FastEnvKind::kGrid8x8: return "grid8x8";
    case FastEnvKind::kGrid4x4Slippery: return "grid4x4slip";
    case FastEnvKind::kGrid4x4EightActions: return "grid4x4a8";
  }
  return "?";
}

std::unique_ptr<env::Environment> make_env(FastEnvKind kind) {
  switch (kind) {
    case FastEnvKind::kRing2: {
      env::RandomMdpConfig c;
      c.num_states = 2;
      c.num_actions = 4;
      c.ring = true;
      c.reward_lo = -2.0;
      c.reward_hi = 2.0;
      return std::make_unique<env::RandomMdp>(c);
    }
    case FastEnvKind::kSelfLoop: {
      env::RandomMdpConfig c;
      c.num_states = 2;
      c.num_actions = 2;
      c.seed = 7;
      c.self_loop = true;
      return std::make_unique<env::RandomMdp>(c);
    }
    case FastEnvKind::kGrid8x8: {
      env::GridWorldConfig c;
      c.width = 8;
      c.height = 8;
      c.num_actions = 4;
      c.obstacle_density = 0.2;
      c.obstacle_seed = 11;
      return std::make_unique<env::GridWorld>(c);
    }
    case FastEnvKind::kGrid4x4Slippery: {
      env::GridWorldConfig c;
      c.width = 4;
      c.height = 4;
      c.num_actions = 4;
      c.slip_probability = 0.3;
      return std::make_unique<env::GridWorld>(c);
    }
    case FastEnvKind::kGrid4x4EightActions: {
      env::GridWorldConfig c;
      c.width = 4;
      c.height = 4;
      c.num_actions = 8;
      return std::make_unique<env::GridWorld>(c);
    }
  }
  return nullptr;
}

struct FastCase {
  Algorithm algorithm;
  QmaxMode qmax;
  HazardMode hazard;
  FastEnvKind env;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<FastCase>& info) {
  const FastCase& c = info.param;
  std::ostringstream os;
  const char* algo_name = "QL";
  switch (c.algorithm) {
    case Algorithm::kQLearning: algo_name = "QL"; break;
    case Algorithm::kSarsa: algo_name = "SARSA"; break;
    case Algorithm::kExpectedSarsa: algo_name = "ESARSA"; break;
    case Algorithm::kDoubleQ: algo_name = "DQ"; break;
  }
  os << algo_name << '_'
     << (c.qmax == QmaxMode::kMonotoneTable ? "mono" : "exact") << '_'
     << (c.hazard == HazardMode::kForward ? "fwd" : "stall") << '_'
     << env_name(c.env) << "_s" << c.seed;
  return os.str();
}

std::vector<FastCase> make_cases() {
  std::vector<FastCase> cases;
  const FastEnvKind envs[] = {
      FastEnvKind::kRing2, FastEnvKind::kSelfLoop, FastEnvKind::kGrid8x8,
      FastEnvKind::kGrid4x4Slippery, FastEnvKind::kGrid4x4EightActions,
  };
  for (auto algorithm : {Algorithm::kQLearning, Algorithm::kSarsa,
                         Algorithm::kExpectedSarsa, Algorithm::kDoubleQ}) {
    for (auto qmax : {QmaxMode::kMonotoneTable, QmaxMode::kExactScan}) {
      for (FastEnvKind e : envs) {
        for (std::uint64_t seed : {1ull, 99ull}) {
          cases.push_back(
              {algorithm, qmax, HazardMode::kForward, e, seed});
        }
      }
      // Stall-mode timing model (4 cycles/iteration, zero fwd_qmax) on
      // the two hazard-densest environments.
      cases.push_back({algorithm, qmax, HazardMode::kStall,
                       FastEnvKind::kRing2, 5});
      cases.push_back({algorithm, qmax, HazardMode::kStall,
                       FastEnvKind::kSelfLoop, 5});
    }
  }
  return cases;
}

PipelineConfig make_config(const FastCase& c) {
  PipelineConfig config;
  config.algorithm = c.algorithm;
  config.qmax = c.qmax;
  config.hazard = c.hazard;
  config.alpha = 0.25;
  config.gamma = 0.9;
  config.epsilon = 0.1;
  config.seed = c.seed;
  config.max_episode_length = 64;  // exercise the watchdog path too
  return config;
}

void expect_same_stats(const PipelineStats& want,
                       const PipelineStats& got) {
  EXPECT_EQ(want.iterations, got.iterations);
  EXPECT_EQ(want.samples, got.samples);
  EXPECT_EQ(want.episodes, got.episodes);
  EXPECT_EQ(want.bubbles, got.bubbles);
  EXPECT_EQ(want.cycles, got.cycles);
  EXPECT_EQ(want.issued, got.issued);
  EXPECT_EQ(want.stall_cycles, got.stall_cycles);
  EXPECT_EQ(want.fwd_q_sa, got.fwd_q_sa);
  EXPECT_EQ(want.fwd_q_next, got.fwd_q_next);
  EXPECT_EQ(want.fwd_qmax, got.fwd_qmax);
  EXPECT_EQ(want.adder_saturations, got.adder_saturations);
}

void expect_same_tables(const env::Environment& env, const FastCase& c,
                        const Pipeline& pipeline, const FastEngine& fast) {
  for (StateId s = 0; s < env.num_states(); ++s) {
    for (ActionId a = 0; a < env.num_actions(); ++a) {
      ASSERT_EQ(pipeline.q_raw(s, a), fast.q_raw(s, a))
          << "Q mismatch at s=" << s << " a=" << a;
      if (c.algorithm == Algorithm::kDoubleQ) {
        ASSERT_EQ(pipeline.q2_raw(s, a), fast.q2_raw(s, a))
            << "Q2 mismatch at s=" << s << " a=" << a;
      }
    }
    if (c.qmax == QmaxMode::kMonotoneTable &&
        c.algorithm != Algorithm::kExpectedSarsa &&
        c.algorithm != Algorithm::kDoubleQ) {
      const auto want = pipeline.qmax_entry(s);
      const auto got = fast.qmax_entry(s);
      ASSERT_EQ(want.value, got.value) << "Qmax value, s=" << s;
      if (want.value != 0) {
        ASSERT_EQ(want.action, got.action) << "Qmax action, s=" << s;
      }
    }
  }
}

class FastEngineTest : public testing::TestWithParam<FastCase> {};

// run_iterations across uneven chunk boundaries (each call pays its own
// drain, so per-call cycle accounting is exercised, not just the total).
TEST_P(FastEngineTest, IterationsMatchPipelineAndGolden) {
  const FastCase& c = GetParam();
  auto environment = make_env(c.env);
  const PipelineConfig config = make_config(c);
  constexpr std::uint64_t kChunks[] = {1, 4096, 7903, 1};  // 12001 total

  GoldenModel golden(*environment, config);
  std::vector<SampleTrace> golden_trace;
  golden.set_trace(&golden_trace);

  Pipeline pipeline(*environment, config);
  std::vector<SampleTrace> pipe_trace;
  pipeline.set_trace(&pipe_trace);

  FastEngine fast(*environment, config);
  std::vector<SampleTrace> fast_trace;
  fast.set_trace(&fast_trace);

  for (std::uint64_t n : kChunks) {
    golden.run(n);
    pipeline.run_iterations(n);
    fast.run_iterations(n);
  }

  ASSERT_EQ(golden_trace.size(), fast_trace.size());
  for (std::size_t i = 0; i < golden_trace.size(); ++i) {
    ASSERT_EQ(golden_trace[i], fast_trace[i])
        << "golden/fast divergence at " << i;
  }
  ASSERT_EQ(pipe_trace.size(), fast_trace.size());
  for (std::size_t i = 0; i < pipe_trace.size(); ++i) {
    ASSERT_EQ(pipe_trace[i], fast_trace[i])
        << "pipeline/fast divergence at " << i;
  }

  expect_same_tables(*environment, c, pipeline, fast);
  // Golden's tables too (same addresses; catches shared wrong-by-the-
  // same-bug failures between the two replay implementations).
  for (StateId s = 0; s < environment->num_states(); ++s) {
    for (ActionId a = 0; a < environment->num_actions(); ++a) {
      ASSERT_EQ(golden.q_raw(s, a), fast.q_raw(s, a));
    }
  }

  expect_same_stats(pipeline.stats(), fast.stats());
  EXPECT_EQ(pipeline.dsp_saturations(), fast.dsp_saturations());
}

// run_samples must reproduce the pipeline's drain overshoot exactly:
// in forward mode the final tables include 3 extra retired iterations.
TEST_P(FastEngineTest, SamplesMatchPipeline) {
  const FastCase& c = GetParam();
  auto environment = make_env(c.env);
  const PipelineConfig config = make_config(c);

  Pipeline pipeline(*environment, config);
  std::vector<SampleTrace> pipe_trace;
  pipeline.set_trace(&pipe_trace);

  FastEngine fast(*environment, config);
  std::vector<SampleTrace> fast_trace;
  fast.set_trace(&fast_trace);

  // Successive targets, including a no-op (already past 1500 after 3000).
  for (std::uint64_t target : {3000ull, 1500ull, 5000ull}) {
    pipeline.run_samples(target);
    fast.run_samples(target);
  }

  ASSERT_EQ(pipe_trace.size(), fast_trace.size());
  for (std::size_t i = 0; i < pipe_trace.size(); ++i) {
    ASSERT_EQ(pipe_trace[i], fast_trace[i]) << "divergence at " << i;
  }
  expect_same_tables(*environment, c, pipeline, fast);
  expect_same_stats(pipeline.stats(), fast.stats());
  EXPECT_EQ(pipeline.dsp_saturations(), fast.dsp_saturations());
}

INSTANTIATE_TEST_SUITE_P(Sweep, FastEngineTest,
                         testing::ValuesIn(make_cases()), case_name);

// Warm-start path: preset_q + rebuild_qmax must leave both backends in
// the same state, and stay bit-identical when training resumes.
TEST(FastEngineWarmStart, PresetAndRebuildMatchPipeline) {
  auto environment = make_env(FastEnvKind::kGrid8x8);
  PipelineConfig config;
  config.algorithm = Algorithm::kQLearning;
  config.seed = 21;

  Pipeline pipeline(*environment, config);
  FastEngine fast(*environment, config);
  for (StateId s = 0; s < environment->num_states(); ++s) {
    const fixed::raw_t v =
        fixed::from_double(0.01 * static_cast<double>(s % 17) - 0.05,
                           config.q_fmt);
    pipeline.preset_q(s, s % environment->num_actions(), v);
    fast.preset_q(s, s % environment->num_actions(), v);
  }
  pipeline.rebuild_qmax();
  fast.rebuild_qmax();
  pipeline.run_iterations(4000);
  fast.run_iterations(4000);
  for (StateId s = 0; s < environment->num_states(); ++s) {
    for (ActionId a = 0; a < environment->num_actions(); ++a) {
      ASSERT_EQ(pipeline.q_raw(s, a), fast.q_raw(s, a));
    }
    ASSERT_EQ(pipeline.qmax_entry(s).value, fast.qmax_entry(s).value);
  }
}

// The Engine facade dispatches per config.backend and both choices agree.
TEST(EngineFacade, BackendsProduceIdenticalResults) {
  auto environment = make_env(FastEnvKind::kGrid8x8);
  PipelineConfig config;
  config.algorithm = Algorithm::kSarsa;
  config.seed = 3;

  config.backend = Backend::kCycleAccurate;
  runtime::Engine cycle(*environment, config);
  config.backend = Backend::kFast;
  runtime::Engine fast(*environment, config);

  EXPECT_EQ(cycle.backend_kind(), Backend::kCycleAccurate);
  EXPECT_EQ(fast.backend_kind(), Backend::kFast);

  cycle.run_samples(8000);
  fast.run_samples(8000);
  EXPECT_EQ(cycle.stats().samples, fast.stats().samples);
  EXPECT_EQ(cycle.stats().cycles, fast.stats().cycles);
  const auto want = cycle.q_as_double();
  const auto got = fast.q_as_double();
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i]) << "q_as_double divergence at " << i;
  }
  EXPECT_EQ(cycle.greedy_policy(), fast.greedy_policy());
}

// The capability API replaces the old aborting pipeline() accessor:
// callers probe caps()/cycle_pipeline() instead of assuming a backend.
TEST(EngineFacade, CapabilityFlagsAndNullableCyclePipeline) {
  auto environment = make_env(FastEnvKind::kRing2);
  PipelineConfig config;

  config.backend = Backend::kCycleAccurate;
  runtime::Engine cycle(*environment, config);
  EXPECT_TRUE(cycle.backend().has_waveforms());
  EXPECT_TRUE(cycle.backend().has_cycle_events());
  EXPECT_TRUE(cycle.backend().has_port_audit());
  EXPECT_TRUE(cycle.backend().has_single_cycle_step());
  ASSERT_NE(cycle.cycle_pipeline(), nullptr);

  config.backend = Backend::kFast;
  runtime::Engine fast(*environment, config);
  EXPECT_FALSE(fast.backend().has_waveforms());
  EXPECT_FALSE(fast.backend().has_cycle_events());
  EXPECT_FALSE(fast.backend().has_port_audit());
  EXPECT_FALSE(fast.backend().has_single_cycle_step());
  EXPECT_EQ(fast.cycle_pipeline(), nullptr);
}

TEST(BackendParsing, RoundTripsAndRejectsJunk) {
  EXPECT_EQ(parse_backend("cycle"), Backend::kCycleAccurate);
  EXPECT_EQ(parse_backend("cycle-accurate"), Backend::kCycleAccurate);
  EXPECT_EQ(parse_backend("fast"), Backend::kFast);
  EXPECT_EQ(parse_backend("lanes"), Backend::kLanes);
  EXPECT_STREQ(backend_name(Backend::kCycleAccurate), "cycle");
  EXPECT_STREQ(backend_name(Backend::kFast), "fast");
  EXPECT_STREQ(backend_name(Backend::kLanes), "lanes");
  EXPECT_DEATH(parse_backend("warp"), "--backend");
}

}  // namespace
}  // namespace qta::qtaccel

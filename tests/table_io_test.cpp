#include <gtest/gtest.h>

#include <sstream>

#include <fstream>

#include "env/grid_world.h"
#include "env/value_iteration.h"
#include "runtime/table_io.h"

namespace qta::qtaccel {
namespace {

using runtime::Engine;
using runtime::load_q_table;
using runtime::save_q_table;

env::GridWorldConfig grid4() {
  env::GridWorldConfig c;
  c.width = 4;
  c.height = 4;
  c.num_actions = 4;
  return c;
}

TEST(TableIo, RoundTripIsBitExact) {
  env::GridWorld g(grid4());
  PipelineConfig c;
  c.seed = 1;
  c.max_episode_length = 128;
  Engine trained(g, c);
  trained.run_samples(50000);

  std::stringstream buf;
  save_q_table(buf, trained);

  Engine fresh(g, c);
  load_q_table(buf, fresh);
  for (StateId s = 0; s < g.num_states(); ++s) {
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      ASSERT_EQ(fresh.q_raw(s, a), trained.q_raw(s, a));
    }
  }
}

TEST(TableIo, RebuildsQmaxAsRowMaxima) {
  env::GridWorld g(grid4());
  PipelineConfig c;
  c.seed = 2;
  c.max_episode_length = 128;
  Engine trained(g, c);
  trained.run_samples(50000);
  std::stringstream buf;
  save_q_table(buf, trained);

  Engine fresh(g, c);
  load_q_table(buf, fresh);
  for (StateId s = 0; s < g.num_states(); ++s) {
    fixed::raw_t mx = fresh.q_raw(s, 0);
    ActionId arg = 0;
    for (ActionId a = 1; a < g.num_actions(); ++a) {
      if (fresh.q_raw(s, a) > mx) {
        mx = fresh.q_raw(s, a);
        arg = a;
      }
    }
    const auto e = fresh.qmax_entry(s);
    if (mx < 0) {
      EXPECT_EQ(e.value, 0);  // monotone table floor
    } else {
      EXPECT_EQ(e.value, mx);
      EXPECT_EQ(e.action, arg);
    }
  }
}

TEST(TableIo, WarmStartKeepsLearningConsistent) {
  // A warm-started pipeline must keep improving (and stay port-clean),
  // and its greedy policy should immediately match the donor's.
  env::GridWorld g(grid4());
  PipelineConfig c;
  c.seed = 3;
  c.max_episode_length = 128;
  Engine trained(g, c);
  trained.run_samples(200000);
  std::stringstream buf;
  save_q_table(buf, trained);

  PipelineConfig c2 = c;
  c2.seed = 99;
  Engine warm(g, c2);
  load_q_table(buf, warm);
  warm.run_samples(20000);
  const auto vi = env::value_iteration(g, c.gamma);
  std::vector<ActionId> policy(g.num_states(), 0);
  for (StateId s = 0; s < g.num_states(); ++s) {
    double best = -1e300;
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      if (warm.q_value(s, a) > best) {
        best = warm.q_value(s, a);
        policy[s] = a;
      }
    }
  }
  for (StateId s = 0; s < g.num_states(); ++s) {
    if (g.is_terminal(s)) continue;
    EXPECT_EQ(env::rollout_steps(g, policy, s, 100),
              env::rollout_steps(g, vi.policy, s, 100));
  }
  EXPECT_EQ(warm.cycle_pipeline()->q_table().stats().port_conflicts, 0u);
}

TEST(TableIo, LoadsCheckedInV1Fixture) {
  // Back-compat gate: the v1 format written by older releases must stay
  // loadable through the snapshot layer. The fixture is checked in, not
  // generated here, so any accidental format drift fails this test.
  env::GridWorld g(grid4());
  PipelineConfig c;
  Engine p(g, c);
  std::ifstream in(std::string(QTA_TEST_DATA_DIR) +
                   "/qtable_v1_grid4.txt");
  ASSERT_TRUE(in.is_open());
  load_q_table(in, p);
  for (StateId s = 0; s < g.num_states(); ++s) {
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      const auto want =
          static_cast<fixed::raw_t>(3 * static_cast<int>(s * 4 + a) - 50);
      ASSERT_EQ(p.q_raw(s, a), want) << "s=" << s << " a=" << a;
    }
    // Qmax was rebuilt as the row maximum (action 3 in the fixture's
    // ascending rows), with the monotone table's floor at zero.
    const auto e = p.qmax_entry(s);
    const auto row_max =
        static_cast<fixed::raw_t>(3 * static_cast<int>(s * 4 + 3) - 50);
    if (row_max < 0) {
      EXPECT_EQ(e.value, 0);
    } else {
      EXPECT_EQ(e.value, row_max);
      EXPECT_EQ(e.action, 3u);
    }
  }
}

TEST(TableIo, RejectsWrongGeometry) {
  env::GridWorld g(grid4());
  PipelineConfig c;
  Engine p(g, c);
  std::stringstream buf;
  save_q_table(buf, p);

  env::GridWorldConfig other = grid4();
  other.width = 8;
  env::GridWorld g8(other);
  Engine p8(g8, c);
  EXPECT_DEATH(load_q_table(buf, p8), "geometry");
}

TEST(TableIo, RejectsWrongFormat) {
  env::GridWorld g(grid4());
  PipelineConfig a;
  Engine pa(g, a);
  std::stringstream buf;
  save_q_table(buf, pa);

  PipelineConfig b;
  b.q_fmt = fixed::Format{16, 8};
  Engine pb(g, b);
  EXPECT_DEATH(load_q_table(buf, pb), "format");
}

TEST(TableIo, RejectsGarbage) {
  env::GridWorld g(grid4());
  PipelineConfig c;
  Engine p(g, c);
  std::stringstream not_a_table("hello world");
  EXPECT_DEATH(load_q_table(not_a_table, p), "QTACCEL-QTABLE");
  std::stringstream truncated(
      "QTACCEL-QTABLE v1\nstates 16 actions 4 width 18 frac 8\n1 2 3\n");
  EXPECT_DEATH(load_q_table(truncated, p), "truncated");
}

TEST(TableIo, RejectsOutOfRangeValues) {
  env::GridWorld g(grid4());
  PipelineConfig c;
  Engine p(g, c);
  std::stringstream bad("QTACCEL-QTABLE v1\n"
                        "states 16 actions 4 width 18 frac 8\n"
                        "9999999 0 0 0\n");
  EXPECT_DEATH(load_q_table(bad, p), "outside the fixed-point range");
}

}  // namespace
}  // namespace qta::qtaccel

// Assertion macro for the fuzz harnesses: no gtest, no logging — a
// failed property traps so both libFuzzer and the corpus-replay driver
// report the input as a crash.
#pragma once

#include <cstdlib>

#define FUZZ_ASSERT(cond)        \
  do {                           \
    if (!(cond)) std::abort();   \
  } while (0)

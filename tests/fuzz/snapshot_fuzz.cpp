// libFuzzer harness for the snapshot parsers (runtime/snapshot.h):
// feeds arbitrary bytes to try_load_snapshot AND
// try_apply_snapshot_delta — the non-aborting twins of the loaders,
// added precisely so untrusted streams have fuzzable entry points.
// Covers the v2 QTACCEL-SNAPSHOT text parser, the v3 binary parser
// (full images and dirty-row deltas, kind byte, end sentinel), the v1
// QTACCEL-QTABLE warm-start path, and the magic-sniffing router
// between them. Properties checked on every input:
//
//   1. Neither entry point crashes or aborts, whatever the bytes; a
//      failed load/apply always reports why.
//   2. A successfully loaded full image is save/reload-stable: saving
//      the loaded engine and loading that into a second engine
//      reproduces the exact same snapshot text (the bit-exact
//      pause/resume contract).
//   3. A successfully applied delta is deterministic: replaying the
//      same bytes onto the same base yields byte-identical v2 text.
//
// Built two ways (tests/fuzz/CMakeLists.txt): as a real fuzzer under
// clang with -fsanitize=fuzzer (QTACCEL_FUZZERS=ON), and linked with
// replay_main.cpp into a plain executable that replays the checked-in
// corpus as a ctest in every build.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "env/grid_world.h"
#include "fuzz_assert.h"
#include "qtaccel/config.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"

namespace {

// Small fixed geometry keeps per-input engine construction cheap; the
// fingerprint check rejects snapshots for any other shape, which is
// itself a parser path worth fuzzing.
const qta::env::GridWorld& world() {
  static const qta::env::GridWorld w([] {
    qta::env::GridWorldConfig c;
    c.width = 4;
    c.height = 4;
    c.num_actions = 4;
    return c;
  }());
  return w;
}

qta::qtaccel::PipelineConfig config() {
  qta::qtaccel::PipelineConfig c;
  c.seed = 3;
  c.max_episode_length = 64;
  return c;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);

  // Same bytes through the delta grammar, replayed onto a fresh
  // engine's state as the base image. Deltas that parse must apply
  // deterministically; everything else must fail with a message.
  {
    qta::qtaccel::MachineState base =
        qta::runtime::Engine(world(), config()).save_state();
    std::istringstream is(input);
    std::string error;
    if (qta::runtime::try_apply_snapshot_delta(is, config(), world(), base,
                                               &error)) {
      std::ostringstream first_text;
      qta::runtime::write_snapshot(first_text, config(), world(), base);

      qta::qtaccel::MachineState base2 =
          qta::runtime::Engine(world(), config()).save_state();
      std::istringstream is2(input);
      FUZZ_ASSERT(qta::runtime::try_apply_snapshot_delta(
          is2, config(), world(), base2, &error));
      std::ostringstream second_text;
      qta::runtime::write_snapshot(second_text, config(), world(), base2);
      FUZZ_ASSERT(second_text.str() == first_text.str());
    } else {
      FUZZ_ASSERT(!error.empty());
    }
  }

  qta::runtime::Engine engine(world(), config());
  std::istringstream is(input);

  std::string error;
  if (!qta::runtime::try_load_snapshot(engine, is, &error)) {
    FUZZ_ASSERT(!error.empty());
    return 0;
  }

  // Accepted input: the loaded state must round-trip bit-exactly.
  std::ostringstream saved;
  qta::runtime::save_snapshot(engine, saved);

  qta::runtime::Engine second(world(), config());
  std::istringstream again(saved.str());
  FUZZ_ASSERT(qta::runtime::try_load_snapshot(second, again, &error));

  std::ostringstream resaved;
  qta::runtime::save_snapshot(second, resaved);
  FUZZ_ASSERT(resaved.str() == saved.str());
  return 0;
}

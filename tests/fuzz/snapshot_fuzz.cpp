// libFuzzer harness for the snapshot parser (runtime/snapshot.h): feeds
// arbitrary bytes to try_load_snapshot — the non-aborting twin of
// load_snapshot, added precisely so untrusted streams have a fuzzable
// entry point. Covers the v2 QTACCEL-SNAPSHOT parser, the v1
// QTACCEL-QTABLE warm-start path, and the magic-sniffing router between
// them. Properties checked on every input:
//
//   1. try_load_snapshot never crashes and never aborts, whatever the
//      bytes; a failed load always reports why.
//   2. A successful load is save/reload-stable: saving the loaded
//      engine and loading that into a second engine reproduces the
//      exact same snapshot text (the bit-exact pause/resume contract).
//
// Built two ways (tests/fuzz/CMakeLists.txt): as a real fuzzer under
// clang with -fsanitize=fuzzer (QTACCEL_FUZZERS=ON), and linked with
// replay_main.cpp into a plain executable that replays the checked-in
// corpus as a ctest in every build.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "env/grid_world.h"
#include "fuzz_assert.h"
#include "qtaccel/config.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"

namespace {

// Small fixed geometry keeps per-input engine construction cheap; the
// fingerprint check rejects snapshots for any other shape, which is
// itself a parser path worth fuzzing.
const qta::env::GridWorld& world() {
  static const qta::env::GridWorld w([] {
    qta::env::GridWorldConfig c;
    c.width = 4;
    c.height = 4;
    c.num_actions = 4;
    return c;
  }());
  return w;
}

qta::qtaccel::PipelineConfig config() {
  qta::qtaccel::PipelineConfig c;
  c.seed = 3;
  c.max_episode_length = 64;
  return c;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  qta::runtime::Engine engine(world(), config());
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));

  std::string error;
  if (!qta::runtime::try_load_snapshot(engine, is, &error)) {
    FUZZ_ASSERT(!error.empty());
    return 0;
  }

  // Accepted input: the loaded state must round-trip bit-exactly.
  std::ostringstream saved;
  qta::runtime::save_snapshot(engine, saved);

  qta::runtime::Engine second(world(), config());
  std::istringstream again(saved.str());
  FUZZ_ASSERT(qta::runtime::try_load_snapshot(second, again, &error));

  std::ostringstream resaved;
  qta::runtime::save_snapshot(second, resaved);
  FUZZ_ASSERT(resaved.str() == saved.str());
  return 0;
}

// Corpus-replay driver: links against a fuzz harness's
// LLVMFuzzerTestOneInput and feeds it every file in the corpus
// directories/files named on the command line. This makes the
// checked-in corpora a plain ctest in EVERY build configuration —
// including GCC builds, which have no libFuzzer — so a parser
// regression on a known-interesting input fails CI everywhere, not
// just in the clang fuzz-smoke job.
//
// Exits 1 when no inputs were found: an empty corpus run would
// otherwise pass vacuously (e.g. after a bad path rename).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path p = argv[i];
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (fs::is_regular_file(p)) {
      inputs.push_back(p);
    } else {
      std::fprintf(stderr, "replay: no such input '%s'\n", argv[i]);
      return 1;
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "replay: no corpus inputs found\n");
    return 1;
  }
  std::sort(inputs.begin(), inputs.end());

  for (const auto& p : inputs) {
    std::ifstream is(p, std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "replay: cannot read '%s'\n", p.c_str());
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(is)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  }
  std::printf("replayed %zu corpus input(s)\n", inputs.size());
  return 0;
}

// libFuzzer harness for the QTSERVE-WIRE payload codecs
// (serve/protocol.h). Properties checked on every input:
//
//   1. decode_request/decode_response never crash, whatever the bytes;
//      a failed decode always reports why.
//   2. A successful decode re-encodes to a canonical payload that is a
//      fixed point: decode(encode(decode(p))) round-trips bit-exactly.
//      (encode(decode(p)) need not equal p — decoders deliberately
//      ignore unknown trailing bytes, that is the versioning policy.)
//   3. unframe() consumes a hostile stream buffer without crashing,
//      reading past the end, or spinning forever.
//   4. frame()/unframe() are inverses for any payload.
//
// Built two ways (tests/fuzz/CMakeLists.txt): as a real fuzzer under
// clang with -fsanitize=fuzzer (QTACCEL_FUZZERS=ON), and linked with
// replay_main.cpp into a plain executable that replays the checked-in
// corpus as a ctest in every build.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz_assert.h"
#include "serve/protocol.h"

namespace {

void check_request_roundtrip(std::string_view payload) {
  std::string error;
  const auto req = qta::serve::decode_request(payload, &error);
  if (!req.has_value()) {
    FUZZ_ASSERT(!error.empty());
    return;
  }
  const std::string canon = qta::serve::encode_request(*req);
  const auto again = qta::serve::decode_request(canon, &error);
  FUZZ_ASSERT(again.has_value());
  FUZZ_ASSERT(qta::serve::encode_request(*again) == canon);
}

void check_response_roundtrip(std::string_view payload) {
  std::string error;
  const auto resp = qta::serve::decode_response(payload, &error);
  if (!resp.has_value()) {
    FUZZ_ASSERT(!error.empty());
    return;
  }
  const std::string canon = qta::serve::encode_response(*resp);
  const auto again = qta::serve::decode_response(canon, &error);
  FUZZ_ASSERT(again.has_value());
  FUZZ_ASSERT(qta::serve::encode_response(*again) == canon);
}

void check_stream_reassembly(std::string_view payload) {
  // Treat the raw bytes as a transport buffer: unframe() must make
  // strict progress on every extracted frame and stop cleanly on a
  // partial tail or an oversized length prefix.
  std::string buffer(payload);
  bool oversized = false;
  while (true) {
    const std::size_t before = buffer.size();
    const auto one = qta::serve::unframe(buffer, &oversized);
    if (!one.has_value()) break;
    FUZZ_ASSERT(buffer.size() < before);
    std::string ignored;
    (void)qta::serve::decode_request(*one, &ignored);
  }
  if (oversized) return;  // poisoned peer: transport drops the stream

  // frame() round-trips any payload through one clean unframe().
  std::string reframed = qta::serve::frame(payload);
  const auto back = qta::serve::unframe(reframed, &oversized);
  FUZZ_ASSERT(back.has_value() && !oversized);
  FUZZ_ASSERT(*back == payload);
  FUZZ_ASSERT(reframed.empty());
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view payload(reinterpret_cast<const char*>(data), size);
  check_request_roundtrip(payload);
  check_response_roundtrip(payload);
  check_stream_reassembly(payload);
  return 0;
}

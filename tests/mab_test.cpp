#include <gtest/gtest.h>

#include "env/bandit.h"
#include "qtaccel/mab_accelerator.h"

namespace qta::qtaccel {
namespace {

TEST(MabAccelerator, EpsilonGreedyFindsBestArm) {
  auto bandit = env::MultiArmedBandit::evenly_spaced(5, 0.2, 1);
  MabConfig c;
  c.policy = MabConfig::Policy::kEpsilonGreedy;
  c.epsilon = 0.1;
  c.seed = 1;
  MabAccelerator acc(bandit, c);
  acc.run(30000);
  // The best arm (index 4) gets the lion's share of pulls.
  EXPECT_GT(acc.pull_counts()[4], 30000u / 2);
  // And its value estimate is the largest.
  for (unsigned m = 0; m < 4; ++m) {
    EXPECT_GT(acc.q_value(4), acc.q_value(m));
  }
}

TEST(MabAccelerator, EpsilonGreedyFindsBestArmInTheMiddle) {
  // Regression: the exploration index must come from the LOW bits of the
  // draw — the epsilon comparison conditions the high bits, and scaling
  // the full conditioned word always picked the LAST arm, so only
  // best-arm-last instances could be learned.
  env::MultiArmedBandit bandit(
      {{0.1, 0.2}, {0.9, 0.2}, {0.2, 0.2}, {0.3, 0.2}, {0.15, 0.2}}, 11);
  MabConfig c;
  c.policy = MabConfig::Policy::kEpsilonGreedy;
  c.epsilon = 0.1;
  c.seed = 11;
  MabAccelerator acc(bandit, c);
  acc.run(30000);
  EXPECT_GT(acc.pull_counts()[1], 30000u / 2);
  // Exploration actually touches every arm.
  for (unsigned m = 0; m < 5; ++m) {
    EXPECT_GT(acc.pull_counts()[m], 100u) << "arm " << m;
  }
}

TEST(MabAccelerator, EpsilonGreedyOneSamplePerCycle) {
  auto bandit = env::MultiArmedBandit::evenly_spaced(4, 0.2, 2);
  MabConfig c;
  c.policy = MabConfig::Policy::kEpsilonGreedy;
  c.seed = 2;
  MabAccelerator acc(bandit, c);
  acc.run(10000);
  EXPECT_DOUBLE_EQ(acc.stats().samples_per_cycle(), 1.0);
  EXPECT_EQ(acc.stats().selection_stall_cycles, 0u);
}

TEST(MabAccelerator, Exp3PaysBinarySearchStalls) {
  auto bandit = env::MultiArmedBandit::evenly_spaced(8, 0.2, 3);
  MabConfig c;
  c.policy = MabConfig::Policy::kExp3;
  c.seed = 3;
  MabAccelerator acc(bandit, c);
  acc.run(10000);
  // 8 arms: 1 + ceil(log2 8) = 4 cycles per sample.
  EXPECT_DOUBLE_EQ(acc.stats().samples_per_cycle(), 0.25);
  EXPECT_EQ(acc.stats().selection_stall_cycles, 3u * 10000u);
}

TEST(MabAccelerator, Exp3SublinearRegret) {
  auto bandit = env::MultiArmedBandit::evenly_spaced(4, 0.2, 4);
  MabConfig c;
  c.policy = MabConfig::Policy::kExp3;
  c.exp3_gamma = 0.1;
  c.reward_lo = -0.5;
  c.reward_hi = 1.5;
  c.seed = 4;
  MabAccelerator acc(bandit, c);
  acc.run(30000);
  // Uniform play would pay ~0.5 regret per pull on this instance.
  EXPECT_LT(acc.cumulative_regret(), 30000 * 0.3);
}

TEST(MabAccelerator, LutAndExactExpAgreeOnRegretScale) {
  MabConfig lut_cfg;
  lut_cfg.policy = MabConfig::Policy::kExp3;
  lut_cfg.use_exp_lut = true;
  lut_cfg.seed = 5;
  lut_cfg.reward_lo = -0.5;
  lut_cfg.reward_hi = 1.5;
  MabConfig exact_cfg = lut_cfg;
  exact_cfg.use_exp_lut = false;

  auto bandit_a = env::MultiArmedBandit::evenly_spaced(4, 0.2, 6);
  auto bandit_b = env::MultiArmedBandit::evenly_spaced(4, 0.2, 6);
  MabAccelerator a(bandit_a, lut_cfg), b(bandit_b, exact_cfg);
  a.run(20000);
  b.run(20000);
  // The quantized LUT must not wreck learning: same order of magnitude.
  EXPECT_LT(a.cumulative_regret(), 2.5 * b.cumulative_regret() + 200.0);
}

TEST(MabAccelerator, EpsilonGreedyRegretBeatsUniform) {
  auto bandit = env::MultiArmedBandit::evenly_spaced(5, 0.3, 7);
  MabConfig c;
  c.policy = MabConfig::Policy::kEpsilonGreedy;
  c.epsilon = 0.1;
  c.alpha = 0.05;
  c.seed = 7;
  MabAccelerator acc(bandit, c);
  acc.run(30000);
  // Uniform play pays 0.5/pull; epsilon-greedy should approach
  // eps * 0.5 = 0.05/pull.
  EXPECT_LT(acc.cumulative_regret(), 30000 * 0.15);
}

TEST(MabAccelerator, ValuesStayInFixedPointRange) {
  env::MultiArmedBandit bandit({{400.0, 10.0}, {-400.0, 10.0}}, 8);
  MabConfig c;
  c.policy = MabConfig::Policy::kEpsilonGreedy;
  c.alpha = 0.5;
  c.seed = 8;
  MabAccelerator acc(bandit, c);
  acc.run(5000);
  for (unsigned m = 0; m < 2; ++m) {
    EXPECT_LE(acc.q_value(m), c.q_fmt.max_value());
    EXPECT_GE(acc.q_value(m), c.q_fmt.min_value());
  }
}

TEST(MabAccelerator, Ucb1SweepsThenConverges) {
  auto bandit = env::MultiArmedBandit::evenly_spaced(5, 0.2, 12);
  MabConfig c;
  c.policy = MabConfig::Policy::kUcb1;
  c.seed = 12;
  MabAccelerator acc(bandit, c);
  acc.run(30000);
  // Every arm sampled, best arm dominates, regret well under
  // epsilon-greedy's floor of eps * mean-gap.
  for (unsigned m = 0; m < 5; ++m) EXPECT_GT(acc.pull_counts()[m], 0u);
  EXPECT_GT(acc.pull_counts()[4], 30000u * 3 / 4);
  EXPECT_LT(acc.cumulative_regret(), 30000 * 0.05);
  EXPECT_DOUBLE_EQ(acc.stats().samples_per_cycle(), 1.0);
}

TEST(MabAccelerator, Ucb1BeatsEpsilonGreedyOnRegret) {
  auto bandit_a = env::MultiArmedBandit::evenly_spaced(5, 0.3, 13);
  auto bandit_b = env::MultiArmedBandit::evenly_spaced(5, 0.3, 13);
  MabConfig ucb;
  ucb.policy = MabConfig::Policy::kUcb1;
  ucb.seed = 13;
  MabConfig eps;
  eps.policy = MabConfig::Policy::kEpsilonGreedy;
  eps.epsilon = 0.1;
  eps.seed = 13;
  MabAccelerator a(bandit_a, ucb), b(bandit_b, eps);
  a.run(40000);
  b.run(40000);
  // Epsilon-greedy pays a linear exploration tax; UCB1's is logarithmic.
  EXPECT_LT(a.cumulative_regret(), b.cumulative_regret());
}

TEST(MabAccelerator, Ucb1SampleAverageEstimates) {
  env::MultiArmedBandit bandit({{2.0, 0.0}, {5.0, 0.0}}, 14);
  MabConfig c;
  c.policy = MabConfig::Policy::kUcb1;
  c.seed = 14;
  MabAccelerator acc(bandit, c);
  acc.run(5000);
  // Noiseless rewards: estimates converge to the exact means.
  EXPECT_NEAR(acc.q_value(0), 2.0, 0.05);
  EXPECT_NEAR(acc.q_value(1), 5.0, 0.05);
}

TEST(MabAccelerator, Ucb1ResourcesIncludeMathUnits) {
  auto bandit = env::MultiArmedBandit::evenly_spaced(5, 0.2, 15);
  MabConfig c;
  c.policy = MabConfig::Policy::kUcb1;
  MabAccelerator acc(bandit, c);
  const auto ledger = acc.resources();
  bool has_log_lut = false;
  for (const auto& m : ledger.memories()) {
    if (m.name == "log2_lut") has_log_lut = true;
  }
  EXPECT_TRUE(has_log_lut);
  EXPECT_GT(ledger.dsp(), 2u);
  EXPECT_GT(ledger.luts(), 5u * 100u);  // per-arm divider/sqrt arrays
}

TEST(MabAccelerator, ResourceInventory) {
  auto bandit = env::MultiArmedBandit::evenly_spaced(5, 0.2, 9);
  MabConfig eps;
  eps.policy = MabConfig::Policy::kEpsilonGreedy;
  MabConfig exp3;
  exp3.policy = MabConfig::Policy::kExp3;
  MabAccelerator a(bandit, eps);
  MabAccelerator b(bandit, exp3);
  EXPECT_EQ(a.resources().dsp(), 2u);
  EXPECT_EQ(b.resources().dsp(), 3u);
  EXPECT_GT(b.resources().memory_bits(), a.resources().memory_bits());
}

}  // namespace
}  // namespace qta::qtaccel

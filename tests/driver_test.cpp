#include <gtest/gtest.h>

#include <sstream>

#include "driver/qtaccel_device.h"
#include "driver/register_map.h"
#include "env/grid_world.h"
#include "qtaccel/golden_model.h"
#include "rng/xoshiro.h"

namespace qta::driver {
namespace {

constexpr auto off = [](Reg r) { return static_cast<std::uint32_t>(r); };

env::GridWorldConfig grid4() {
  env::GridWorldConfig c;
  c.width = 4;
  c.height = 4;
  c.num_actions = 4;
  return c;
}

TEST(RegisterMap, CoefficientRoundTrip) {
  for (double v : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(unpack_coefficient(pack_coefficient(v)), v, 1e-4) << v;
  }
  EXPECT_DEATH(pack_coefficient(1.5), "0, 1");
}

TEST(RegisterMap, Validity) {
  EXPECT_TRUE(is_valid_register(off(Reg::kId)));
  EXPECT_TRUE(is_valid_register(off(Reg::kQmaxData)));
  EXPECT_TRUE(is_valid_register(off(Reg::kSaturationCount)));
  EXPECT_TRUE(is_valid_register(off(Reg::kBackend)));
  EXPECT_FALSE(is_valid_register(off(Reg::kBackend) + 4));
  EXPECT_FALSE(is_valid_register(2));  // unaligned
}

TEST(RegisterMap, Writability) {
  EXPECT_FALSE(is_writable_register(off(Reg::kId)));
  EXPECT_FALSE(is_writable_register(off(Reg::kStatus)));
  EXPECT_FALSE(is_writable_register(off(Reg::kSampleCountLo)));
  EXPECT_TRUE(is_writable_register(off(Reg::kAlpha)));
  EXPECT_TRUE(is_writable_register(off(Reg::kCtrl)));
  EXPECT_TRUE(is_writable_register(off(Reg::kTableAddr)));
  EXPECT_TRUE(is_writable_register(off(Reg::kBackend)));
}

TEST(Device, IdentifiesItself) {
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  EXPECT_EQ(dev.read_csr(off(Reg::kId)), kMagic);
  EXPECT_EQ(dev.read_csr(off(Reg::kVersion)), kVersionWord);
  EXPECT_EQ(dev.read_csr(off(Reg::kStatus)), 0u);
}

TEST(Device, ConfigReadback) {
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  dev.write_csr(off(Reg::kAlpha), pack_coefficient(0.25));
  dev.write_csr(off(Reg::kGamma), pack_coefficient(0.75));
  dev.write_csr(off(Reg::kSeedLo), 0xdeadbeef);
  EXPECT_EQ(dev.read_csr(off(Reg::kAlpha)), pack_coefficient(0.25));
  EXPECT_EQ(dev.read_csr(off(Reg::kGamma)), pack_coefficient(0.75));
  EXPECT_EQ(dev.read_csr(off(Reg::kSeedLo)), 0xdeadbeefu);
}

TEST(Device, RunsToCompletion) {
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  dev.write_csr(off(Reg::kSamplesTargetLo), 5000);
  dev.write_csr(off(Reg::kMaxEpisodeLen), 128);
  dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  EXPECT_TRUE(dev.busy());
  EXPECT_FALSE(dev.done());

  std::uint64_t guard = 0;
  while (dev.busy()) {
    dev.advance(1000);
    ASSERT_LT(++guard, 100u);
  }
  EXPECT_TRUE(dev.done());
  const std::uint64_t samples =
      dev.read_csr(off(Reg::kSampleCountLo)) |
      (static_cast<std::uint64_t>(dev.read_csr(off(Reg::kSampleCountHi)))
       << 32);
  EXPECT_GE(samples, 5000u);
  EXPECT_GT(dev.read_csr(off(Reg::kEpisodeCountLo)), 0u);
  EXPECT_GT(dev.read_csr(off(Reg::kCycleCountLo)), samples - 10);
}

TEST(Device, MatchesGoldenModel) {
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  dev.write_csr(off(Reg::kAlpha), pack_coefficient(0.25));
  dev.write_csr(off(Reg::kGamma), pack_coefficient(0.875));
  dev.write_csr(off(Reg::kSeedLo), 77);
  dev.write_csr(off(Reg::kMaxEpisodeLen), 128);
  dev.write_csr(off(Reg::kSamplesTargetLo), 20000);
  dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  while (dev.busy()) dev.advance(10000);

  qtaccel::PipelineConfig c;
  c.alpha = unpack_coefficient(pack_coefficient(0.25));
  c.gamma = unpack_coefficient(pack_coefficient(0.875));
  c.seed = 77;
  c.max_episode_length = 128;
  qtaccel::GoldenModel golden(g, c);
  golden.run(dev.engine()->stats().iterations);

  for (StateId s = 0; s < g.num_states(); ++s) {
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      ASSERT_EQ(golden.q_raw(s, a), dev.engine()->q_raw(s, a));
    }
  }
}

TEST(Device, TableWindowReadback) {
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  dev.write_csr(off(Reg::kSamplesTargetLo), 20000);
  dev.write_csr(off(Reg::kMaxEpisodeLen), 128);
  dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  while (dev.busy()) dev.advance(10000);

  // Read Q((2,3), right) through the CSR window and compare with the
  // direct accessor; (2,3)'s right neighbour is the goal.
  const StateId s = g.state_of(2, 3);
  const ActionId a = 2;
  dev.write_csr(off(Reg::kTableAddr), (s << 2) | a);
  const auto word = dev.read_csr(off(Reg::kTableData));
  // 18-bit sign extension.
  auto v = static_cast<std::int64_t>(word & 0x3FFFF);
  if (v & (1 << 17)) v |= ~0x3FFFFll;
  EXPECT_EQ(v, dev.engine()->q_raw(s, a));
  EXPECT_GT(dev.q_value(s, a), 100.0);

  // Qmax window for the same state.
  const auto qmax_word = dev.read_csr(off(Reg::kQmaxData));
  const auto entry = dev.engine()->qmax_entry(s);
  EXPECT_EQ(qmax_word >> 18, entry.action);
}

TEST(Device, PerformanceCountersExposed) {
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  // Counters read 0 before any run.
  EXPECT_EQ(dev.read_csr(off(Reg::kFwdQsaCount)), 0u);
  dev.write_csr(off(Reg::kSamplesTargetLo), 30000);
  dev.write_csr(off(Reg::kMaxEpisodeLen), 128);
  dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  while (dev.busy()) dev.advance(10000);
  // A 4x4 world forces plenty of same-row hazards.
  EXPECT_GT(dev.read_csr(off(Reg::kFwdQsaCount)), 0u);
  EXPECT_EQ(dev.read_csr(off(Reg::kStallCount)), 0u);  // forwarding mode
  EXPECT_EQ(dev.read_csr(off(Reg::kFwdQsaCount)),
            dev.engine()->stats().fwd_q_sa);
  EXPECT_FALSE(is_writable_register(off(Reg::kFwdQmaxCount)));
}

TEST(Device, ConfigLockedWhileBusy) {
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  dev.write_csr(off(Reg::kSamplesTargetLo), 100000);
  dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  EXPECT_TRUE(dev.busy());
  dev.write_csr(off(Reg::kAlpha), pack_coefficient(0.5));  // rejected
  EXPECT_NE(dev.read_csr(off(Reg::kStatus)) & kStatusCfgError, 0u);
  EXPECT_NE(dev.read_csr(off(Reg::kAlpha)), pack_coefficient(0.5));
  dev.write_csr(off(Reg::kCtrl), kCtrlReset);
  EXPECT_FALSE(dev.busy());
  EXPECT_EQ(dev.read_csr(off(Reg::kStatus)), 0u);
}

TEST(Device, BadConfigRaisesErrorInsteadOfStarting) {
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  dev.write_csr(off(Reg::kAlpha), pack_coefficient(0.0));  // alpha == 0
  dev.write_csr(off(Reg::kSamplesTargetLo), 100);
  dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  EXPECT_FALSE(dev.busy());
  EXPECT_NE(dev.read_csr(off(Reg::kStatus)) & kStatusCfgError, 0u);
}

TEST(Device, ZeroTargetIsConfigError) {
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  dev.write_csr(off(Reg::kCtrl), kCtrlStart);  // target still 0
  EXPECT_FALSE(dev.busy());
  EXPECT_NE(dev.read_csr(off(Reg::kStatus)) & kStatusCfgError, 0u);
}

TEST(Device, SarsaSelectable) {
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  dev.write_csr(off(Reg::kAlgorithm), 1);  // SARSA
  dev.write_csr(off(Reg::kEpsilonThresh), 52429);  // eps = 0.2
  dev.write_csr(off(Reg::kMaxEpisodeLen), 128);
  dev.write_csr(off(Reg::kSamplesTargetLo), 5000);
  dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  while (dev.busy()) dev.advance(10000);
  EXPECT_TRUE(dev.done());
  EXPECT_EQ(dev.engine()->config().algorithm,
            qtaccel::Algorithm::kSarsa);
  EXPECT_NEAR(dev.engine()->config().epsilon, 0.2, 1e-4);
}

TEST(Device, AllFourAlgorithmsSelectable) {
  env::GridWorld g(grid4());
  const qtaccel::Algorithm expect[] = {
      qtaccel::Algorithm::kQLearning, qtaccel::Algorithm::kSarsa,
      qtaccel::Algorithm::kExpectedSarsa, qtaccel::Algorithm::kDoubleQ};
  for (std::uint32_t code = 0; code < 4; ++code) {
    QtAccelDevice dev(g);
    dev.write_csr(off(Reg::kAlgorithm), code);
    dev.write_csr(off(Reg::kMaxEpisodeLen), 128);
    dev.write_csr(off(Reg::kSamplesTargetLo), 2000);
    dev.write_csr(off(Reg::kCtrl), kCtrlStart);
    while (dev.busy()) dev.advance(10000);
    EXPECT_TRUE(dev.done()) << "algorithm code " << code;
    EXPECT_EQ(dev.engine()->config().algorithm, expect[code]);
  }
  // Code 4 is a config error.
  QtAccelDevice dev(g);
  dev.write_csr(off(Reg::kAlgorithm), 4);
  dev.write_csr(off(Reg::kSamplesTargetLo), 100);
  dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  EXPECT_FALSE(dev.busy());
  EXPECT_NE(dev.read_csr(off(Reg::kStatus)) & kStatusCfgError, 0u);
}

TEST(Device, BusErrorsAbort) {
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  EXPECT_DEATH(dev.read_csr(0x1000), "bad offset");
  EXPECT_DEATH(dev.write_csr(off(Reg::kStatus), 1), "read-only");
}

TEST(Device, CsrFuzzNeverCorruptsTheDevice) {
  // Random (valid-offset) traffic: reads everywhere, writes to writable
  // registers, interleaved with starts/resets/advances. The device must
  // never abort and must still complete a clean run afterwards.
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  rng::Xoshiro256 rng(99);
  const std::uint32_t max_off = off(Reg::kBackend);
  for (int i = 0; i < 5000; ++i) {
    const auto offset =
        static_cast<std::uint32_t>(rng.below(max_off / 4 + 1)) * 4;
    switch (rng.below(4)) {
      case 0:
        (void)dev.read_csr(offset);
        break;
      case 1:
        if (is_writable_register(offset) &&
            offset != off(Reg::kCtrl)) {
          // Keep coefficient fields in-range; others take anything.
          const bool coeff = offset == off(Reg::kAlpha) ||
                             offset == off(Reg::kGamma);
          dev.write_csr(offset,
                        coeff ? pack_coefficient(rng.uniform(0.0, 1.0))
                              : static_cast<std::uint32_t>(rng.next()));
        }
        break;
      case 2:
        dev.write_csr(off(Reg::kCtrl),
                      rng.bernoulli(0.5) ? kCtrlStart : kCtrlReset);
        break;
      default:
        dev.advance(rng.below(300));
        break;
    }
  }
  // Recover to a known-good configuration and run to completion.
  dev.write_csr(off(Reg::kCtrl), kCtrlReset);
  dev.write_csr(off(Reg::kAlgorithm), 0);
  dev.write_csr(off(Reg::kBackend), 0);
  dev.write_csr(off(Reg::kAlpha), pack_coefficient(0.2));
  dev.write_csr(off(Reg::kGamma), pack_coefficient(0.9));
  dev.write_csr(off(Reg::kEpsilonThresh), 58982);
  dev.write_csr(off(Reg::kMaxEpisodeLen), 128);
  dev.write_csr(off(Reg::kSamplesTargetLo), 2000);
  dev.write_csr(off(Reg::kSamplesTargetHi), 0);
  dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  ASSERT_TRUE(dev.busy());
  while (dev.busy()) dev.advance(10000);
  EXPECT_TRUE(dev.done());
}

TEST(Device, AdvanceWhileIdleIsNoop) {
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  dev.advance(100);
  EXPECT_EQ(dev.read_csr(off(Reg::kCycleCountLo)), 0u);
}

TEST(Device, FastBackendBatchesTheRunAndMatchesCycleBackend) {
  // BACKEND=1 selects the fast functional engine: no per-cycle clock, so
  // the first nonzero advance() retires the whole run. The retired table
  // must match the cycle-accurate device bit for bit.
  env::GridWorld g(grid4());
  QtAccelDevice cycle_dev(g);
  cycle_dev.write_csr(off(Reg::kMaxEpisodeLen), 128);
  cycle_dev.write_csr(off(Reg::kSamplesTargetLo), 8000);
  cycle_dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  while (cycle_dev.busy()) cycle_dev.advance(10000);

  QtAccelDevice fast_dev(g);
  fast_dev.write_csr(off(Reg::kBackend), 1);
  fast_dev.write_csr(off(Reg::kMaxEpisodeLen), 128);
  fast_dev.write_csr(off(Reg::kSamplesTargetLo), 8000);
  fast_dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  EXPECT_TRUE(fast_dev.busy());
  EXPECT_EQ(fast_dev.cycle_pipeline(), nullptr);
  fast_dev.advance(1);  // batch semantics: one call finishes the run
  EXPECT_FALSE(fast_dev.busy());
  EXPECT_TRUE(fast_dev.done());

  EXPECT_EQ(fast_dev.read_csr(off(Reg::kSampleCountLo)),
            cycle_dev.read_csr(off(Reg::kSampleCountLo)));
  EXPECT_EQ(fast_dev.read_csr(off(Reg::kEpisodeCountLo)),
            cycle_dev.read_csr(off(Reg::kEpisodeCountLo)));
  for (StateId s = 0; s < g.num_states(); ++s) {
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      ASSERT_EQ(fast_dev.engine()->q_raw(s, a),
                cycle_dev.engine()->q_raw(s, a));
    }
  }
}

TEST(Device, InvalidBackendCodeIsConfigError) {
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  dev.write_csr(off(Reg::kBackend), 2);
  dev.write_csr(off(Reg::kSamplesTargetLo), 100);
  dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  EXPECT_FALSE(dev.busy());
  EXPECT_NE(dev.read_csr(off(Reg::kStatus)) & kStatusCfgError, 0u);
}

TEST(Device, SnapshotDmaRoundTripResumesBitExactly) {
  // Host-side pause/resume through the snapshot DMA: run a device
  // partway, save, restore into a second device configured with the
  // same CSRs, and let both finish. save_snapshot quiesces (drains
  // in-flight work), which never changes what retires, so both devices
  // must converge on identical counters and tables.
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  dev.write_csr(off(Reg::kMaxEpisodeLen), 128);
  dev.write_csr(off(Reg::kSamplesTargetLo), 12000);
  dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  while (dev.busy() &&
         dev.read_csr(off(Reg::kSampleCountLo)) < 4000) {
    dev.advance(500);
  }
  std::stringstream snap;
  dev.save_snapshot(snap);
  EXPECT_TRUE(dev.busy());  // saving does not stop the machine

  QtAccelDevice resumed(g);
  resumed.write_csr(off(Reg::kMaxEpisodeLen), 128);
  resumed.write_csr(off(Reg::kSamplesTargetLo), 12000);
  resumed.load_snapshot(snap);  // START-with-state: no kCtrlStart needed
  EXPECT_TRUE(resumed.busy());
  EXPECT_GE(resumed.read_csr(off(Reg::kSampleCountLo)), 4000u);

  while (dev.busy()) dev.advance(10000);
  while (resumed.busy()) resumed.advance(10000);
  EXPECT_TRUE(dev.done());
  EXPECT_TRUE(resumed.done());
  EXPECT_EQ(dev.read_csr(off(Reg::kSampleCountLo)),
            resumed.read_csr(off(Reg::kSampleCountLo)));
  EXPECT_EQ(dev.read_csr(off(Reg::kEpisodeCountLo)),
            resumed.read_csr(off(Reg::kEpisodeCountLo)));
  for (StateId s = 0; s < g.num_states(); ++s) {
    for (ActionId a = 0; a < g.num_actions(); ++a) {
      ASSERT_EQ(dev.engine()->q_raw(s, a), resumed.engine()->q_raw(s, a));
    }
  }
}

TEST(Device, SnapshotDmaV3BinaryImageCarriesTheSameState) {
  // The DMA save path can emit either wire form; both images of the
  // same quiesced machine must restore to identical devices (the load
  // path sniffs the version, no CSR involved).
  env::GridWorld g(grid4());
  QtAccelDevice dev(g);
  dev.write_csr(off(Reg::kMaxEpisodeLen), 128);
  dev.write_csr(off(Reg::kSamplesTargetLo), 12000);
  dev.write_csr(off(Reg::kCtrl), kCtrlStart);
  while (dev.busy() && dev.read_csr(off(Reg::kSampleCountLo)) < 3000) {
    dev.advance(500);
  }

  std::stringstream v2, v3;
  dev.save_snapshot(v2);
  dev.save_snapshot(v3, runtime::SnapshotFormat::kV3Binary);
  EXPECT_NE(v3.str().find("QTACCEL-SNAPSHOT v3\n"), std::string::npos);
  EXPECT_NE(v2.str(), v3.str());

  QtAccelDevice from_v2(g), from_v3(g);
  for (QtAccelDevice* d : {&from_v2, &from_v3}) {
    d->write_csr(off(Reg::kMaxEpisodeLen), 128);
    d->write_csr(off(Reg::kSamplesTargetLo), 12000);
  }
  from_v2.load_snapshot(v2);
  from_v3.load_snapshot(v3);

  // Re-serializing both restored devices as text is a full-state
  // comparison in one byte-equality.
  std::stringstream text_v2, text_v3;
  from_v2.save_snapshot(text_v2);
  from_v3.save_snapshot(text_v3);
  EXPECT_EQ(text_v2.str(), text_v3.str());
}

}  // namespace
}  // namespace qta::driver

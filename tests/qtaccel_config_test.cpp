#include <gtest/gtest.h>

#include "env/grid_world.h"
#include "env/random_mdp.h"
#include "qtaccel/config.h"
#include "qtaccel/forwarding.h"
#include "qtaccel/qmax_unit.h"
#include "qtaccel/resources.h"

namespace qta::qtaccel {
namespace {

env::GridWorldConfig grid(unsigned w, unsigned h, unsigned a = 4) {
  env::GridWorldConfig c;
  c.width = w;
  c.height = h;
  c.num_actions = a;
  return c;
}

TEST(AddressMap, BitConcatenation) {
  env::GridWorld g(grid(16, 16, 8));
  const AddressMap m = make_address_map(g);
  EXPECT_EQ(m.state_bits, 8u);
  EXPECT_EQ(m.action_bits, 3u);
  EXPECT_EQ(m.q_addr(5, 3), (5u << 3) | 3u);
  EXPECT_EQ(m.depth(), 2048u);
}

TEST(AddressMap, RejectsNonPow2Actions) {
  env::RandomMdpConfig c;
  c.num_actions = 3;
  env::RandomMdp m(c);
  EXPECT_DEATH(make_address_map(m), "power of two");
}

TEST(Config, ValidationCatchesBadRates) {
  env::GridWorld g(grid(4, 4));
  PipelineConfig c;
  c.alpha = 0.0;
  EXPECT_DEATH(validate_config(c, g), "alpha");
  c = {};
  c.gamma = 1.0;
  EXPECT_DEATH(validate_config(c, g), "gamma");
  c = {};
  c.coeff_fmt = fixed::Format{18, 17};  // cannot represent 1.0
  EXPECT_DEATH(validate_config(c, g), "represent 1.0");
}

TEST(Config, EpsilonThreshold) {
  EXPECT_EQ(epsilon_threshold(0.0, 16), 65536u);
  EXPECT_EQ(epsilon_threshold(1.0, 16), 0u);
  EXPECT_EQ(epsilon_threshold(0.5, 16), 32768u);
  EXPECT_EQ(epsilon_threshold(0.1, 8), 230u);  // round(0.9 * 256)
}

TEST(Config, CoefficientsSumExactly) {
  PipelineConfig c;
  c.alpha = 0.3;
  const Coefficients k = make_coefficients(c);
  const fixed::raw_t one = fixed::from_double(1.0, c.coeff_fmt);
  EXPECT_EQ(k.alpha + k.one_minus_alpha, one);
}

TEST(Config, AlphaGammaThroughDspRounding) {
  PipelineConfig c;
  c.alpha = 0.5;
  c.gamma = 0.5;
  const Coefficients k = make_coefficients(c);
  EXPECT_EQ(k.alpha_gamma, fixed::from_double(0.25, c.coeff_fmt));
}

TEST(Forwarding, NewestFirstMatch) {
  WritebackQueue q;
  q.push({true, 10, 1, 0, 100});
  q.push({true, 20, 2, 0, 200});
  q.push({true, 10, 1, 0, 111});  // newer write to addr 10
  EXPECT_EQ(q.match_q(10).value(), 111);
  EXPECT_EQ(q.match_q(20).value(), 200);
  EXPECT_FALSE(q.match_q(30).has_value());
}

TEST(Forwarding, DepthIsThree) {
  WritebackQueue q;
  q.push({true, 1, 0, 0, 1});
  q.push({true, 2, 0, 0, 2});
  q.push({true, 3, 0, 0, 3});
  q.push({true, 4, 0, 0, 4});  // evicts addr 1
  EXPECT_FALSE(q.match_q(1).has_value());
  EXPECT_TRUE(q.match_q(2).has_value());
  EXPECT_EQ(q.occupancy(), 3u);
}

TEST(Forwarding, WindowRestriction) {
  WritebackQueue q;
  q.push({true, 1, 0, 0, 1});
  q.push({true, 2, 0, 0, 2});
  q.push({true, 3, 0, 0, 3});
  EXPECT_TRUE(q.match_q(1, 3).has_value());
  EXPECT_FALSE(q.match_q(1, 2).has_value());
  EXPECT_TRUE(q.match_q(3, 1).has_value());
}

TEST(Forwarding, QmaxCombineRaisesMonotonically) {
  WritebackQueue q;
  q.push({true, 0, 7, 1, 50});   // oldest
  q.push({true, 1, 7, 2, 80});
  q.push({true, 2, 7, 3, 60});   // newest but lower than 80
  fixed::raw_t v = 40;
  ActionId a = 0;
  q.combine_qmax(7, v, a);
  EXPECT_EQ(v, 80);
  EXPECT_EQ(a, 2u);
  // A stored value above all write-backs survives.
  v = 90;
  a = 5;
  q.combine_qmax(7, v, a);
  EXPECT_EQ(v, 90);
  EXPECT_EQ(a, 5u);
  // Other states are unaffected.
  v = 0;
  a = 9;
  q.combine_qmax(8, v, a);
  EXPECT_EQ(v, 0);
  EXPECT_EQ(a, 9u);
}

TEST(Forwarding, TiesKeepOlderHolder) {
  WritebackQueue q;
  q.push({true, 0, 7, 1, 50});
  q.push({true, 1, 7, 2, 50});  // equal, newer: must NOT take over
  fixed::raw_t v = 0;
  ActionId a = 0;
  q.combine_qmax(7, v, a);
  EXPECT_EQ(v, 50);
  EXPECT_EQ(a, 1u);
}

TEST(Forwarding, Clear) {
  WritebackQueue q;
  q.push({true, 1, 0, 0, 1});
  q.clear();
  EXPECT_EQ(q.occupancy(), 0u);
  EXPECT_FALSE(q.match_q(1).has_value());
}

TEST(QmaxUnit, PackUnpackRoundTrip) {
  QmaxUnit u(16, 18, 3);
  u.preset(5, {fixed::from_double(-3.5, {18, 8}), 6});
  const auto e = u.peek(5);
  EXPECT_EQ(e.value, fixed::from_double(-3.5, {18, 8}));
  EXPECT_EQ(e.action, 6u);
}

TEST(QmaxUnit, RaiseOnlyIncreases) {
  QmaxUnit u(4, 18, 2);
  u.bram().begin_cycle();
  EXPECT_TRUE(u.raise(1, 0, 2, 100));
  u.bram().clock_edge();
  u.bram().begin_cycle();
  EXPECT_FALSE(u.raise(1, 0, 3, 100));  // equal: no update
  u.bram().clock_edge();
  u.bram().begin_cycle();
  EXPECT_FALSE(u.raise(1, 0, 3, 50));   // lower: no update
  u.bram().clock_edge();
  EXPECT_EQ(u.peek(0).value, 100);
  EXPECT_EQ(u.peek(0).action, 2u);
}

TEST(QmaxUnit, NegativeValuesSignExtend) {
  QmaxUnit u(4, 18, 2);
  u.preset(2, {-12345, 1});
  EXPECT_EQ(u.peek(2).value, -12345);
}

TEST(QmaxUnit, PortAccountingOnSuppressedWrite) {
  QmaxUnit u(4, 18, 2);
  u.preset(0, {100, 0});
  u.bram().begin_cycle();
  u.raise(1, 0, 1, 50);  // suppressed, but the port is busy
  EXPECT_DEATH(u.raise(1, 0, 1, 200), "port used twice");
}

TEST(Resources, SinglePipelineInventory) {
  env::GridWorld g(grid(16, 16, 8));
  PipelineConfig c;
  const auto ledger = build_resources(g, c);
  EXPECT_EQ(ledger.dsp(), 4u);  // the paper's headline constant
  ASSERT_EQ(ledger.memories().size(), 3u);
  // Q and R: 256 * 8 entries of 18 bits; Qmax: 256 of 21.
  EXPECT_EQ(ledger.memories()[0].bits(), 2048u * 18);
  EXPECT_EQ(ledger.memories()[1].bits(), 2048u * 18);
  EXPECT_EQ(ledger.memories()[2].bits(), 256u * 21);
  EXPECT_GT(ledger.flip_flops(), 0u);
  EXPECT_GT(ledger.luts(), 0u);
}

TEST(Resources, DspCountIndependentOfStateSpace) {
  PipelineConfig c;
  env::GridWorld small(grid(8, 8, 8));
  env::GridWorld large(grid(512, 512, 8));
  EXPECT_EQ(build_resources(small, c).dsp(),
            build_resources(large, c).dsp());
}

TEST(Resources, SarsaUsesMoreRegisters) {
  env::GridWorld g(grid(16, 16, 8));
  PipelineConfig ql;
  PipelineConfig sarsa;
  sarsa.algorithm = Algorithm::kSarsa;
  EXPECT_GT(build_resources(g, sarsa).flip_flops(),
            build_resources(g, ql).flip_flops());
  // Same BRAM for both (Figure 4's single curve).
  EXPECT_EQ(build_resources(g, sarsa).memory_bits(),
            build_resources(g, ql).memory_bits());
}

TEST(Resources, ExactScanCostsLutsButNoQmaxTable) {
  env::GridWorld g(grid(16, 16, 8));
  PipelineConfig mono;
  PipelineConfig exact;
  exact.qmax = QmaxMode::kExactScan;
  EXPECT_GT(build_resources(g, exact).luts(),
            build_resources(g, mono).luts());
  EXPECT_LT(build_resources(g, exact).memory_bits(),
            build_resources(g, mono).memory_bits());
}

TEST(Resources, ExpectedSarsaCostsSixDspNoQmaxTable) {
  env::GridWorld g(grid(16, 16, 8));
  PipelineConfig c;
  c.algorithm = Algorithm::kExpectedSarsa;
  const auto ledger = build_resources(g, c);
  EXPECT_EQ(ledger.dsp(), 6u);
  for (const auto& m : ledger.memories()) {
    EXPECT_NE(m.name, "qmax_table");
  }
  // Adder + comparator trees cost extra LUTs over plain SARSA.
  PipelineConfig sarsa;
  sarsa.algorithm = Algorithm::kSarsa;
  EXPECT_GT(ledger.luts(), build_resources(g, sarsa).luts());
}

TEST(Resources, DoubleQDoublesQTablesOnly) {
  env::GridWorld g(grid(16, 16, 8));
  PipelineConfig c;
  c.algorithm = Algorithm::kDoubleQ;
  const auto ledger = build_resources(g, c);
  unsigned q_tables = 0;
  bool has_qmax = false;
  for (const auto& m : ledger.memories()) {
    if (m.name.rfind("q_table", 0) == 0) ++q_tables;
    if (m.name == "qmax_table") has_qmax = true;
  }
  EXPECT_EQ(q_tables, 2u);
  EXPECT_FALSE(has_qmax);
  EXPECT_EQ(ledger.dsp(), 4u);  // same datapath, just two tables
}

TEST(Resources, MultiPipelineScaling) {
  env::GridWorld g(grid(16, 16, 4));
  PipelineConfig c;
  const auto one = build_resources(g, c, 1);
  const auto shared = build_resources(g, c, 2, /*share_tables=*/true);
  const auto indep = build_resources(g, c, 4, /*share_tables=*/false);
  EXPECT_EQ(shared.dsp(), 2 * one.dsp());
  EXPECT_EQ(shared.memory_bits(), one.memory_bits());  // one bank
  EXPECT_EQ(indep.dsp(), 4 * one.dsp());
  EXPECT_EQ(indep.memory_bits(), 4 * one.memory_bits());
}

TEST(Resources, ProbabilityTableVariant) {
  env::GridWorld g(grid(16, 16, 8));
  PipelineConfig c;
  const auto base = build_resources(g, c);
  const auto prob = build_resources_with_probability_table(g, c);
  EXPECT_GT(prob.memory_bits(), base.memory_bits());
  EXPECT_EQ(prob.dsp(), base.dsp() + 1);
}

}  // namespace
}  // namespace qta::qtaccel

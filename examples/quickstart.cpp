// Quickstart: the paper's Figure 2 scenario end-to-end.
//
// A 16-cell grid world (4x4, four actions, goal in the far corner,
// rewards +/-255) is trained on the simulated QTAccel pipeline. The
// program prints the world, the learned greedy policy as an arrow map,
// the pipeline statistics (one sample per clock cycle), and the resource
// report on the paper's evaluation device.
//
// Usage: quickstart [--width=4] [--height=4] [--actions=4]
//                   [--samples=200000] [--sarsa] [--slip=0.0] [--seed=1]
//                   [--backend={cycle,fast,lanes}]
//                   [--save-snapshot=ckpt] [--resume=ckpt]
//                   [--trace=out.json] [--metrics] [--metrics-json=m.json]
//
// Observability (docs/observability.md): --trace writes a Perfetto /
// Chrome trace-event JSON of the run, --metrics prints the Prometheus
// text exposition, --metrics-json writes the same snapshot as JSON.
//
// Checkpointing (docs/runtime.md): --save-snapshot writes the full
// machine state after the run; --resume restores one before running
// (--samples is the TOTAL budget, counting resumed samples), so
// interrupting and resuming retires the same trace as one long run.
#include <iostream>
#include <memory>

#include "common/cli.h"
#include "common/json_writer.h"
#include "common/table_printer.h"
#include "device/resource_report.h"
#include "env/grid_world.h"
#include "env/value_iteration.h"
#include "qtaccel/resources.h"
#include "runtime/engine.h"
#include "runtime/snapshot.h"
#include "telemetry/pipeline_telemetry.h"

using namespace qta;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  env::GridWorldConfig gc;
  gc.width = static_cast<unsigned>(flags.get_int("width", 4));
  gc.height = static_cast<unsigned>(flags.get_int("height", 4));
  gc.num_actions = static_cast<unsigned>(flags.get_int("actions", 4));
  gc.slip_probability = flags.get_double("slip", 0.0);
  env::GridWorld world(gc);

  qtaccel::PipelineConfig config;
  config.algorithm = flags.get_bool("sarsa", false)
                         ? qtaccel::Algorithm::kSarsa
                         : qtaccel::Algorithm::kQLearning;
  config.alpha = flags.get_double("alpha", 0.2);
  config.gamma = flags.get_double("gamma", 0.9);
  config.epsilon = flags.get_double("epsilon", 0.2);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.max_episode_length = 512;
  config.backend = qtaccel::parse_backend(flags.get_string("backend", "fast"));
  const auto samples =
      static_cast<std::uint64_t>(flags.get_int("samples", 200000));

  std::cout << "QTAccel quickstart: " << gc.width << "x" << gc.height
            << " grid world (Figure 2), "
            << (config.algorithm == qtaccel::Algorithm::kSarsa ? "SARSA"
                                                               : "Q-Learning")
            << " [" << qtaccel::backend_name(config.backend) << " backend]"
            << "\n\nWorld ('G' = goal):\n";
  world.render(std::cout);

  const std::string trace_path = flags.get_string("trace", "");
  const bool want_metrics = flags.get_bool("metrics", false);
  const std::string metrics_json_path = flags.get_string("metrics-json", "");
  const std::string resume_path = flags.get_string("resume", "");
  const std::string snapshot_path = flags.get_string("save-snapshot", "");

  runtime::Engine pipeline(world, config);
  if (!resume_path.empty()) {
    runtime::load_snapshot_file(pipeline, resume_path);
    std::cout << "\nresumed from " << resume_path << " at "
              << pipeline.stats().samples << " samples\n";
  }

  telemetry::MetricsRegistry registry;
  telemetry::TraceSession trace;
  std::unique_ptr<telemetry::PipelineTelemetry> tel;
  if (!trace_path.empty() || want_metrics || !metrics_json_path.empty()) {
    tel = std::make_unique<telemetry::PipelineTelemetry>(
        qtaccel::make_run_labels(config), &registry,
        trace_path.empty() ? nullptr : &trace);
    pipeline.set_telemetry(tel.get());
  }

  pipeline.run_samples(samples);
  if (tel) tel->flush();
  if (!snapshot_path.empty()) {
    runtime::save_snapshot_file(pipeline, snapshot_path);
    std::cout << "\nwrote machine snapshot to " << snapshot_path << "\n";
  }

  // Greedy policy as an arrow map.
  const auto policy = pipeline.greedy_policy();
  std::cout << "\nLearned greedy policy:\n";
  world.render(std::cout, &policy);

  // Compare with the exact optimum.
  const auto optimal = env::value_iteration(world, config.gamma);
  int optimal_states = 0, total = 0;
  for (StateId s = 0; s < world.num_states(); ++s) {
    if (world.is_terminal(s) || world.is_obstacle(s)) continue;
    ++total;
    if (env::rollout_steps(world, policy, s, 1000) ==
        env::rollout_steps(world, optimal.policy, s, 1000)) {
      ++optimal_states;
    }
  }
  std::cout << "\nStates with optimal-length greedy paths: "
            << optimal_states << "/" << total << "\n";

  const auto& st = pipeline.stats();
  std::cout << "\nPipeline statistics:\n"
            << "  samples   : " << st.samples << "\n"
            << "  cycles    : " << st.cycles << "\n"
            << "  episodes  : " << st.episodes << "\n"
            << "  samples/cycle: " << format_double(st.samples_per_cycle(), 4)
            << "  (paper: one sample per clock)\n"
            << "  forwarding hits (Q(S,A)/Q(S',A')/Qmax): " << st.fwd_q_sa
            << "/" << st.fwd_q_next << "/" << st.fwd_qmax << "\n\n";

  const auto ledger = qtaccel::build_resources(world, config);
  device::make_report(device::xcvu13p(), ledger).print(std::cout);

  if (want_metrics) {
    std::cout << "\n# Telemetry (Prometheus text exposition)\n"
              << registry.prometheus_text();
  }
  if (!metrics_json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.key("metrics");
    registry.write_json(json);
    json.end_object();
    if (!json.write_file(metrics_json_path)) {
      std::cerr << "failed to write " << metrics_json_path << "\n";
      return 2;
    }
    std::cout << "\nwrote metrics snapshot to " << metrics_json_path << "\n";
  }
  if (!trace_path.empty()) {
    if (!trace.write_file(trace_path)) {
      std::cerr << "failed to write " << trace_path << "\n";
      return 2;
    }
    std::cout << "\nwrote trace (" << trace.event_count()
              << " events) to " << trace_path
              << " — open in ui.perfetto.dev\n";
  }

  for (const auto& unused : flags.unused()) {
    std::cerr << "warning: unused flag --" << unused << "\n";
  }
  return 0;
}

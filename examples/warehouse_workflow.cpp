// End-to-end workflow: define a warehouse floor as an ASCII map, train a
// picker robot on the accelerator, SAVE the learned Q-table, reload it
// into a fresh accelerator (e.g. after a power cycle, or onto a second
// robot) and keep training warm — the deploy loop a real user of the IP
// would run.
//
// Usage: warehouse_workflow [--samples=300000] [--seed=11]
//                           [--backend={cycle,fast,lanes}]
#include <iostream>
#include <sstream>

#include "common/cli.h"
#include "common/table_printer.h"
#include "env/grid_map.h"
#include "env/value_iteration.h"
#include "runtime/engine.h"
#include "runtime/table_io.h"

using namespace qta;

namespace {
// 16x8 warehouse: shelving racks (#) with aisles; dock at the right edge.
constexpr const char* kFloor =
    ". . . . . . . . . . . . . . . .\n"
    ". # # # . # # # . # # # . # # .\n"
    ". # # # . # # # . # # # . # # .\n"
    ". . . . . . . . . . . . . . . .\n"
    ". # # # . # # # . # # # . # # .\n"
    ". # # # . # # # . # # # . # # .\n"
    ". . . . . . . . . . . . . . . .\n"
    ". . . . . . . . . . . . . . . G\n";

int optimal_paths(const env::GridWorld& world,
                  const std::vector<ActionId>& policy,
                  const env::ValueIterationResult& vi, int& total) {
  int match = 0;
  total = 0;
  for (StateId s = 0; s < world.num_states(); ++s) {
    if (world.is_terminal(s) || world.is_obstacle(s)) continue;
    ++total;
    if (env::rollout_steps(world, policy, s, 2000) ==
        env::rollout_steps(world, vi.policy, s, 2000)) {
      ++match;
    }
  }
  return match;
}
}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const auto samples =
      static_cast<std::uint64_t>(flags.get_int("samples", 300000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));

  env::GridWorldConfig base;
  base.num_actions = 4;
  base.step_reward = -1.0;  // time is money on the floor
  base.goal_reward = 200.0;
  base.collision_penalty = 10.0;
  env::GridWorld floor(env::parse_grid_map(kFloor, base));
  const auto vi = env::value_iteration(floor, 0.9);

  std::cout << "Warehouse floor (" << floor.config().width << "x"
            << floor.config().height << ", 'G' = dock):\n";
  floor.render(std::cout);

  // --- train robot A ---
  qtaccel::PipelineConfig c;
  c.alpha = 0.2;
  c.gamma = 0.9;
  c.seed = seed;
  c.max_episode_length = 1024;
  c.backend = qtaccel::parse_backend(flags.get_string("backend", "fast"));
  runtime::Engine robot_a(floor, c);
  robot_a.run_samples(samples);

  int total = 0;
  const int a_opt = optimal_paths(floor, robot_a.greedy_policy(), vi,
                                  total);
  std::cout << "\nRobot A after " << samples << " samples: " << a_opt << "/"
            << total << " cells take the optimal route to the dock\n";

  // --- save / reload ---
  std::stringstream checkpoint;
  runtime::save_q_table(checkpoint, robot_a);
  std::cout << "Checkpoint size: " << checkpoint.str().size()
            << " bytes (raw fixed-point words, bit-exact)\n";

  qtaccel::PipelineConfig c2 = c;
  c2.seed = seed + 1;  // different robot, different random walk
  runtime::Engine robot_b(floor, c2);
  runtime::load_q_table(checkpoint, robot_b);

  const int b_cold = optimal_paths(floor, robot_b.greedy_policy(),
                                   vi, total);
  robot_b.run_samples(samples / 10);
  const int b_warm = optimal_paths(floor, robot_b.greedy_policy(),
                                   vi, total);

  TablePrinter table({"robot", "samples", "optimal routes"});
  table.add_row({"A (trained)", std::to_string(samples),
                 std::to_string(a_opt) + "/" + std::to_string(total)});
  table.add_row({"B (loaded A's table)", "0",
                 std::to_string(b_cold) + "/" + std::to_string(total)});
  table.add_row({"B (+10% warm training)",
                 std::to_string(samples / 10),
                 std::to_string(b_warm) + "/" + std::to_string(total)});
  std::cout << '\n';
  table.print(std::cout);

  std::cout << "\nRobot B's policy map:\n";
  const auto policy = robot_b.greedy_policy();
  floor.render(std::cout, &policy);
  return 0;
}

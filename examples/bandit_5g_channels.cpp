// 5G channel selection as a multi-armed bandit (Section VII-B): a radio
// picks one of M channels per slot; each channel's SNR is a noisy
// stationary process. QTAccel's MAB customization runs epsilon-greedy at
// one decision per clock and EXP3 with the binary-search probability
// selector; UCB1 runs as the software reference.
//
// Usage: bandit_5g_channels [--channels=8] [--slots=100000] [--seed=3]
#include <iostream>
#include <vector>

#include "algo/mab_algorithms.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "device/frequency_model.h"
#include "env/bandit.h"
#include "qtaccel/mab_accelerator.h"

using namespace qta;

namespace {
std::vector<env::Arm> make_channels(unsigned m, std::uint64_t seed) {
  // SNR means in dB-ish units with a clear best channel, noisy slots.
  std::vector<env::Arm> arms(m);
  rng::Xoshiro256 rng(seed);
  for (unsigned i = 0; i < m; ++i) {
    arms[i] = {rng.uniform(5.0, 20.0), 3.0};
  }
  arms[m / 2].mean = 24.0;  // one clearly good channel
  return arms;
}
}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const auto channels =
      static_cast<unsigned>(flags.get_int("channels", 8));
  const auto slots =
      static_cast<std::uint64_t>(flags.get_int("slots", 100000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  std::cout << "5G channel selection: " << channels << " channels, "
            << slots << " slots\n\n";

  TablePrinter table({"policy", "regret", "regret/slot",
                      "best-channel share", "decisions/s (modeled)"});

  const double clock_mhz = 189.0;  // small tables: full device clock

  {
    env::MultiArmedBandit radio(make_channels(channels, seed), seed);
    qtaccel::MabConfig c;
    c.policy = qtaccel::MabConfig::Policy::kEpsilonGreedy;
    c.epsilon = 0.08;
    c.alpha = 0.05;
    c.seed = seed;
    qtaccel::MabAccelerator acc(radio, c);
    acc.run(slots);
    table.add_row(
        {"QTAccel eps-greedy", format_double(acc.cumulative_regret(), 0),
         format_double(acc.cumulative_regret() / static_cast<double>(slots),
                       3),
         format_double(100.0 * static_cast<double>(
                                   acc.pull_counts()[radio.best_arm()]) /
                           static_cast<double>(slots),
                       1) +
             "%",
         format_rate(device::throughput_sps(
             clock_mhz, acc.stats().samples_per_cycle()))});
  }
  {
    env::MultiArmedBandit radio(make_channels(channels, seed), seed + 1);
    qtaccel::MabConfig c;
    c.policy = qtaccel::MabConfig::Policy::kExp3;
    c.exp3_gamma = 0.05;
    c.reward_lo = 0.0;
    c.reward_hi = 30.0;
    c.seed = seed + 1;
    qtaccel::MabAccelerator acc(radio, c);
    acc.run(slots);
    table.add_row(
        {"QTAccel EXP3", format_double(acc.cumulative_regret(), 0),
         format_double(acc.cumulative_regret() / static_cast<double>(slots),
                       3),
         format_double(100.0 * static_cast<double>(
                                   acc.pull_counts()[radio.best_arm()]) /
                           static_cast<double>(slots),
                       1) +
             "%",
         format_rate(device::throughput_sps(
             clock_mhz, acc.stats().samples_per_cycle()))});
  }
  {
    env::MultiArmedBandit radio(make_channels(channels, seed), seed + 2);
    algo::Ucb1 ucb(channels);
    policy::XoshiroSource rng(seed + 2);
    algo::run_bandit(ucb, radio, slots, rng, 0.0, 30.0);
    table.add_row({"UCB1 (software)",
                   format_double(radio.cumulative_regret(), 0),
                   format_double(radio.cumulative_regret() /
                                     static_cast<double>(slots),
                                 3),
                   "-", "-"});
  }
  table.print(std::cout);

  std::cout << "\nAt ~189 MHz the epsilon-greedy selector sustains one "
               "channel decision per clock (~189M decisions/s); EXP3 "
               "pays 1 + ceil(log2 M) cycles per decision for the "
               "probability-table binary search.\n";
  return 0;
}

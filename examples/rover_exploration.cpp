// Independent Learners (Section VII-A, Figure 9): a fleet of rovers, each
// mapping its own slice of a planetary surface with obstacles, each with
// a private QTAccel pipeline and BRAM bank.
//
// Usage: rover_exploration [--rovers=4] [--width=32] [--height=32]
//                          [--obstacles=0.15] [--samples=400000]
//                          [--threads=0] [--seed=7]
//                          [--backend={cycle,fast,lanes}] [--trace=out.json]
//                          [--save-snapshot=ckpt] [--resume=ckpt]
//
// --trace records a Perfetto trace (docs/observability.md): one process
// per rover (episode or stage tracks depending on the backend) plus one
// wall-clock track per work-stealing pool worker.
//
// --save-snapshot writes a fleet checkpoint (one machine snapshot per
// rover, docs/runtime.md) after the run; --resume restores one before
// running. --samples is each rover's TOTAL budget, counting resumed
// samples, so a resumed run finishes the interrupted one bit-exactly.
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/cli.h"
#include "common/table_printer.h"
#include "device/resource_report.h"
#include "env/grid_world.h"
#include "env/partition.h"
#include "env/value_iteration.h"
#include "qtaccel/resources.h"
#include "runtime/multi_pipeline.h"
#include "telemetry/pipeline_telemetry.h"
#include "telemetry/pool_observer.h"

using namespace qta;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const auto rovers_n = static_cast<unsigned>(flags.get_int("rovers", 4));
  env::GridWorldConfig base;
  base.width = static_cast<unsigned>(flags.get_int("width", 32));
  base.height = static_cast<unsigned>(flags.get_int("height", 32));
  base.num_actions = 4;
  base.obstacle_density = flags.get_double("obstacles", 0.15);
  base.obstacle_seed = 1234;

  std::cout << "Rover exploration: " << rovers_n
            << " independent QTAccel pipelines on a " << base.width << "x"
            << base.height << " surface, obstacle density "
            << base.obstacle_density << "\n\n";

  const auto bands = env::partition_grid(base, rovers_n);
  std::vector<std::unique_ptr<env::Environment>> envs;
  for (const auto& b : bands) {
    envs.push_back(std::make_unique<env::GridWorld>(b));
  }

  qtaccel::PipelineConfig config;
  config.alpha = 0.2;
  config.gamma = 0.9;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  config.max_episode_length = 1024;
  config.backend = qtaccel::parse_backend(flags.get_string("backend", "fast"));

  runtime::IndependentPipelines fleet(std::move(envs), config);
  const auto samples =
      static_cast<std::uint64_t>(flags.get_int("samples", 400000));
  const auto threads =
      static_cast<unsigned>(flags.get_int("threads", 0));

  const std::string resume_path = flags.get_string("resume", "");
  if (!resume_path.empty()) {
    std::ifstream in(resume_path);
    QTA_CHECK_MSG(in.is_open(), "cannot open fleet checkpoint for reading");
    fleet.load_checkpoint(in);
    std::cout << "resumed fleet from " << resume_path << " at "
              << fleet.total_samples() << " total samples\n\n";
  }

  const std::string trace_path = flags.get_string("trace", "");
  telemetry::MetricsRegistry registry;
  telemetry::TraceSession trace;
  std::vector<std::unique_ptr<telemetry::PipelineTelemetry>> sinks;
  std::unique_ptr<telemetry::PoolTraceObserver> pool_observer;
  if (!trace_path.empty()) {
    for (unsigned i = 0; i < rovers_n; ++i) {
      sinks.push_back(std::make_unique<telemetry::PipelineTelemetry>(
          qtaccel::make_run_labels(config, i), &registry, &trace,
          /*pid=*/1 + i));
      fleet.engine(i).set_telemetry(sinks.back().get());
    }
    pool_observer = std::make_unique<telemetry::PoolTraceObserver>(
        trace, /*pid=*/100, fleet.pool_workers(threads), "rover fleet pool",
        &registry);
    fleet.set_pool_observer(pool_observer.get());
  }

  fleet.run_samples_each(samples, threads);
  for (auto& s : sinks) s->flush();

  const std::string snapshot_path = flags.get_string("save-snapshot", "");
  if (!snapshot_path.empty()) {
    std::ofstream out(snapshot_path);
    QTA_CHECK_MSG(out.is_open(), "cannot open fleet checkpoint for writing");
    fleet.save_checkpoint(out);
    std::cout << "wrote fleet checkpoint to " << snapshot_path << "\n\n";
  }

  TablePrinter table({"rover", "band", "samples", "episodes",
                      "free cells reaching goal", "samples/cycle"});
  for (unsigned i = 0; i < rovers_n; ++i) {
    const auto& band =
        static_cast<const env::GridWorld&>(fleet.environment(i));
    const runtime::Engine& p = fleet.engine(i);
    const auto policy = p.greedy_policy();
    int reached = 0, total = 0;
    for (StateId s = 0; s < band.num_states(); ++s) {
      if (band.is_terminal(s) || band.is_obstacle(s)) continue;
      ++total;
      reached += env::rollout_steps(band, policy, s, 4000) >= 0 ? 1 : 0;
    }
    table.add_row({std::to_string(i),
                   std::to_string(band.config().width) + "x" +
                       std::to_string(band.config().height),
                   std::to_string(p.stats().samples),
                   std::to_string(p.stats().episodes),
                   std::to_string(reached) + "/" + std::to_string(total),
                   format_double(p.stats().samples_per_cycle(), 3)});
  }
  table.print(std::cout);

  std::cout << "\nAggregate: " << fleet.total_samples() << " samples at "
            << format_double(fleet.samples_per_cycle(), 2)
            << " samples/cycle across the fleet\n\n";

  // First rover's learned map, for a visual.
  const auto& band0 =
      static_cast<const env::GridWorld&>(fleet.environment(0));
  const auto policy0 = fleet.engine(0).greedy_policy();
  std::cout << "Rover 0's learned policy ('#' = obstacle):\n";
  band0.render(std::cout, &policy0);
  std::cout << "\n";

  device::make_report(device::xcvu13p(), fleet.resources())
      .print(std::cout);

  if (!trace_path.empty()) {
    if (!trace.write_file(trace_path)) {
      std::cerr << "failed to write " << trace_path << "\n";
      return 2;
    }
    std::cout << "\nwrote trace (" << trace.event_count()
              << " events) to " << trace_path
              << " — open in ui.perfetto.dev\n";
  }
  return 0;
}

// Host-software view of the accelerator: program QTAccel purely through
// its CSR register interface (driver/register_map.h), the way an embedded
// host or a PCIe driver would — configure, start, poll BUSY while doing
// other work, then read counters and Q values back through the table
// window.
//
// Usage: csr_host_demo [--samples=100000] [--sarsa] [--epsilon=0.1]
#include <iostream>

#include "common/cli.h"
#include "common/table_printer.h"
#include "driver/qtaccel_device.h"
#include "env/grid_world.h"

using namespace qta;
using driver::Reg;

namespace {
constexpr std::uint32_t off(Reg r) { return static_cast<std::uint32_t>(r); }
}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const auto samples =
      static_cast<std::uint32_t>(flags.get_int("samples", 100000));
  const bool sarsa = flags.get_bool("sarsa", false);
  const double epsilon = flags.get_double("epsilon", 0.1);

  // The "bitstream": an 8x8 grid world transition function + reward map.
  env::GridWorldConfig gc;
  gc.width = 8;
  gc.height = 8;
  gc.num_actions = 4;
  env::GridWorld world(gc);
  driver::QtAccelDevice dev(world);

  // 1. Identify the IP.
  std::cout << "device id: 0x" << std::hex << dev.read_csr(off(Reg::kId))
            << ", version: 0x" << dev.read_csr(off(Reg::kVersion))
            << std::dec << "\n";

  // 2. Program the learning configuration.
  dev.write_csr(off(Reg::kAlgorithm), sarsa ? 1 : 0);
  dev.write_csr(off(Reg::kAlpha), driver::pack_coefficient(0.2));
  dev.write_csr(off(Reg::kGamma), driver::pack_coefficient(0.9));
  dev.write_csr(off(Reg::kEpsilonThresh),
                static_cast<std::uint32_t>((1.0 - epsilon) * 65536.0));
  dev.write_csr(off(Reg::kSeedLo), 2024);
  dev.write_csr(off(Reg::kMaxEpisodeLen), 256);
  dev.write_csr(off(Reg::kSamplesTargetLo), samples);

  // 3. Start and poll, advancing the device clock in slices as a real
  //    host would overlap its own work with the accelerator.
  dev.write_csr(off(Reg::kCtrl), driver::kCtrlStart);
  unsigned polls = 0;
  while (dev.read_csr(off(Reg::kStatus)) & driver::kStatusBusy) {
    dev.advance(20000);
    ++polls;
  }
  std::cout << "finished after " << polls << " polls; status = 0x"
            << std::hex << dev.read_csr(off(Reg::kStatus)) << std::dec
            << "\n";

  // 4. Read the counters.
  auto read64 = [&](Reg lo, Reg hi) {
    return (static_cast<std::uint64_t>(dev.read_csr(off(hi))) << 32) |
           dev.read_csr(off(lo));
  };
  std::cout << "samples:  "
            << read64(Reg::kSampleCountLo, Reg::kSampleCountHi) << "\n"
            << "episodes: "
            << read64(Reg::kEpisodeCountLo, Reg::kEpisodeCountHi) << "\n"
            << "cycles:   "
            << read64(Reg::kCycleCountLo, Reg::kCycleCountHi) << "\n";

  // 5. Read a few Q words back through the table window.
  TablePrinter table({"state (x,y)", "action", "raw (hex)", "Q value"});
  for (const auto& [x, y, a] :
       {std::tuple{6u, 7u, 2u}, {7u, 6u, 3u}, {0u, 0u, 2u}}) {
    const StateId s = world.state_of(x, y);
    dev.write_csr(off(Reg::kTableAddr), (s << 2) | a);
    const std::uint32_t word = dev.read_csr(off(Reg::kTableData));
    char hex[16];
    std::snprintf(hex, sizeof hex, "0x%05x", word & 0x3FFFF);
    table.add_row({"(" + std::to_string(x) + "," + std::to_string(y) + ")",
                   std::to_string(a), hex,
                   format_double(dev.q_value(s, a), 3)});
  }
  std::cout << "\nQ-table window readback:\n";
  table.print(std::cout);
  return 0;
}

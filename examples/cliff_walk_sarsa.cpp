// On-policy vs off-policy on one accelerator (Section V): SARSA and
// Q-Learning trained on the same "cliff-edge" grid — boundary bumps cost
// heavily, each step costs a little, the goal sits along the bottom edge.
// Q-Learning (off-policy greedy target) learns the shortest path hugging
// the edge; epsilon-greedy SARSA values edge states lower because its own
// exploratory behavior keeps bumping there.
//
// Usage: cliff_walk_sarsa [--samples=400000] [--epsilon=0.3] [--seed=2]
#include <iostream>

#include "common/cli.h"
#include "common/table_printer.h"
#include "env/grid_world.h"
#include "runtime/engine.h"

using namespace qta;


int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  env::GridWorldConfig gc;
  gc.width = 8;
  gc.height = 4;
  gc.num_actions = 4;
  gc.goal_x = 7;
  gc.goal_y = 3;             // goal on the bottom edge
  gc.step_reward = -1.0;     // time pressure
  gc.collision_penalty = 100.0;  // the "cliff": bumping hurts
  gc.goal_reward = 100.0;
  env::GridWorld world(gc);

  const auto samples =
      static_cast<std::uint64_t>(flags.get_int("samples", 400000));
  const double epsilon = flags.get_double("epsilon", 0.3);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2));

  std::cout << "Cliff walk (8x4): goal bottom-right, boundary bumps cost "
            << gc.collision_penalty << ", steps cost 1.\n\n";

  qtaccel::PipelineConfig ql;
  ql.alpha = 0.2;
  ql.gamma = 0.95;
  ql.seed = seed;
  ql.max_episode_length = 256;
  qtaccel::PipelineConfig sarsa = ql;
  sarsa.algorithm = qtaccel::Algorithm::kSarsa;
  sarsa.epsilon = epsilon;
  qtaccel::PipelineConfig esarsa = sarsa;
  esarsa.algorithm = qtaccel::Algorithm::kExpectedSarsa;
  qtaccel::PipelineConfig dq = ql;
  dq.algorithm = qtaccel::Algorithm::kDoubleQ;

  runtime::Engine pq(world, ql);
  runtime::Engine ps(world, sarsa);
  runtime::Engine pe(world, esarsa);
  runtime::Engine pd(world, dq);
  pq.run_samples(samples);
  ps.run_samples(samples);
  pe.run_samples(samples);
  pd.run_samples(samples);

  const auto ql_policy = pq.greedy_policy();
  const auto sarsa_policy = ps.greedy_policy();

  std::cout << "Q-Learning greedy policy:\n";
  world.render(std::cout, &ql_policy);
  std::cout << "\nSARSA (epsilon = " << epsilon << ") greedy policy:\n";
  world.render(std::cout, &sarsa_policy);

  // Q values along the bottom (cliff-edge) row, action "right", for all
  // four pipeline algorithms.
  TablePrinter table({"cell", "Q-Learning", "SARSA", "Expected SARSA",
                      "Double-Q"});
  double mean_gap = 0.0;
  for (unsigned x = 0; x + 1 < world.config().width; ++x) {
    const StateId s = world.state_of(x, 3);
    const double q1 = pq.q_value(s, 2);
    const double q2 = ps.q_value(s, 2);
    table.add_row({"(" + std::to_string(x) + ",3)", format_double(q1, 2),
                   format_double(q2, 2), format_double(pe.q_value(s, 2), 2),
                   format_double(pd.q_value(s, 2), 2)});
    mean_gap += q2 - q1;
  }
  std::cout << "\nEdge-row Q(s, right) values:\n";
  table.print(std::cout);
  mean_gap /= static_cast<double>(world.config().width - 1);
  std::cout << "\nMean SARSA-minus-QL gap along the edge: "
            << format_double(mean_gap, 2)
            << "  (negative = SARSA discounts the risky edge, the classic "
               "on-policy effect; Expected SARSA sits between the two, "
               "Double-Q tracks Q-Learning without max-bias)\n";
  return 0;
}
